//! Campaign quickstart: a concurrent metadata-delay sweep. One base
//! scenario (a churny dumbbell), three staleness variants, one thread
//! pool — and one precomputed snapshot timeline shared by every variant
//! (`timeline_precomputes` in the JSON stays 1 however many variants run).
//!
//! Run with `cargo run --example campaign`. CI runs it as the campaign
//! smoke and uploads `target/campaign-report.json` as a workflow artifact.

use kollaps::prelude::*;
use kollaps::scenario::{Campaign, Churn};
use kollaps::topology::generators;

fn main() {
    let (topo, _, _) = generators::dumbbell(
        2,
        Bandwidth::from_mbps(100),
        Bandwidth::from_mbps(50),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
    );
    let base = Scenario::from_topology(topo)
        .named("staleness-base")
        .hosts(2)
        // Explicit placement matters here. The default round-robin walks
        // containers in address order — on a dumbbell that interleaves
        // client-0, server-0, client-1, server-1 across the two hosts,
        // landing *both flow sources* (the clients) on host 0. One manager
        // would then see both flows locally and the metadata delay being
        // swept would barely matter. Pinning each client/server pair to its
        // own host makes the two competing flows meet only through
        // (delayed) metadata, which is what the sweep measures — the
        // nonzero-gap assertion below keeps this honest.
        .place("client-0", 0)
        .place("server-0", 0)
        .place("client-1", 1)
        .place("server-1", 1)
        .churn(
            Churn::partition(&["bridge-left"], &["bridge-right"])
                .start(SimDuration::from_secs(3))
                .heal_after(Some(SimDuration::from_secs(1))),
        )
        .workload(
            Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(40))
                .duration(SimDuration::from_secs(6)),
        )
        // The second flow joins mid-run: managers enforcing on stale
        // metadata keep over-allocating the first flow until the join's
        // advertisement arrives, which is exactly what the sweep measures.
        .workload(
            Workload::iperf_udp("client-1", "server-1", Bandwidth::from_mbps(40))
                .start(SimDuration::from_secs(1))
                .duration(SimDuration::from_secs(5)),
        );

    let report = Campaign::over(base)
        .named("metadata-delay-sweep")
        .vary_metadata_delay(&[
            SimDuration::ZERO,
            SimDuration::from_millis(5),
            SimDuration::from_millis(25),
        ])
        .threads(3)
        .run()
        .expect("valid campaign");

    println!(
        "{}: {} variants on {} thread(s), {} timeline precompute(s)\n",
        report.campaign,
        report.variants.len(),
        report.threads,
        report.timeline_precomputes
    );
    for variant in &report.variants {
        let convergence = variant.report.convergence.expect("kollaps variant");
        let goodput: f64 = variant
            .report
            .flows
            .iter()
            .filter_map(|f| f.goodput_mbps)
            .sum();
        println!(
            "  {:<24} total goodput {:6.2} Mb/s, convergence gap max {:.3} / mean {:.4}",
            variant.name, goodput, convergence.max_gap, convergence.mean_gap
        );
    }
    println!(
        "\naggregates: mean goodput {:.2} Mb/s, best variant {}",
        report.aggregates.goodput_mean_mbps.unwrap_or(0.0),
        report
            .aggregates
            .best_goodput_variant
            .as_deref()
            .unwrap_or("-")
    );

    // The structural-sharing contract the campaign exists for.
    assert_eq!(
        report.timeline_precomputes, 1,
        "smoke: a pure staleness sweep must share one precomputed timeline"
    );
    assert_eq!(report.variants.len(), 3);

    // The placement contract: with each flow pair pinned to its own host,
    // delayed metadata must produce a visible convergence gap. If a future
    // change reverts to interleaved round-robin placement, both sources
    // collapse onto one manager and this gap vanishes.
    let delayed = report
        .variants
        .last()
        .expect("sweep has variants")
        .report
        .convergence
        .expect("kollaps variant");
    assert!(
        delayed.max_gap > 0.0,
        "smoke: cross-host staleness must show up as a convergence gap, got {}",
        delayed.max_gap
    );

    let path = std::path::Path::new("target").join("campaign-report.json");
    match std::fs::create_dir_all("target")
        .and_then(|()| std::fs::write(&path, report.to_json_string()))
    {
        Ok(()) => println!("\ncampaign report written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
