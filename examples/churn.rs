//! Churn quickstart: put a dumbbell under generated churn — Poisson link
//! flapping plus a partition/heal — and read what the dynamics engine did
//! from the report (events applied, per-event swap cost, offline
//! precompute time).
//!
//! Run with `cargo run --example churn`. CI runs it as the churn smoke and
//! uploads the written JSON report.

use kollaps::prelude::*;
use kollaps::scenario::Churn;
use kollaps::topology::generators;

fn main() {
    let (topo, _, _) = generators::dumbbell(
        4,
        Bandwidth::from_mbps(100),
        Bandwidth::from_mbps(50),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
    );

    let report = Scenario::from_topology(topo)
        .named("churn-quickstart")
        // client-3's access link flaps with exponential up/down times...
        .churn(
            Churn::poisson_flaps(&[("client-3", "bridge-left")])
                .mean_uptime(SimDuration::from_secs(3))
                .mean_downtime(SimDuration::from_millis(400))
                .horizon(SimDuration::from_secs(12))
                .seed(7),
        )
        // ...and the trunk partitions for two seconds mid-run.
        .churn(
            Churn::partition(&["bridge-left"], &["bridge-right"])
                .start(SimDuration::from_secs(5))
                .heal_after(Some(SimDuration::from_secs(2))),
        )
        .workloads((0..4).map(|i| {
            Workload::iperf_udp(
                &format!("client-{i}"),
                &format!("server-{i}"),
                Bandwidth::from_mbps(20),
            )
            .duration(SimDuration::from_secs(12))
        }))
        .run()
        .expect("valid churn scenario");

    for flow in &report.flows {
        println!(
            "{} -> {}: {:.2} Mb/s mean goodput",
            flow.client,
            flow.server,
            flow.goodput_mbps.unwrap_or(0.0)
        );
    }
    let dynamics = report.dynamics.expect("churn scenario reports dynamics");
    println!(
        "\ndynamics: {} events in {} snapshot swaps, mean swap cost {:.1} paths \
         (of {} pairs), precomputed offline in {:.2} ms",
        dynamics.events_applied,
        dynamics.snapshots_applied,
        dynamics.mean_swap_cost,
        dynamics.pair_count,
        dynamics.precompute_micros as f64 / 1000.0,
    );
    assert!(
        dynamics.events_applied > 0,
        "smoke: churn must generate and apply events"
    );

    let path = std::path::Path::new("target").join("churn-report.json");
    match std::fs::create_dir_all("target")
        .and_then(|()| std::fs::write(&path, report.to_json_string()))
    {
        Ok(()) => println!("report written to {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
