//! Distributed quickstart: the staggered-join scenario run by a
//! coordinator and two agents exchanging metadata over real loopback UDP
//! sockets — the same topology, workload and placement as the in-process
//! staleness study, so the two reports are directly comparable.
//!
//! The agents here run on threads (`Launch::Threads`); the sockets are
//! exactly the ones real processes would use. For separate processes,
//! build the binaries and run `kollaps-coordinator` — see "Distributed
//! runs" in the README.
//!
//! Run with `cargo run --example distributed`.

use std::time::Duration;

use kollaps::runtime::coordinator::{self, staggered_join_scenario, Launch, RunOptions};

fn main() {
    let scenario = staggered_join_scenario(3);
    let options = RunOptions {
        launch: Launch::Threads,
        loss_probability: 0.0,
        barrier_timeout: Duration::from_secs(5),
    };
    let outcome = coordinator::run(&scenario, &options).expect("distributed run");

    println!(
        "staggered join over {} distributed agents:\n",
        outcome.agents.len()
    );
    for agent in &outcome.agents {
        println!(
            "  host {}: {} emulation cores, {} B sent / {} B received over UDP, \
             {} lockstep barriers ({} µs waiting), control RTT {} µs",
            agent.host,
            agent.cores,
            agent.sent_bytes,
            agent.received_bytes,
            agent.barriers,
            agent.barrier_wait_micros,
            agent.control_rtt_micros,
        );
    }
    let phases: Vec<String> = outcome
        .bootstrap_trace
        .iter()
        .map(|step| format!("{step:?}"))
        .collect();
    println!("\nbootstrap state machine: {}", phases.join(" -> "));
    if let Some(convergence) = outcome.report.get("convergence") {
        println!(
            "merged allocation convergence: {}",
            serde_json::to_string(convergence)
        );
    }
}
