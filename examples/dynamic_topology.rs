//! Dynamic topologies: degrade a link mid-experiment (a "flapping link"
//! scenario from the paper's motivation) and watch the application-visible
//! RTT follow the schedule.
//!
//! Run with `cargo run --example dynamic_topology`.

use kollaps::core::emulation::{EmulationConfig, KollapsDataplane};
use kollaps::core::runtime::Runtime;
use kollaps::sim::prelude::*;
use kollaps::topology::events::{DynamicAction, DynamicEvent, EventSchedule, LinkChange};
use kollaps::topology::generators;
use kollaps::workloads::run_ping;

fn main() {
    // A simple client -- server pair over a 20 ms / 100 Mb/s link.
    let (topology, _, _) = generators::point_to_point(
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(20),
        SimDuration::ZERO,
    );

    // Schedule: at t=10 s the latency jumps to 80 ms (e.g. a reroute), at
    // t=20 s the link recovers.
    let mut schedule = EventSchedule::new();
    schedule.push(DynamicEvent {
        at: SimDuration::from_secs(10),
        action: DynamicAction::SetLinkProperties {
            orig: "client".into(),
            dest: "server".into(),
            change: LinkChange {
                latency: Some(SimDuration::from_millis(80)),
                ..LinkChange::default()
            },
        },
    });
    schedule.push(DynamicEvent {
        at: SimDuration::from_secs(20),
        action: DynamicAction::SetLinkProperties {
            orig: "client".into(),
            dest: "server".into(),
            change: LinkChange {
                latency: Some(SimDuration::from_millis(20)),
                ..LinkChange::default()
            },
        },
    });

    let dataplane = KollapsDataplane::new(topology, schedule, 1, EmulationConfig::default());
    let client = dataplane.address_of_index(0);
    let server = dataplane.address_of_index(1);
    let mut rt = Runtime::new(dataplane);

    // One ping per second for 30 seconds; print the RTT per phase.
    let report = run_ping(&mut rt, client, server, 30, SimDuration::from_secs(1));
    for (i, rtt) in report.samples.iter().enumerate() {
        let phase = match i {
            0..=9 => "baseline ",
            10..=19 => "degraded ",
            _ => "recovered",
        };
        println!("t={i:>2}s  {phase}  rtt = {rtt:6.2} ms");
    }
    println!(
        "mean RTT {:.1} ms (expected: 40 ms baseline, 160 ms degraded)",
        report.mean_rtt_ms
    );
}
