//! Dynamic topologies: degrade a link mid-experiment (a "flapping link"
//! scenario from the paper's motivation) and watch the application-visible
//! RTT follow the schedule — the event schedule is part of the scenario.
//!
//! Run with `cargo run --example dynamic_topology`.

use kollaps::prelude::*;
use kollaps::topology::events::{DynamicAction, DynamicEvent, LinkChange};
use kollaps::topology::generators;

fn main() {
    // A simple client -- server pair over a 20 ms / 100 Mb/s link.
    let (topology, _, _) = generators::point_to_point(
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(20),
        SimDuration::ZERO,
    );

    let set_latency = |at_secs: u64, ms: u64| DynamicEvent {
        at: SimDuration::from_secs(at_secs),
        action: DynamicAction::SetLinkProperties {
            orig: "client".into(),
            dest: "server".into(),
            change: LinkChange {
                latency: Some(SimDuration::from_millis(ms)),
                ..LinkChange::default()
            },
        },
    };

    // Schedule: at t=10 s the latency jumps to 80 ms (e.g. a reroute), at
    // t=20 s the link recovers. One ping per second watches it happen.
    let report = Scenario::from_topology(topology)
        .named("flapping-link")
        .event(set_latency(10, 80))
        .event(set_latency(20, 20))
        .workload(
            Workload::ping("client", "server")
                .count(30)
                .interval(SimDuration::from_secs(1)),
        )
        .run()
        .expect("valid scenario");

    let rtt = report.flows[0].rtt.as_ref().expect("rtt stats");
    for (i, sample) in rtt.samples_ms.iter().enumerate() {
        let phase = match i {
            0..=9 => "baseline ",
            10..=19 => "degraded ",
            _ => "recovered",
        };
        println!("t={i:>2}s  {phase}  rtt = {sample:6.2} ms");
    }
    println!(
        "mean RTT {:.1} ms (expected: 40 ms baseline, 160 ms degraded)",
        rtt.mean_ms
    );
}
