//! The paper's Figure 8 scenario as a runnable example: six clients join a
//! shared topology one after another and the RTT-aware Min-Max model hands
//! each of them a share of the contended links.
//!
//! Run with `cargo run --example bandwidth_sharing`.

use kollaps::core::collapse::CollapsedTopology;
use kollaps::core::sharing::{allocate, FlowDemand};
use kollaps::topology::generators;

fn main() {
    let (topology, clients, servers) = generators::figure8();
    let collapsed = CollapsedTopology::build(&topology);

    println!("clients join one by one; allocations in Mb/s:\n");
    for active in 1..=6usize {
        let flows: Vec<FlowDemand> = (0..active)
            .map(|i| {
                let path = collapsed
                    .path(clients[i], servers[i])
                    .expect("client can reach its server");
                FlowDemand {
                    id: i as u64,
                    links: path.links.clone(),
                    rtt: collapsed.rtt(clients[i], servers[i]).expect("rtt"),
                    demand: path.max_bandwidth,
                }
            })
            .collect();
        let allocation = allocate(&flows, collapsed.link_capacities());
        let shares: Vec<String> = (0..active)
            .map(|i| format!("C{}={:5.2}", i + 1, allocation.of(i as u64).as_mbps()))
            .collect();
        println!("{active} active: {}", shares.join("  "));
    }
    println!(
        "\npaper values (§5.4): 2 active → 23.08/26.92; 3 → 18.45/21.55/10;\n\
         5 → 16.89/19.75/10/23.74/29.62; 6 → 15.04/17.55/10/21.06/26.33/10"
    );
}
