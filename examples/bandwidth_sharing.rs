//! The paper's Figure 8 scenario as a runnable example: six clients join a
//! shared topology one after another and the RTT-aware Min-Max model hands
//! each of them a share of the contended links.
//!
//! The analytic shares come straight from the sharing solver; the emulated
//! shares come from actually running staggered iPerf flows through the
//! Kollaps dataplane with the `Scenario` builder.
//!
//! Run with `cargo run --example bandwidth_sharing`.

use kollaps::core::sharing::{allocate, FlowDemand};
use kollaps::prelude::*;
use kollaps::topology::generators;

fn main() {
    let (topology, clients, servers) = generators::figure8();
    let collapsed = CollapsedTopology::build(&topology);

    println!("analytic shares as clients join one by one (Mb/s):\n");
    for active in 1..=6usize {
        let flows: Vec<FlowDemand> = (0..active)
            .map(|i| {
                let path = collapsed
                    .path(clients[i], servers[i])
                    .expect("client can reach its server");
                FlowDemand {
                    id: i as u64,
                    links: path.links.clone(),
                    rtt: collapsed.rtt(clients[i], servers[i]).expect("rtt"),
                    demand: path.max_bandwidth,
                }
            })
            .collect();
        let allocation = allocate(&flows, collapsed.link_capacities());
        let shares: Vec<String> = (0..active)
            .map(|i| format!("C{}={:5.2}", i + 1, allocation.of(i as u64).as_mbps()))
            .collect();
        println!("{active} active: {}", shares.join("  "));
    }

    // Now the emulated version: C1-C3 compete through the actual Kollaps
    // dataplane and the enforced shares converge on the model's values
    // (paper: 18.45 / 21.55 / 10 with three active clients).
    let seconds = 30u64;
    let report = Scenario::from_topology(topology)
        .named("figure8-emulated")
        .backend(Backend::kollaps_on(2))
        .workload(Workload::iperf_tcp("C1", "S1").duration(SimDuration::from_secs(seconds)))
        .workload(Workload::iperf_tcp("C2", "S2").duration(SimDuration::from_secs(seconds)))
        .workload(Workload::iperf_tcp("C3", "S3").duration(SimDuration::from_secs(seconds)))
        .run()
        .expect("valid scenario");

    println!("\nemulated steady-state goodput (Mb/s):");
    for flow in &report.flows {
        // Mean over the second half of each flow's own window, when the
        // shares have settled.
        let series = &flow.per_second_mbps;
        let half = &series[series.len() / 2..];
        let mean = half.iter().sum::<f64>() / half.len().max(1) as f64;
        println!(
            "  {} -> {}: {mean:5.2} (window {:.0}-{:.0} s)",
            flow.client, flow.server, flow.start_s, flow.end_s
        );
    }
    println!(
        "\npaper values (§5.4): 2 active → 23.08/26.92; 3 → 18.45/21.55/10;\n\
         5 → 16.89/19.75/10/23.74/29.62; 6 → 15.04/17.55/10/21.06/26.33/10"
    );
}
