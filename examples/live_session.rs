//! Live session quickstart: drive an experiment interactively instead of
//! one-shot. A telemetry sink streams typed events and periodic samples
//! while the clock advances in steps; halfway through, a latency fault is
//! injected into the *running* experiment (the precomputed snapshot
//! timeline is extended incrementally, not rebuilt).
//!
//! Run with `cargo run --example live_session`. CI runs it as the session
//! smoke.

use kollaps::prelude::*;
use kollaps::scenario::{Sample, Sink, TelemetryEvent};
use kollaps::topology::events::{DynamicAction, DynamicEvent, LinkChange};
use kollaps::topology::generators;

/// A sink that narrates the experiment to stdout as it happens.
struct Narrator;

impl Sink for Narrator {
    fn on_event(&mut self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::FlowStarted {
                at_s,
                workload,
                client,
                server,
            } => println!("[{at_s:6.2}s] flow started: {workload} {client} -> {server}"),
            TelemetryEvent::FlowFinished { at_s, report } => println!(
                "[{at_s:6.2}s] flow finished: {} ({:.2} Mb/s)",
                report.workload,
                report.goodput_mbps.unwrap_or(0.0)
            ),
            TelemetryEvent::DynamicEventApplied {
                at_s,
                events,
                changed_paths,
            } => println!(
                "[{at_s:6.2}s] topology change applied: {events} event(s), \
                 {changed_paths} path(s) swapped"
            ),
            TelemetryEvent::OversubscriptionOnset { at_s, link } => {
                println!("[{at_s:6.2}s] link {link} oversubscribed")
            }
            TelemetryEvent::OversubscriptionCleared { at_s, link } => {
                println!("[{at_s:6.2}s] link {link} recovered")
            }
            TelemetryEvent::MetadataDelivered { at_s, bytes } => {
                println!("[{at_s:6.2}s] metadata on the wire: {bytes} B")
            }
            TelemetryEvent::WorkloadInjected {
                at_s,
                workload,
                start_s,
            } => println!("[{at_s:6.2}s] workload injected: {workload} (starts at {start_s:.2}s)"),
            TelemetryEvent::EventsInjected {
                at_s,
                events,
                deltas_derived,
            } => println!(
                "[{at_s:6.2}s] {events} event(s) injected, timeline extended \
                 by {deltas_derived} delta(s)"
            ),
        }
    }

    fn on_sample(&mut self, sample: &Sample) {
        let busiest = sample
            .links
            .iter()
            .max_by(|a, b| a.utilization.total_cmp(&b.utilization));
        println!(
            "[{:6.2}s] sample: {} flow(s), busiest link at {:.0}% utilization",
            sample.at_s,
            sample.flows.len(),
            busiest.map(|l| l.utilization * 100.0).unwrap_or(0.0)
        );
    }
}

fn main() {
    let (topo, _, _) = generators::dumbbell(
        2,
        Bandwidth::from_mbps(100),
        Bandwidth::from_mbps(50),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
    );

    let mut session = Scenario::from_topology(topo)
        .named("live-session")
        .hosts(2)
        .sample_interval(SimDuration::from_secs(2))
        .workload(
            Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(30))
                .duration(SimDuration::from_secs(8)),
        )
        .workload(
            Workload::ping("client-1", "server-1")
                .count(40)
                .interval(SimDuration::from_millis(200))
                .duration(SimDuration::from_secs(8)),
        )
        .session()
        .expect("valid scenario");
    session.attach_sink(Box::new(Narrator));

    // Drive the first half, then look around.
    session.run_until(SimTime::from_secs(4)).expect("stepping");
    for flow in session.flow_progress() {
        println!(
            "  t=4s progress: {} {:?} ({} B, {} replies)",
            flow.workload, flow.status, flow.bytes, flow.replies
        );
    }

    // Inject a fault into the running experiment: the trunk degrades to
    // 60 ms / 10 Mb/s one second from now.
    session
        .inject_event(DynamicEvent {
            at: SimDuration::from_secs(5),
            action: DynamicAction::SetLinkProperties {
                orig: "bridge-left".into(),
                dest: "bridge-right".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(60)),
                    up: Some(Bandwidth::from_mbps(10)),
                    down: Some(Bandwidth::from_mbps(10)),
                    ..LinkChange::default()
                },
            },
        })
        .expect("valid injection");

    let report = session.finish();
    let ping = report.flows_of("ping").next().expect("ping flow");
    let rtt = ping.rtt.as_ref().expect("rtt stats");
    println!(
        "\nfinal: udp {:.2} Mb/s; ping {} replies, {:.1}..{:.1} ms",
        report.flows[0].goodput_mbps.unwrap_or(0.0),
        rtt.replies,
        rtt.min_ms,
        rtt.max_ms
    );
    let dynamics = report.dynamics.expect("injected event reports dynamics");
    assert_eq!(
        dynamics.events_applied, 1,
        "smoke: the injection must apply"
    );
    assert!(
        rtt.max_ms > 100.0,
        "smoke: the injected 60 ms latency must be visible in the RTTs ({:.1} ms)",
        rtt.max_ms
    );
    println!(
        "(injected change applied as {} timeline swap)",
        dynamics.snapshots_applied
    );
}
