//! Quickstart: describe a topology in the Kollaps DSL, emulate it, and
//! measure what an application sees — all through the unified `Scenario`
//! builder: one declarative description in, one machine-readable report out.
//!
//! Run with `cargo run --example quickstart`.

use kollaps::prelude::*;

const EXPERIMENT: &str = r#"
experiment:
  services:
    name: client
    image: "iperf3"
    name: server
    image: "nginx"
  bridges:
    name: s1
  links:
    orig: client
    dest: s1
    latency: 10
    up: 50Mbps
    down: 50Mbps
    jitter: 0.5
    orig: s1
    dest: server
    latency: 5
    up: 100Mbps
    down: 100Mbps
"#;

fn main() {
    // One builder: topology source (paper Listing 1 syntax), backend
    // selection, and the workloads by service name. `run()` parses,
    // validates, collapses, emulates and measures.
    let report = Scenario::from_dsl(EXPERIMENT)
        .named("quickstart")
        .backend(Backend::kollaps_on(2))
        .workload(Workload::ping("client", "server").count(50))
        .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(10)))
        .run()
        .expect("valid scenario");

    let ping = report.flows_of("ping").next().expect("ping flow");
    let rtt = ping.rtt.as_ref().expect("rtt stats");
    println!(
        "ping: mean RTT {:.2} ms, jitter {:.2} ms over {} replies",
        rtt.mean_ms, rtt.jitter_ms, rtt.replies
    );
    let iperf = report.flows_of("iperf-tcp").next().expect("iperf flow");
    println!(
        "iperf: {:.2} Mb/s average goodput ({} retransmissions)",
        iperf.goodput_mbps.unwrap_or(0.0),
        iperf.retransmissions.unwrap_or(0)
    );
    println!(
        "  (the 0.5 ms jitter link reorders segments — netem semantics — so \
         TCP runs far below the 50 Mb/s shaped rate; drop the jitter to see \
         it saturate)"
    );
    for link in &report.links {
        println!(
            "link {}: {:.1} / {:.1} Mb/s offered ({:.0}% utilized)",
            link.link,
            link.offered_mbps,
            link.capacity_mbps,
            link.utilization * 100.0
        );
    }

    // The whole report is machine-readable JSON for downstream tooling; CI
    // uploads the written file as a workflow artifact.
    println!("\n{}", report.to_json_string());
    let path = std::path::Path::new("target").join("quickstart-report.json");
    match std::fs::create_dir_all("target")
        .and_then(|()| std::fs::write(&path, report.to_json_string()))
    {
        Ok(()) => println!("\nreport written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
