//! Quickstart: describe a topology in the Kollaps DSL, emulate it, and
//! measure what an application sees — all through the unified `Scenario`
//! builder: one declarative description in, one machine-readable report out
//! (plus, with `.trace(true)`, a Chrome trace of where the emulation spent
//! its time — open it in Perfetto or `chrome://tracing`).
//!
//! Run with `cargo run --example quickstart`.

use kollaps::prelude::*;

const EXPERIMENT: &str = r#"
experiment:
  services:
    name: client
    image: "iperf3"
    name: server
    image: "nginx"
  bridges:
    name: s1
  links:
    orig: client
    dest: s1
    latency: 10
    up: 50Mbps
    down: 50Mbps
    jitter: 0.5
    orig: s1
    dest: server
    latency: 5
    up: 100Mbps
    down: 100Mbps
"#;

fn main() {
    // One builder: topology source (paper Listing 1 syntax), backend
    // selection, the workloads by service name, and the flight recorder.
    // `session()` parses, validates and collapses; `finish()` emulates to
    // the end and measures — `run()` is the same thing in one call.
    let session = Scenario::from_dsl(EXPERIMENT)
        .named("quickstart")
        .backend(Backend::kollaps_on(2))
        .trace(true)
        .workload(Workload::ping("client", "server").count(50))
        .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(10)))
        .session()
        .expect("valid scenario");
    let tracer = session.tracer().clone();
    let report = session.finish();

    let ping = report.flows_of("ping").next().expect("ping flow");
    let rtt = ping.rtt.as_ref().expect("rtt stats");
    println!(
        "ping: mean RTT {:.2} ms, jitter {:.2} ms over {} replies",
        rtt.mean_ms, rtt.jitter_ms, rtt.replies
    );
    let iperf = report.flows_of("iperf-tcp").next().expect("iperf flow");
    println!(
        "iperf: {:.2} Mb/s average goodput ({} retransmissions)",
        iperf.goodput_mbps.unwrap_or(0.0),
        iperf.retransmissions.unwrap_or(0)
    );
    println!(
        "  (the 0.5 ms jitter link reorders segments — netem semantics — so \
         TCP runs far below the 50 Mb/s shaped rate; drop the jitter to see \
         it saturate)"
    );
    for link in &report.links {
        println!(
            "link {}: {:.1} / {:.1} Mb/s offered ({:.0}% utilized)",
            link.link,
            link.offered_mbps,
            link.capacity_mbps,
            link.utilization * 100.0
        );
    }

    // The flight recorder saw every emulation phase; the report carries
    // the per-phase roll-up and the full event stream exports as a Chrome
    // trace for Perfetto.
    for phase in report.phase_timing.as_deref().unwrap_or_default() {
        println!(
            "phase {}: {} µs total over {} ticks (max {} µs)",
            phase.phase, phase.total_micros, phase.count, phase.max_micros
        );
    }

    // The whole report is machine-readable JSON for downstream tooling; CI
    // uploads the written files as workflow artifacts.
    println!("\n{}", report.to_json_string());
    let path = std::path::Path::new("target").join("quickstart-report.json");
    match std::fs::create_dir_all("target")
        .and_then(|()| std::fs::write(&path, report.to_json_string()))
    {
        Ok(()) => println!("\nreport written to {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
    let trace_path = std::path::Path::new("target").join("quickstart.trace.json");
    match std::fs::write(
        &trace_path,
        kollaps::trace::chrome_trace_string(&tracer.events(), 0),
    ) {
        Ok(()) => println!(
            "trace written to {} (open in Perfetto)",
            trace_path.display()
        ),
        Err(e) => eprintln!("could not write {}: {e}", trace_path.display()),
    }
}
