//! Quickstart: describe a topology in the Kollaps DSL, emulate it, and
//! measure what an application sees.
//!
//! Run with `cargo run --example quickstart`.

use kollaps::core::emulation::KollapsDataplane;
use kollaps::core::runtime::Runtime;
use kollaps::sim::prelude::*;
use kollaps::topology::dsl::parse_experiment;
use kollaps::transport::tcp::CongestionAlgorithm;
use kollaps::workloads::{run_iperf_tcp, run_ping};

const EXPERIMENT: &str = r#"
experiment:
  services:
    name: client
    image: "iperf3"
    name: server
    image: "nginx"
  bridges:
    name: s1
  links:
    orig: client
    dest: s1
    latency: 10
    up: 50Mbps
    down: 50Mbps
    jitter: 0.5
    orig: s1
    dest: server
    latency: 5
    up: 100Mbps
    down: 100Mbps
"#;

fn main() {
    // 1. Parse the experiment description (paper Listing 1 syntax).
    let experiment = parse_experiment(EXPERIMENT).expect("valid experiment");
    println!(
        "parsed topology: {} services, {} bridges, {} links",
        experiment.topology.service_ids().len(),
        experiment.topology.bridge_ids().len(),
        experiment.topology.link_count()
    );

    // 2. Build the Kollaps emulation: the topology is collapsed to
    //    end-to-end properties and enforced by per-container qdisc trees.
    let dataplane = KollapsDataplane::with_defaults(experiment.topology, 2);
    let client = dataplane.address_of_index(0);
    let server = dataplane.address_of_index(1);
    let collapsed = dataplane.collapsed().clone();
    for path in collapsed.paths() {
        println!(
            "collapsed path {} -> {}: latency {}, max bandwidth {}",
            path.src, path.dst, path.latency, path.max_bandwidth
        );
    }

    // 3. Run applications against the emulated network.
    let mut rt = Runtime::new(dataplane);
    let ping = run_ping(&mut rt, client, server, 50, SimDuration::from_millis(100));
    println!(
        "ping: mean RTT {:.2} ms, jitter {:.2} ms over {} replies",
        ping.mean_rtt_ms, ping.jitter_ms, ping.replies
    );
    let iperf = run_iperf_tcp(
        &mut rt,
        client,
        server,
        CongestionAlgorithm::Cubic,
        SimDuration::from_secs(10),
    );
    println!(
        "iperf: {:.2} Mb/s average goodput ({} retransmissions)",
        iperf.average.as_mbps(),
        iperf.retransmissions
    );
}
