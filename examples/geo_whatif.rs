//! What-if analysis (paper §5.6, Figure 11): how would a geo-replicated
//! Cassandra deployment behave if its remote replicas moved to a closer
//! region? Kollaps answers this with a topology-file change instead of a
//! costly real deployment.
//!
//! Run with `cargo run --example geo_whatif`.

use kollaps::sim::units::Bandwidth;
use kollaps::topology::geo::{build_geo_topology, Region};
use kollaps::workloads::{cassandra_curve, CassandraConfig};

fn main() {
    // Show the emulated inter-region topology Kollaps would deploy.
    let (topology, per_region) = build_geo_topology(
        &[Region("Frankfurt"), Region("Sydney")],
        4,
        Bandwidth::from_gbps(1),
        "cassandra",
    );
    println!(
        "geo topology: {} containers, {} links ({} per region)",
        topology.service_ids().len(),
        topology.link_count(),
        per_region[0].len()
    );

    let base = CassandraConfig::frankfurt_sydney();
    let whatif = base.halved_latency();
    let targets: Vec<f64> = (1..=8).map(|i| i as f64 * 600.0).collect();
    let before = cassandra_curve(&base, &targets, 99);
    let after = cassandra_curve(&whatif, &targets, 99);

    println!(
        "\n{:>10} | {:>22} | {:>22}",
        "target", "Sydney (orig)", "Seoul (halved latency)"
    );
    println!(
        "{:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "ops/s", "read ms", "update ms", "read ms", "update ms"
    );
    for (i, t) in targets.iter().enumerate() {
        println!(
            "{:>10.0} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
            t,
            before[i].read_latency_ms,
            before[i].update_latency_ms,
            after[i].read_latency_ms,
            after[i].update_latency_ms
        );
    }
    println!("\nAs in the paper, update latencies drop by roughly half and the");
    println!("cluster sustains higher throughput before the latency knee.");
}
