//! What-if analysis (paper §5.6, Figure 11): how would a geo-replicated
//! Cassandra deployment behave if its remote replicas moved to a closer
//! region? Kollaps answers this with a topology-file change instead of a
//! costly real deployment.
//!
//! The inter-region network is emulated with a `Scenario` (ping probes
//! measure what the deployed containers would see); the Cassandra/YCSB
//! curves come from the application-level model driven by those latencies.
//!
//! Run with `cargo run --example geo_whatif`.

use kollaps::prelude::*;
use kollaps::topology::geo::{build_geo_topology, Region};
use kollaps::workloads::{cassandra_curve, CassandraConfig};

fn main() {
    // Show the emulated inter-region topology Kollaps would deploy, and
    // measure the cross-region RTT the containers actually experience.
    let (topology, per_region) = build_geo_topology(
        &[Region("Frankfurt"), Region("Sydney")],
        4,
        Bandwidth::from_gbps(1),
        "cassandra",
    );
    println!(
        "geo topology: {} containers, {} links ({} per region)",
        topology.service_ids().len(),
        topology.link_count(),
        per_region[0].len()
    );

    let report = Scenario::from_topology(topology)
        .named("frankfurt-sydney")
        .workload(
            Workload::ping("Frankfurt-0", "Sydney-0")
                .count(20)
                .interval(SimDuration::from_millis(200)),
        )
        .run()
        .expect("valid scenario");
    let rtt = report.flows[0].rtt.as_ref().expect("rtt stats");
    println!(
        "emulated Frankfurt <-> Sydney RTT: {:.1} ms over {} probes",
        rtt.mean_ms, rtt.replies
    );

    let base = CassandraConfig::frankfurt_sydney();
    let whatif = base.halved_latency();
    let targets: Vec<f64> = (1..=8).map(|i| i as f64 * 600.0).collect();
    let before = cassandra_curve(&base, &targets, 99);
    let after = cassandra_curve(&whatif, &targets, 99);

    println!(
        "\n{:>10} | {:>22} | {:>22}",
        "target", "Sydney (orig)", "Seoul (halved latency)"
    );
    println!(
        "{:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "ops/s", "read ms", "update ms", "read ms", "update ms"
    );
    for (i, t) in targets.iter().enumerate() {
        println!(
            "{:>10.0} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
            t,
            before[i].read_latency_ms,
            before[i].update_latency_ms,
            after[i].read_latency_ms,
            after[i].update_latency_ms
        );
    }
    println!("\nAs in the paper, update latencies drop by roughly half and the");
    println!("cluster sustains higher throughput before the latency knee.");
}
