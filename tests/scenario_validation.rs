//! Scenario-builder validation: every malformed composition is rejected
//! with the right typed [`ScenarioError`] before anything runs.

use kollaps::prelude::*;
use kollaps::topology::events::{DynamicAction, DynamicEvent, LinkChange};
use kollaps::topology::generators;
use kollaps::topology::model::LinkProperties;

fn p2p() -> Topology {
    let (topo, _, _) = generators::point_to_point(
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(5),
        SimDuration::ZERO,
    );
    topo
}

#[test]
fn unknown_node_name_is_rejected() {
    let err = Scenario::from_topology(p2p())
        .workload(Workload::iperf_tcp("client", "ghost"))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::UnknownNodes { ref names } if names == &["ghost".to_string()]),
        "{err}"
    );
}

/// The one-pass contract: every unknown endpoint name across every
/// workload is collected into a single error (deduplicated, in
/// first-reference order), so a misspelled scenario is fixed once.
#[test]
fn all_unknown_node_names_are_reported_at_once() {
    let err = Scenario::from_topology(p2p())
        .workload(Workload::iperf_tcp("ghost-a", "ghost-b"))
        .workload(Workload::ping("client", "ghost-c"))
        .workload(Workload::curl("ghost-a", &["server", "ghost-d"]))
        .run()
        .unwrap_err();
    let ScenarioError::UnknownNodes { names } = &err else {
        panic!("expected UnknownNodes, got {err}");
    };
    assert_eq!(names, &["ghost-a", "ghost-b", "ghost-c", "ghost-d"]);
    let text = format!("{err}");
    for name in names {
        assert!(text.contains(name.as_str()), "{text}");
    }
}

#[test]
fn workloads_on_bridges_are_rejected() {
    // `s1` exists in the DSL topology but is a bridge, not a service.
    let description = "experiment:\n  services:\n    name: a\n    name: b\n  bridges:\n    name: s1\n  links:\n    orig: a\n    dest: s1\n    up: 10Mbps\n    orig: s1\n    dest: b\n    up: 10Mbps\n";
    let err = Scenario::from_dsl(description)
        .workload(Workload::ping("a", "s1"))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::NotAService { ref name } if name == "s1"),
        "{err}"
    );
}

#[test]
fn zero_bandwidth_links_are_rejected() {
    let mut topo = Topology::new();
    let a = topo.add_service("a", 0, "x");
    let b = topo.add_service("b", 0, "x");
    topo.add_bidirectional_link(
        a,
        b,
        LinkProperties::new(SimDuration::from_millis(1), Bandwidth::ZERO),
        "net",
    );
    let err = Scenario::from_topology(topo)
        .workload(Workload::ping("a", "b"))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::ZeroBandwidthLink { .. }),
        "{err}"
    );
}

#[test]
fn empty_workloads_are_rejected() {
    let err = Scenario::from_topology(p2p()).run().unwrap_err();
    assert!(matches!(err, ScenarioError::EmptyWorkload), "{err}");
}

#[test]
fn self_flows_and_zero_rates_are_rejected() {
    let err = Scenario::from_topology(p2p())
        .workload(Workload::iperf_tcp("client", "client"))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::InvalidWorkload { .. }),
        "{err}"
    );

    let err = Scenario::from_topology(p2p())
        .workload(Workload::iperf_udp("client", "server", Bandwidth::ZERO))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::InvalidWorkload { .. }),
        "{err}"
    );

    let err = Scenario::from_topology(p2p())
        .workload(Workload::ping("client", "server").count(0))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::InvalidWorkload { .. }),
        "{err}"
    );

    let err = Scenario::from_topology(p2p())
        .workload(Workload::curl("server", &[]))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::InvalidWorkload { .. }),
        "{err}"
    );
}

#[test]
fn mininet_rejects_rates_above_its_ceiling() {
    let (topo, _, _) = generators::point_to_point(
        Bandwidth::from_gbps(2),
        SimDuration::from_millis(5),
        SimDuration::ZERO,
    );
    let err = Scenario::from_topology(topo)
        .backend(Backend::mininet())
        .workload(Workload::iperf_tcp("client", "server"))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::UnsupportedBackend { ref backend, .. } if backend == "mininet"),
        "{err}"
    );
}

#[test]
fn baselines_reject_dynamic_events() {
    let err = Scenario::from_topology(p2p())
        .backend(Backend::ground_truth())
        .event(DynamicEvent {
            at: SimDuration::from_secs(1),
            action: DynamicAction::SetLinkProperties {
                orig: "client".into(),
                dest: "server".into(),
                change: LinkChange::default(),
            },
        })
        .workload(Workload::ping("client", "server"))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::UnsupportedBackend { ref backend, .. } if backend == "ground-truth"),
        "{err}"
    );
}

#[test]
fn parse_errors_surface_typed() {
    let err = Scenario::from_dsl("experiment:\n  services:\n    just words\n")
        .workload(Workload::ping("a", "b"))
        .run()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::Parse(_)), "{err}");

    let err = Scenario::from_xml("<not-modelnet/>")
        .workload(Workload::ping("a", "b"))
        .run();
    // Whether the XML parser reports an error or an empty topology, the
    // scenario must not run a workload against nodes that do not exist.
    match err {
        Err(ScenarioError::Xml(_)) | Err(ScenarioError::UnknownNodes { .. }) => {}
        other => panic!("expected typed failure, got {other:?}"),
    }
}

#[test]
fn zero_intervals_are_rejected() {
    let err = Scenario::from_topology(p2p())
        .step_interval(SimDuration::ZERO)
        .workload(Workload::ping("client", "server"))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::InvalidStepInterval { knob } if knob == "step_interval"),
        "{err}"
    );
    let err = Scenario::from_topology(p2p())
        .sample_interval(SimDuration::ZERO)
        .workload(Workload::ping("client", "server"))
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ScenarioError::InvalidStepInterval { knob } if knob == "sample_interval"),
        "{err}"
    );
    // A positive step interval is a legitimate pacing knob.
    let report = Scenario::from_topology(p2p())
        .step_interval(SimDuration::from_millis(25))
        .workload(Workload::ping("client", "server").count(3))
        .run()
        .expect("valid scenario");
    assert_eq!(report.flows[0].rtt.as_ref().unwrap().replies, 3);
}

#[test]
fn errors_display_helpfully() {
    let err = Scenario::from_topology(p2p())
        .workload(Workload::iperf_tcp("client", "ghost"))
        .run()
        .unwrap_err();
    let text = format!("{err}");
    assert!(text.contains("ghost"), "{text}");
    let err = Scenario::from_topology(p2p()).run().unwrap_err();
    assert!(format!("{err}").contains("no workloads"));
}
