//! Workspace smoke test: the umbrella crate's re-exports and prelude must
//! resolve and agree with the underlying crates, so downstream experiment
//! code can depend on `kollaps::prelude::*` alone.

use kollaps::prelude::*;

#[test]
fn prelude_reexports_resolve_and_are_usable() {
    // Simulation substrate.
    let t = SimTime::from_millis(5) + SimDuration::from_millis(5);
    assert_eq!(t, SimTime::from_millis(10));
    assert_eq!(Bandwidth::from_mbps(1).as_bps(), 1_000_000);
    assert_eq!(DataSize::from_bytes(1500).as_bytes(), 1500);
    let mut rng = SimRng::new(7);
    assert!(rng.next_f64() < 1.0);

    // Topology + emulation entry points.
    let mut topo = Topology::new();
    let a = topo.add_service("a", 0, "img");
    let b = topo.add_service("b", 0, "img");
    topo.add_bidirectional_link(
        a,
        b,
        kollaps::topology::model::LinkProperties::new(
            SimDuration::from_millis(10),
            Bandwidth::from_mbps(10),
        ),
        "net",
    );
    let collapsed = CollapsedTopology::build(&topo);
    assert!(collapsed.path(a, b).is_some());

    let dp = KollapsDataplane::new(
        topo,
        kollaps::topology::events::EventSchedule::new(),
        1,
        EmulationConfig::default(),
    );
    let (ca, cb) = (dp.address_of_index(0), dp.address_of_index(1));
    let mut rt = Runtime::new(dp);
    let report = run_ping(&mut rt, ca, cb, 3, SimDuration::from_millis(100));
    assert_eq!(report.samples.len(), 3);
    assert!(
        (report.mean_rtt_ms - 20.0).abs() < 1.0,
        "rtt {}",
        report.mean_rtt_ms
    );
}

#[test]
fn umbrella_modules_alias_the_member_crates() {
    // Spot-check that each façade module points at the right crate by
    // touching one item through both paths.
    let d1: kollaps::sim::units::Bandwidth = Bandwidth::from_kbps(64);
    assert_eq!(d1.as_bps(), 64_000);
    let _config: kollaps::core::emulation::EmulationConfig = EmulationConfig::default();
    let _algo: kollaps::transport::tcp::CongestionAlgorithm = CongestionAlgorithm::Cubic;
    let _size: TransferSize = TransferSize::Bytes(1024);
    let _tcp: TcpSenderConfig = TcpSenderConfig::default();
    let _gt: Option<GroundTruthDataplane> = None;
    let parsed = parse_experiment("experiment:\n  services:\n    name: solo\n    image: \"x\"\n");
    assert!(parsed.is_ok());
}

#[test]
fn prelude_scenario_builder_is_usable() {
    // The scenario layer is reachable from the prelude alone, end to end.
    let (topo, _, _) = kollaps::topology::generators::point_to_point(
        Bandwidth::from_mbps(10),
        SimDuration::from_millis(5),
        SimDuration::ZERO,
    );
    let report: Report = Scenario::from_topology(topo)
        .named("smoke")
        .backend(Backend::kollaps())
        .workload(
            Workload::ping("client", "server")
                .count(3)
                .duration(SimDuration::from_secs(1)),
        )
        .run()
        .expect("valid scenario");
    assert_eq!(report.scenario, "smoke");
    assert_eq!(report.flows[0].rtt.as_ref().unwrap().replies, 3);
    assert!(report.to_json_string().contains("\"backend\":\"kollaps\""));
    // The typed error surface is part of the prelude too.
    let err: ScenarioError = Scenario::from_topology(kollaps::topology::model::Topology::new())
        .run()
        .unwrap_err();
    assert!(matches!(err, ScenarioError::EmptyWorkload));
    // The shared addressing trait resolves for every backend.
    let (topo, _, _) = kollaps::topology::generators::point_to_point(
        Bandwidth::from_mbps(10),
        SimDuration::from_millis(5),
        SimDuration::ZERO,
    );
    let gt = GroundTruthDataplane::new(&topo);
    assert_eq!(
        gt.address_of_index(0),
        gt.collapsed().addresses().map(|(_, a)| a).min().unwrap()
    );
}
