//! Cross-crate integration tests: experiment description → collapsed
//! emulation → transport → workloads, compared against the full-state
//! ground truth.

use kollaps::baselines::GroundTruthDataplane;
use kollaps::core::emulation::{EmulationConfig, KollapsDataplane};
use kollaps::core::runtime::Runtime;
use kollaps::core::CollapsedTopology;
use kollaps::orchestrator::{Cluster, DeploymentGenerator, Orchestrator};
use kollaps::sim::prelude::*;
use kollaps::topology::dsl::parse_experiment;
use kollaps::topology::events::{DynamicAction, DynamicEvent, EventSchedule, LinkChange};
use kollaps::topology::generators;
use kollaps::transport::tcp::CongestionAlgorithm;
use kollaps::workloads::{run_iperf_tcp, run_ping};

const EXPERIMENT: &str = r#"
experiment:
  services:
    name: client
    image: "iperf3"
    name: server
    image: "nginx"
  bridges:
    name: s1
    name: s2
  links:
    orig: client
    dest: s1
    latency: 10
    up: 20Mbps
    down: 20Mbps
    orig: s1
    dest: s2
    latency: 15
    up: 100Mbps
    down: 100Mbps
    orig: s2
    dest: server
    latency: 5
    up: 50Mbps
    down: 50Mbps
"#;

#[test]
fn dsl_to_emulation_round_trip() {
    let experiment = parse_experiment(EXPERIMENT).expect("parse");
    let collapsed = CollapsedTopology::build(&experiment.topology);
    let client = experiment.topology.node_by_name("client").unwrap();
    let server = experiment.topology.node_by_name("server").unwrap();
    let path = collapsed.path(client, server).expect("reachable");
    assert_eq!(path.latency, SimDuration::from_millis(30));
    assert_eq!(path.max_bandwidth, Bandwidth::from_mbps(20));

    // The emulated RTT and goodput match the collapsed expectations.
    let dp = KollapsDataplane::with_defaults(experiment.topology.clone(), 2);
    let c = dp.address_of_index(0);
    let s = dp.address_of_index(1);
    let mut rt = Runtime::new(dp);
    let ping = run_ping(&mut rt, c, s, 30, SimDuration::from_millis(200));
    assert!(
        (ping.mean_rtt_ms - 60.0).abs() < 1.0,
        "rtt {}",
        ping.mean_rtt_ms
    );
    let iperf = run_iperf_tcp(
        &mut rt,
        c,
        s,
        CongestionAlgorithm::Cubic,
        SimDuration::from_secs(10),
    );
    let mbps = iperf.average.as_mbps();
    assert!((15.0..=20.5).contains(&mbps), "goodput {mbps}");
}

#[test]
fn kollaps_tracks_ground_truth_on_the_same_workload() {
    let (topo, _, _) = generators::point_to_point(
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(10),
        SimDuration::ZERO,
    );
    // Ground truth (hop-by-hop).
    let gt = GroundTruthDataplane::new(&topo);
    let (a, b) = (gt.address_of_index(0), gt.address_of_index(1));
    let mut rt = Runtime::new(gt);
    let bare = run_iperf_tcp(
        &mut rt,
        a,
        b,
        CongestionAlgorithm::Cubic,
        SimDuration::from_secs(10),
    )
    .average
    .as_mbps();
    // Kollaps (collapsed).
    let dp = KollapsDataplane::with_defaults(topo, 1);
    let (a, b) = (dp.address_of_index(0), dp.address_of_index(1));
    let mut rt = Runtime::new(dp);
    let kollaps = run_iperf_tcp(
        &mut rt,
        a,
        b,
        CongestionAlgorithm::Cubic,
        SimDuration::from_secs(10),
    )
    .average
    .as_mbps();
    let deviation = (1.0 - kollaps / bare).abs() * 100.0;
    assert!(
        deviation < 10.0,
        "kollaps {kollaps} vs bare metal {bare}: deviation {deviation:.1}%"
    );
}

#[test]
fn dynamic_events_change_the_emulated_network() {
    let (topo, _, _) = generators::point_to_point(
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(10),
        SimDuration::ZERO,
    );
    let mut schedule = EventSchedule::new();
    schedule.push(DynamicEvent {
        at: SimDuration::from_secs(3),
        action: DynamicAction::SetLinkProperties {
            orig: "client".into(),
            dest: "server".into(),
            change: LinkChange {
                latency: Some(SimDuration::from_millis(50)),
                ..LinkChange::default()
            },
        },
    });
    let dp = KollapsDataplane::new(topo, schedule, 1, EmulationConfig::default());
    let (a, b) = (dp.address_of_index(0), dp.address_of_index(1));
    let mut rt = Runtime::new(dp);
    let report = run_ping(&mut rt, a, b, 12, SimDuration::from_millis(500));
    let early = report.samples[..4].iter().sum::<f64>() / 4.0;
    let late = report.samples[8..].iter().sum::<f64>() / 4.0;
    assert!((early - 20.0).abs() < 1.0, "early {early}");
    assert!((late - 100.0).abs() < 2.0, "late {late}");
}

#[test]
fn deployment_generator_covers_the_whole_topology() {
    let experiment = parse_experiment(EXPERIMENT).expect("parse");
    let generator = DeploymentGenerator::new(Cluster::paper_testbed(3), Orchestrator::Kubernetes);
    let plan = generator.generate(&experiment.topology);
    assert_eq!(plan.containers.len(), 2);
    let manifest = plan.render_manifest();
    assert!(manifest.contains("kind: Pod"));
    assert!(manifest.contains("iperf3"));
}

#[test]
fn metadata_traffic_scales_with_hosts_not_containers() {
    let (topo, clients, servers) = generators::dumbbell(
        8,
        Bandwidth::from_mbps(100),
        Bandwidth::from_mbps(50),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
    );
    let collapsed = CollapsedTopology::build(&topo);
    let mut totals = Vec::new();
    for hosts in [2usize, 4] {
        let dp = KollapsDataplane::with_defaults(topo.clone(), hosts);
        let mut rt = Runtime::new(dp);
        for i in 0..8 {
            let c = collapsed.address_of(clients[i]).unwrap();
            let s = collapsed.address_of(servers[i]).unwrap();
            rt.add_udp_flow(c, s, Bandwidth::from_mbps(5), SimTime::ZERO, None);
        }
        let _ = rt.run_until(SimTime::from_secs(5));
        totals.push(rt.dataplane.metadata_accounting().total_network_bytes());
    }
    assert!(totals[0] > 0);
    assert!(
        totals[1] > totals[0],
        "more hosts, more metadata: {totals:?}"
    );
}
