//! Cross-crate integration tests: experiment description → scenario
//! builder → collapsed emulation → transport → workloads, compared against
//! the full-state ground truth.

use kollaps::orchestrator::{Cluster, DeploymentGenerator, Orchestrator};
use kollaps::prelude::*;
use kollaps::topology::dsl::parse_experiment;
use kollaps::topology::events::{DynamicAction, DynamicEvent, LinkChange};
use kollaps::topology::generators;

const EXPERIMENT: &str = r#"
experiment:
  services:
    name: client
    image: "iperf3"
    name: server
    image: "nginx"
  bridges:
    name: s1
    name: s2
  links:
    orig: client
    dest: s1
    latency: 10
    up: 20Mbps
    down: 20Mbps
    orig: s1
    dest: s2
    latency: 15
    up: 100Mbps
    down: 100Mbps
    orig: s2
    dest: server
    latency: 5
    up: 50Mbps
    down: 50Mbps
"#;

#[test]
fn dsl_to_emulation_round_trip() {
    // The collapsed view matches the hand-computed end-to-end properties.
    let experiment = parse_experiment(EXPERIMENT).expect("parse");
    let collapsed = CollapsedTopology::build(&experiment.topology);
    let client = experiment.topology.node_by_name("client").unwrap();
    let server = experiment.topology.node_by_name("server").unwrap();
    let path = collapsed.path(client, server).expect("reachable");
    assert_eq!(path.latency, SimDuration::from_millis(30));
    assert_eq!(path.max_bandwidth, Bandwidth::from_mbps(20));

    // One scenario measures both what ping and iPerf see on that topology.
    let report = Scenario::from_dsl(EXPERIMENT)
        .named("e2e-round-trip")
        .backend(Backend::kollaps_on(2))
        .workload(
            Workload::ping("client", "server")
                .count(30)
                .interval(SimDuration::from_millis(200)),
        )
        .workload(
            Workload::iperf_tcp("client", "server")
                .start(SimDuration::from_secs(7))
                .duration(SimDuration::from_secs(10)),
        )
        .run()
        .expect("valid scenario");
    let ping = report.flows_of("ping").next().unwrap();
    let rtt = ping.rtt.as_ref().unwrap();
    assert!((rtt.mean_ms - 60.0).abs() < 1.0, "rtt {}", rtt.mean_ms);
    let iperf = report.flows_of("iperf-tcp").next().unwrap();
    let mbps = iperf.goodput_mbps.unwrap();
    assert!((15.0..=20.5).contains(&mbps), "goodput {mbps}");
    // The report exposes the bottleneck: the client access link is the most
    // utilized link of the path.
    let max_util = report
        .links
        .iter()
        .map(|l| l.utilization)
        .fold(0.0, f64::max);
    assert!((0.5..=1.1).contains(&max_util), "utilization {max_util}");
}

#[test]
fn kollaps_tracks_ground_truth_on_the_same_workload() {
    let measure = |backend: Backend| -> f64 {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
        );
        let report = Scenario::from_topology(topo)
            .backend(backend)
            .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(10)))
            .run()
            .expect("valid scenario");
        report.flows[0].goodput_mbps.unwrap()
    };
    let bare = measure(Backend::ground_truth());
    let kollaps = measure(Backend::kollaps());
    let deviation = (1.0 - kollaps / bare).abs() * 100.0;
    assert!(
        deviation < 10.0,
        "kollaps {kollaps} vs bare metal {bare}: deviation {deviation:.1}%"
    );
}

#[test]
fn dynamic_events_change_the_emulated_network() {
    let (topo, _, _) = generators::point_to_point(
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(10),
        SimDuration::ZERO,
    );
    let report = Scenario::from_topology(topo)
        .event(DynamicEvent {
            at: SimDuration::from_secs(3),
            action: DynamicAction::SetLinkProperties {
                orig: "client".into(),
                dest: "server".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(50)),
                    ..LinkChange::default()
                },
            },
        })
        .workload(
            Workload::ping("client", "server")
                .count(12)
                .interval(SimDuration::from_millis(500)),
        )
        .run()
        .expect("valid scenario");
    let samples = &report.flows[0].rtt.as_ref().unwrap().samples_ms;
    let early = samples[..4].iter().sum::<f64>() / 4.0;
    let late = samples[8..].iter().sum::<f64>() / 4.0;
    assert!((early - 20.0).abs() < 1.0, "early {early}");
    assert!((late - 100.0).abs() < 2.0, "late {late}");
}

#[test]
fn deployment_generator_covers_the_whole_topology() {
    let experiment = parse_experiment(EXPERIMENT).expect("parse");
    let generator = DeploymentGenerator::new(Cluster::paper_testbed(3), Orchestrator::Kubernetes);
    let plan = generator.generate(&experiment.topology);
    assert_eq!(plan.containers.len(), 2);
    let manifest = plan.render_manifest();
    assert!(manifest.contains("kind: Pod"));
    assert!(manifest.contains("iperf3"));
}

#[test]
fn metadata_traffic_scales_with_hosts_not_containers() {
    let (topo, _, _) = generators::dumbbell(
        8,
        Bandwidth::from_mbps(100),
        Bandwidth::from_mbps(50),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
    );
    let mut totals = Vec::new();
    for hosts in [2usize, 4] {
        let workloads = (0..8).map(|i| {
            Workload::iperf_udp(
                &format!("client-{i}"),
                &format!("server-{i}"),
                Bandwidth::from_mbps(5),
            )
            .duration(SimDuration::from_secs(5))
        });
        let report = Scenario::from_topology(topo.clone())
            .backend(Backend::kollaps_on(hosts))
            .workloads(workloads)
            .run()
            .expect("valid scenario");
        totals.push(report.metadata_bytes.expect("kollaps reports metadata"));
    }
    assert!(totals[0] > 0);
    assert!(
        totals[1] > totals[0],
        "more hosts, more metadata: {totals:?}"
    );
}

#[test]
fn every_backend_runs_the_same_scenario() {
    // The unified backend abstraction: identical scenario, five networks.
    let backends = [
        Backend::kollaps(),
        Backend::ground_truth(),
        Backend::mininet(),
        Backend::maxinet(),
        Backend::trickle(kollaps::baselines::TrickleConfig::tuned(
            Bandwidth::from_mbps(50),
        )),
    ];
    for backend in backends {
        let name = backend.name();
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let report = Scenario::from_topology(topo)
            .backend(backend)
            .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(5)))
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mbps = report.flows[0].goodput_mbps.unwrap();
        assert!((30.0..=55.0).contains(&mbps), "{name}: goodput {mbps} Mb/s");
    }
}
