//! Cross-crate integration tests: experiment description → scenario
//! builder → collapsed emulation → transport → workloads, compared against
//! the full-state ground truth.

use kollaps::orchestrator::{Cluster, DeploymentGenerator, Orchestrator};
use kollaps::prelude::*;
use kollaps::topology::dsl::parse_experiment;
use kollaps::topology::events::{DynamicAction, DynamicEvent, LinkChange};
use kollaps::topology::generators;

const EXPERIMENT: &str = r#"
experiment:
  services:
    name: client
    image: "iperf3"
    name: server
    image: "nginx"
  bridges:
    name: s1
    name: s2
  links:
    orig: client
    dest: s1
    latency: 10
    up: 20Mbps
    down: 20Mbps
    orig: s1
    dest: s2
    latency: 15
    up: 100Mbps
    down: 100Mbps
    orig: s2
    dest: server
    latency: 5
    up: 50Mbps
    down: 50Mbps
"#;

#[test]
fn dsl_to_emulation_round_trip() {
    // The collapsed view matches the hand-computed end-to-end properties.
    let experiment = parse_experiment(EXPERIMENT).expect("parse");
    let collapsed = CollapsedTopology::build(&experiment.topology);
    let client = experiment.topology.node_by_name("client").unwrap();
    let server = experiment.topology.node_by_name("server").unwrap();
    let path = collapsed.path(client, server).expect("reachable");
    assert_eq!(path.latency, SimDuration::from_millis(30));
    assert_eq!(path.max_bandwidth, Bandwidth::from_mbps(20));

    // One scenario measures both what ping and iPerf see on that topology.
    let report = Scenario::from_dsl(EXPERIMENT)
        .named("e2e-round-trip")
        .backend(Backend::kollaps_on(2))
        .workload(
            Workload::ping("client", "server")
                .count(30)
                .interval(SimDuration::from_millis(200)),
        )
        .workload(
            Workload::iperf_tcp("client", "server")
                .start(SimDuration::from_secs(7))
                .duration(SimDuration::from_secs(10)),
        )
        .run()
        .expect("valid scenario");
    let ping = report.flows_of("ping").next().unwrap();
    let rtt = ping.rtt.as_ref().unwrap();
    assert!((rtt.mean_ms - 60.0).abs() < 1.0, "rtt {}", rtt.mean_ms);
    let iperf = report.flows_of("iperf-tcp").next().unwrap();
    let mbps = iperf.goodput_mbps.unwrap();
    assert!((15.0..=20.5).contains(&mbps), "goodput {mbps}");
    // The report exposes the bottleneck: the client access link is the most
    // utilized link of the path.
    let max_util = report
        .links
        .iter()
        .map(|l| l.utilization)
        .fold(0.0, f64::max);
    assert!((0.5..=1.1).contains(&max_util), "utilization {max_util}");
}

#[test]
fn kollaps_tracks_ground_truth_on_the_same_workload() {
    let measure = |backend: Backend| -> f64 {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
        );
        let report = Scenario::from_topology(topo)
            .backend(backend)
            .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(10)))
            .run()
            .expect("valid scenario");
        report.flows[0].goodput_mbps.unwrap()
    };
    let bare = measure(Backend::ground_truth());
    let kollaps = measure(Backend::kollaps());
    let deviation = (1.0 - kollaps / bare).abs() * 100.0;
    assert!(
        deviation < 10.0,
        "kollaps {kollaps} vs bare metal {bare}: deviation {deviation:.1}%"
    );
}

#[test]
fn dynamic_events_change_the_emulated_network() {
    let (topo, _, _) = generators::point_to_point(
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(10),
        SimDuration::ZERO,
    );
    let report = Scenario::from_topology(topo)
        .event(DynamicEvent {
            at: SimDuration::from_secs(3),
            action: DynamicAction::SetLinkProperties {
                orig: "client".into(),
                dest: "server".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(50)),
                    ..LinkChange::default()
                },
            },
        })
        .workload(
            Workload::ping("client", "server")
                .count(12)
                .interval(SimDuration::from_millis(500)),
        )
        .run()
        .expect("valid scenario");
    let samples = &report.flows[0].rtt.as_ref().unwrap().samples_ms;
    let early = samples[..4].iter().sum::<f64>() / 4.0;
    let late = samples[8..].iter().sum::<f64>() / 4.0;
    assert!((early - 20.0).abs() < 1.0, "early {early}");
    assert!((late - 100.0).abs() < 2.0, "late {late}");
}

#[test]
fn deployment_generator_covers_the_whole_topology() {
    let experiment = parse_experiment(EXPERIMENT).expect("parse");
    let generator = DeploymentGenerator::new(Cluster::paper_testbed(3), Orchestrator::Kubernetes);
    let plan = generator.generate(&experiment.topology);
    assert_eq!(plan.containers.len(), 2);
    let manifest = plan.render_manifest();
    assert!(manifest.contains("kind: Pod"));
    assert!(manifest.contains("iperf3"));
}

#[test]
fn metadata_traffic_scales_with_hosts_not_containers() {
    let (topo, _, _) = generators::dumbbell(
        8,
        Bandwidth::from_mbps(100),
        Bandwidth::from_mbps(50),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
    );
    let mut totals = Vec::new();
    for hosts in [2usize, 4] {
        let workloads = (0..8).map(|i| {
            Workload::iperf_udp(
                &format!("client-{i}"),
                &format!("server-{i}"),
                Bandwidth::from_mbps(5),
            )
            .duration(SimDuration::from_secs(5))
        });
        let report = Scenario::from_topology(topo.clone())
            .backend(Backend::kollaps_on(hosts))
            .workloads(workloads)
            .run()
            .expect("valid scenario");
        totals.push(report.metadata_bytes.expect("kollaps reports metadata"));
    }
    assert!(totals[0] > 0);
    assert!(
        totals[1] > totals[0],
        "more hosts, more metadata: {totals:?}"
    );
}

#[test]
fn every_backend_runs_the_same_scenario() {
    // The unified backend abstraction: identical scenario, five networks.
    let backends = [
        Backend::kollaps(),
        Backend::ground_truth(),
        Backend::mininet(),
        Backend::maxinet(),
        Backend::trickle(kollaps::baselines::TrickleConfig::tuned(
            Bandwidth::from_mbps(50),
        )),
    ];
    for backend in backends {
        let name = backend.name();
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let report = Scenario::from_topology(topo)
            .backend(backend)
            .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(5)))
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mbps = report.flows[0].goodput_mbps.unwrap();
        assert!((30.0..=55.0).contains(&mbps), "{name}: goodput {mbps} Mb/s");
    }
}

#[test]
fn staggered_join_converges_to_the_new_shares() {
    // Regression test for the staggered-join goodput inaccuracy (predates
    // the scenario layer, hence the direct `Runtime` API): when C3 joined
    // the Figure 8 topology at t = 15 s, the established C1/C2 flows used to
    // collapse far below their new fair share (C1 ≈ 5 Mb/s instead of
    // 18.45) because the same loop iteration that cut their htb rates also
    // injected congestion loss for the one-iteration overload the join
    // itself caused. Congestion loss now waits out that transient (it only
    // fires once a link stays oversubscribed), so the flows must settle
    // near the paper's post-join allocation: 18.45 / 21.55 / 10 Mb/s.
    let (topo, clients, servers) = generators::figure8();
    let collapsed = CollapsedTopology::build(&topo);
    let addr = |n| collapsed.address_of(n).unwrap();
    let dp = KollapsDataplane::with_defaults(topo, 2);
    let mut rt = Runtime::new(dp);
    let mut flows = Vec::new();
    for i in 0..2 {
        flows.push(rt.add_tcp_flow(
            addr(clients[i]),
            addr(servers[i]),
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        ));
    }
    flows.push(rt.add_tcp_flow(
        addr(clients[2]),
        addr(servers[2]),
        TransferSize::Unbounded,
        TcpSenderConfig::default(),
        SimTime::from_secs(15),
    ));
    let _ = rt.run_until(SimTime::from_secs(40));
    let mean = |f| {
        rt.throughput_series(f)
            .unwrap()
            .mean_between(SimTime::from_secs(25), SimTime::from_secs(40))
    };
    let (m1, m2, m3) = (mean(flows[0]), mean(flows[1]), mean(flows[2]));
    assert!((m1 - 18.45).abs() < 3.5, "C1 after the join: {m1} Mb/s");
    assert!((m2 - 21.55).abs() < 3.5, "C2 after the join: {m2} Mb/s");
    assert!((m3 - 10.0).abs() < 2.5, "C3 after the join: {m3} Mb/s");
    // The collapse was a *transient* right after the join (the steady state
    // always recovered): with immediate loss injection C1 averaged
    // ~3.5 Mb/s over 16-22 s. The transient must now track the new share
    // too.
    let early = |f| {
        rt.throughput_series(f)
            .unwrap()
            .mean_between(SimTime::from_secs(16), SimTime::from_secs(22))
    };
    let e1 = early(flows[0]);
    assert!(
        (e1 - 18.45).abs() < 4.0,
        "C1 must not collapse right after the join: {e1} Mb/s"
    );
}

/// Regression pin for the Figure 7 dynamic experiment (mixed long- and
/// short-lived flows), driven through the **pre-scenario `Runtime` API** so
/// it exercises the emulation core directly: an iPerf flow runs throughout,
/// wrk2 hammers the same node in the middle third. The paper claims < 5 %
/// deviation from bare metal; this reproduction has deviated far more in
/// the middle phase since the seed (documented in README "Known
/// deviations"). The bounds below pin today's accuracy so dynamics-engine
/// changes cannot silently regress it further — if the mid-phase number
/// *improves*, tighten them.
#[test]
fn fig7_mixed_flows_accuracy_is_pinned() {
    use kollaps::workloads::run_wrk2;

    const PHASE: u64 = 6;

    fn phases<D: kollaps::core::runtime::Dataplane + Addressable>(dp: D) -> (f64, f64, f64) {
        let iperf_client = dp.address_of_index(0);
        let wrk_client = dp.address_of_index(1);
        let iperf_server = dp.address_of_index(2);
        let mut rt = Runtime::new(dp);
        let flow = rt.add_tcp_flow(
            iperf_client,
            iperf_server,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(PHASE));
        let _ = run_wrk2(
            &mut rt,
            iperf_client,
            wrk_client,
            20,
            DataSize::from_kib(64),
            SimDuration::from_secs(PHASE),
        );
        let _ = rt.run_until(SimTime::from_secs(3 * PHASE));
        let series = rt.throughput_series(flow).unwrap();
        (
            series.mean_between(SimTime::ZERO, SimTime::from_secs(PHASE)),
            series.mean_between(SimTime::from_secs(PHASE), SimTime::from_secs(2 * PHASE)),
            series.mean_between(SimTime::from_secs(2 * PHASE), SimTime::from_secs(3 * PHASE)),
        )
    }

    let star = || {
        let (topo, _) = generators::star(3, Bandwidth::from_mbps(100), SimDuration::from_millis(2));
        topo
    };
    let (k_pre, k_mid, k_post) = phases(KollapsDataplane::with_defaults(star(), 1));
    let (b_pre, b_mid, b_post) = phases(GroundTruthDataplane::new(&star()));
    let dev = |k: f64, b: f64| kollaps::sim::stats::deviation_percent(k, b);
    eprintln!("fig7 probe: pre {k_pre:.2}/{b_pre:.2} mid {k_mid:.2}/{b_mid:.2} post {k_post:.2}/{b_post:.2}");
    // Measured at the time of pinning: pre 0.2 %, mid 12.0 % (57.22 vs
    // 51.09 Mb/s), post 0.3 %. The historic ~45-57 % mid-phase deviation
    // turned out to be an artifact of the back-pressure pump order being
    // HashMap-random (per process!): once the runtime pumps contending
    // senders in deterministic round-robin, bare metal and Kollaps agree
    // within ~12 % even in the contended phase. The bounds pin that level
    // so dynamics-engine (or any other) changes cannot silently regress it.
    assert!(
        dev(k_pre, b_pre) < 5.0,
        "pre-wrk2 phase must track bare metal: {k_pre:.2} vs {b_pre:.2}"
    );
    assert!(
        dev(k_post, b_post) < 8.0,
        "post-wrk2 phase must track bare metal: {k_post:.2} vs {b_post:.2}"
    );
    assert!(
        dev(k_mid, b_mid) < 20.0,
        "mid-phase deviation regressed past the pinned bound: {k_mid:.2} vs {b_mid:.2} ({:.1}%)",
        dev(k_mid, b_mid)
    );
    // Both systems must show the contention dip itself.
    assert!(
        k_mid < k_pre * 0.8,
        "kollaps iperf must dip under wrk2: {k_mid:.2}"
    );
    assert!(
        b_mid < b_pre * 0.8,
        "bare-metal iperf must dip under wrk2: {b_mid:.2}"
    );
}

/// The perf-trajectory acceptance test: the report's `flow_classes` block
/// (schema v3) carries per-flow-class latency and goodput percentiles —
/// p50/p90/p99, not just means — produced by the session's built-in
/// aggregating telemetry sink, and they survive into the JSON document.
#[test]
fn report_carries_flow_class_percentiles() {
    let (topo, _, _) = generators::dumbbell(
        4,
        Bandwidth::from_mbps(100),
        Bandwidth::from_mbps(50),
        SimDuration::from_millis(1),
        SimDuration::from_millis(10),
    );
    let mut scenario = Scenario::from_topology(topo).named("flow-class-percentiles");
    // Four staggered UDP flows over the shared trunk: contention makes the
    // per-second goodput windows genuinely spread, so the percentiles are
    // a distribution, not a constant.
    for i in 0..4u64 {
        scenario = scenario.workload(
            Workload::iperf_udp(
                &format!("client-{i}"),
                &format!("server-{i}"),
                Bandwidth::from_mbps(30),
            )
            .start(SimDuration::from_millis(i * 500))
            .duration(SimDuration::from_secs(4)),
        );
    }
    let report = scenario
        .workload(
            Workload::ping("client-0", "server-3")
                .count(30)
                .interval(SimDuration::from_millis(100))
                .duration(SimDuration::from_secs(4)),
        )
        .run()
        .expect("valid scenario");

    assert_eq!(report.flow_classes.len(), 2, "{:?}", report.flow_classes);
    let udp = report
        .flow_classes
        .iter()
        .find(|c| c.class == "iperf-udp")
        .expect("iperf-udp class");
    assert_eq!(udp.flows, 4);
    assert!(udp.latency_ms.is_none(), "bulk UDP has no latency samples");
    let goodput = udp.goodput_mbps.expect("udp goodput percentiles");
    // Four 4 s flows contribute one sample per closed one-second window
    // (staggered windows lose their trailing partial second).
    assert!(goodput.samples >= 12, "4 flows x 4 s: {}", goodput.samples);
    assert!(
        goodput.min <= goodput.p50
            && goodput.p50 <= goodput.p90
            && goodput.p90 <= goodput.p99
            && goodput.p99 <= goodput.max,
        "percentiles must be ordered: {goodput:?}"
    );
    // 4 x 30 Mb/s over a 50 Mb/s trunk: the median window is contended
    // (well under the 30 Mb/s offered rate), while early uncontended
    // windows keep the p99 near the full rate.
    assert!(goodput.p50 < 25.0, "contended median: {goodput:?}");
    assert!(goodput.p99 > goodput.p50, "spread survives: {goodput:?}");

    let ping = report
        .flow_classes
        .iter()
        .find(|c| c.class == "ping")
        .expect("ping class");
    assert_eq!(ping.flows, 1);
    assert!(ping.goodput_mbps.is_none(), "ping moves no bulk data");
    let latency = ping.latency_ms.expect("ping latency percentiles");
    assert_eq!(latency.samples, 30);
    assert!(
        latency.p50 <= latency.p90 && latency.p90 <= latency.p99,
        "{latency:?}"
    );
    assert!(latency.p50 > 0.0);

    // The JSON document carries the same block under schema version 4.
    let json = report.to_json();
    assert_eq!(json.get("schema_version").and_then(|v| v.as_u64()), Some(4));
    let classes = json
        .get("flow_classes")
        .and_then(|v| v.as_array())
        .expect("flow_classes array");
    assert_eq!(classes.len(), 2);
    let ping_json = classes
        .iter()
        .find(|c| c.get("class").and_then(|v| v.as_str()) == Some("ping"))
        .expect("ping class in JSON");
    let lat_json = ping_json.get("latency_ms").expect("latency_ms");
    for field in ["mean", "p50", "p90", "p99", "min", "max", "samples"] {
        assert!(
            lat_json.get(field).and_then(|v| v.as_f64()).is_some(),
            "latency_ms.{field} missing: {lat_json}"
        );
    }
    assert!(
        (lat_json.get("p99").unwrap().as_f64().unwrap() - latency.p99).abs() < 1e-9,
        "JSON p99 mirrors the struct"
    );
}
