//! Property-based tests over the core invariants of the reproduction.

use std::collections::BTreeMap;

use proptest::prelude::*;

use kollaps::core::sharing::{allocate, FlowDemand};
use kollaps::metadata::codec::{FlowUsage, MetadataMessage};
use kollaps::scenario::{Scenario, ScenarioError, Workload};
use kollaps::sim::prelude::*;
use kollaps::topology::dsl::parse_bandwidth;
use kollaps::topology::generators;
use kollaps::topology::graph::{PathProperties, TopologyGraph};
use kollaps::topology::model::{LinkId, LinkProperties, Topology};

proptest! {
    /// The share solver never oversubscribes a link and never hands out
    /// negative bandwidth, whatever the flow set looks like.
    #[test]
    fn sharing_never_oversubscribes(
        n_flows in 1usize..12,
        n_links in 1usize..8,
        caps in proptest::collection::vec(1u64..1_000, 1..8),
        rtts in proptest::collection::vec(1u64..400, 1..12),
    ) {
        let capacities: BTreeMap<LinkId, Bandwidth> = (0..n_links)
            .map(|i| (LinkId(i as u32), Bandwidth::from_mbps(caps[i % caps.len()])))
            .collect();
        let flows: Vec<FlowDemand> = (0..n_flows)
            .map(|i| FlowDemand {
                id: i as u64,
                links: vec![LinkId((i % n_links) as u32), LinkId(((i * 3 + 1) % n_links) as u32)],
                rtt: SimDuration::from_millis(rtts[i % rtts.len()]),
                demand: Bandwidth::from_mbps(2_000),
            })
            .collect();
        let allocation = allocate(&flows, &capacities);
        for (&link, &cap) in &capacities {
            let used: f64 = flows
                .iter()
                .filter(|f| f.links.contains(&link))
                .map(|f| allocation.of(f.id).as_mbps())
                .sum();
            prop_assert!(used <= cap.as_mbps() * 1.001 + 0.001,
                "link {link:?} oversubscribed: {used} > {}", cap.as_mbps());
        }
    }

    /// Metadata messages survive an encode/decode round trip exactly.
    #[test]
    fn metadata_round_trip(
        flows in proptest::collection::vec((0u32..5_000_000, proptest::collection::vec(0u16..4_096, 0..12)), 0..40)
    ) {
        let mut msg = MetadataMessage::new();
        for (kbps, links) in &flows {
            msg.flows.push(FlowUsage { used_kbps: *kbps, link_ids: links.clone() });
        }
        let decoded = MetadataMessage::decode(msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Framed metadata datagrams — the length-prefixed wire form the
    /// distributed runtime puts on UDP sockets — round-trip exactly,
    /// every strict prefix is rejected as truncated, and trailing garbage
    /// is rejected as a frame mismatch. No cut point ever decodes to a
    /// different message.
    #[test]
    fn framed_metadata_round_trips_and_rejects_bad_frames(
        sender in 0u32..64,
        published_ms in 0u64..1_000_000,
        flows in proptest::collection::vec((0u32..5_000_000, proptest::collection::vec(0u16..4_096, 0..12)), 0..40),
        cut in 0usize..10_000,
    ) {
        use kollaps::metadata::bus::HostId;
        use kollaps::metadata::codec::DecodeError;

        let mut msg = MetadataMessage::new();
        msg.sender = HostId(sender);
        msg.published = SimTime::from_millis(published_ms);
        for (kbps, links) in &flows {
            msg.flows.push(FlowUsage { used_kbps: *kbps, link_ids: links.clone() });
        }
        let frame = msg.encode_framed();
        let decoded = MetadataMessage::decode_framed(&frame).unwrap();
        prop_assert_eq!(&decoded, &msg);

        let cut = cut % frame.len();
        let err = MetadataMessage::decode_framed(&frame[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, DecodeError::Truncated | DecodeError::FrameMismatch),
            "prefix of {cut} bytes produced {err:?}"
        );

        let mut padded = frame.to_vec();
        padded.push(0);
        prop_assert!(MetadataMessage::decode_framed(&padded).is_err());
    }

    /// Bandwidth strings parse for every supported unit and magnitude.
    #[test]
    fn bandwidth_parsing_round_trips(value in 1u64..100_000, unit in 0usize..3) {
        let units = ["Kbps", "Mbps", "Gbps"];
        let text = format!("{value}{}", units[unit]);
        let parsed = parse_bandwidth(&text).unwrap();
        let expected = value * 10u64.pow(3 + 3 * unit as u32);
        prop_assert_eq!(parsed.as_bps(), expected);
    }

    /// Path composition over a random chain topology follows the paper's
    /// formulas: latencies add, bandwidth is the minimum, loss composes
    /// multiplicatively and never exceeds 1.
    #[test]
    fn chain_composition_matches_formulas(
        latencies in proptest::collection::vec(1u64..100, 1..10),
        bandwidths in proptest::collection::vec(1u64..1_000, 1..10),
        losses in proptest::collection::vec(0.0f64..0.3, 1..10),
    ) {
        let hops = latencies.len().min(bandwidths.len()).min(losses.len());
        let mut topo = Topology::new();
        let src = topo.add_service("src", 0, "x");
        let dst = topo.add_service("dst", 0, "x");
        let mut prev = src;
        for i in 0..hops {
            let next = if i == hops - 1 { dst } else { topo.add_bridge(&format!("b{i}")) };
            let props = LinkProperties::new(
                SimDuration::from_millis(latencies[i]),
                Bandwidth::from_mbps(bandwidths[i]),
            ).with_loss(losses[i]);
            topo.add_link(prev, next, props, "net");
            prev = next;
        }
        let graph = TopologyGraph::new(&topo);
        let paths = graph.all_pairs_service_paths();
        let path = &paths[&(src, dst)];
        let composed = PathProperties::compose(&topo, path).unwrap();
        let expected_latency: u64 = latencies[..hops].iter().sum();
        prop_assert_eq!(composed.latency, SimDuration::from_millis(expected_latency));
        let expected_bw = bandwidths[..hops].iter().min().unwrap();
        prop_assert_eq!(composed.max_bandwidth, Bandwidth::from_mbps(*expected_bw));
        prop_assert!(composed.loss >= *losses[..hops].iter().max_by(|a, b| a.partial_cmp(b).unwrap()).unwrap() - 1e-9);
        prop_assert!(composed.loss < 1.0);
    }

    /// The scenario builder rejects every workload that references a name
    /// outside the declared topology with the typed `UnknownNode` error —
    /// nothing ever runs, whatever the name looks like.
    #[test]
    fn scenario_rejects_arbitrary_unknown_names(seed in 0u64..1_000_000, pick in 0usize..3) {
        // Any name outside {client, server} must be rejected before the
        // scenario runs, whichever endpoint slot it appears in.
        let name = match pick {
            0 => format!("ghost-{seed}"),
            1 => format!("node_{seed}"),
            _ => format!("C{seed}"),
        };
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(1),
            SimDuration::ZERO,
        );
        let err = Scenario::from_topology(topo)
            .workload(Workload::iperf_tcp("client", &name))
            .run()
            .unwrap_err();
        prop_assert!(
            matches!(err, ScenarioError::UnknownNodes { names: ref n } if *n == vec![name.clone()]),
            "{err}"
        );
    }

    /// The event queue pops events in non-decreasing time order regardless
    /// of insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
        }
    }
}

proptest! {
    /// The dynamics acceptance property: on seeded generated topologies
    /// under random schedules (churn-generator flaps, ramps, node leaves,
    /// link joins — including route-*improving* changes), every precomputed
    /// timeline snapshot is **exactly** equal to the old online re-collapse
    /// of the evolved topology, and the bandwidth allocations derived from
    /// the two are bit-identical. This is what lets the emulation loop swap
    /// deltas instead of re-running all-pairs shortest paths per event.
    #[test]
    fn timeline_equals_online_recollapse(seed in 0u64..100_000) {
        use kollaps::core::timeline::SnapshotTimeline;
        use kollaps::core::CollapsedTopology;
        use kollaps::dynamics::Churn;
        use kollaps::topology::events::{
            apply_action, DynamicAction, DynamicEvent, LinkChange,
        };
        use kollaps::topology::generators::ScaleFreeParams;

        let mut rng = SimRng::new(seed);
        let params = ScaleFreeParams {
            total_elements: 18,
            ..ScaleFreeParams::default()
        };
        let (topo, nodes, switches) = generators::barabasi_albert(&params, &mut rng);
        prop_assert!(nodes.len() >= 4);
        let name_of = |id| {
            topo.node(id).map(|n| n.kind.display_name()).unwrap()
        };

        // A random schedule mixing every change family. The churn generator
        // contributes flaps (leave + restore); raw events contribute a
        // latency degradation, a node departure and a brand-new link (the
        // route-improving case the selective precompute must detect).
        let flapped = name_of(nodes[rng.gen_index(nodes.len())]);
        let peer = topo
            .node(topo.links_from(topo.node_by_name(&flapped).unwrap()).next().unwrap().to)
            .map(|n| n.kind.display_name())
            .unwrap();
        let mut schedule = Churn::poisson_flaps(&[(flapped.as_str(), peer.as_str())])
            .mean_uptime(SimDuration::from_secs(3))
            .mean_downtime(SimDuration::from_millis(500))
            .horizon(SimDuration::from_secs(12))
            .seed(seed ^ 0xc0ffee)
            .generate(&topo)
            .expect("valid flap spec");
        schedule.push(DynamicEvent {
            at: SimDuration::from_millis(rng.gen_range(1, 12_000)),
            action: DynamicAction::SetLinkProperties {
                orig: name_of(switches[0]),
                dest: name_of(switches[1 % switches.len()]),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(rng.gen_range(20, 80))),
                    up: Some(Bandwidth::from_mbps(rng.gen_range(5, 50))),
                    down: Some(Bandwidth::from_mbps(rng.gen_range(5, 50))),
                    ..LinkChange::default()
                },
            },
        });
        schedule.push(DynamicEvent {
            at: SimDuration::from_millis(rng.gen_range(1, 12_000)),
            action: DynamicAction::NodeLeave {
                name: name_of(nodes[rng.gen_index(nodes.len())]),
            },
        });
        // A new shortcut between two random switches: latency 0.1 ms makes
        // it attractive, forcing re-routes far from the changed link.
        schedule.push(DynamicEvent {
            at: SimDuration::from_millis(rng.gen_range(1, 12_000)),
            action: DynamicAction::LinkJoin {
                orig: name_of(switches[rng.gen_index(switches.len())]),
                dest: name_of(switches[rng.gen_index(switches.len())]),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis_f64(0.1)),
                    up: Some(Bandwidth::from_gbps(1)),
                    down: Some(Bandwidth::from_gbps(1)),
                    ..LinkChange::default()
                },
            },
        });

        let timeline = SnapshotTimeline::precompute(&topo, &schedule);
        prop_assert_eq!(timeline.len(), schedule.change_times().len());

        // Replay online with the full re-collapse and compare exactly.
        let mut online = topo.clone();
        let mut reference = CollapsedTopology::build(&topo);
        for delta in timeline.deltas() {
            for event in schedule.events_at(delta.at) {
                apply_action(&mut online, &event.action);
            }
            reference = reference.rebuild_with_addresses(&online);
            prop_assert_eq!(delta.snapshot.pair_count(), reference.pair_count());
            for (&(src, dst), path) in reference.path_handles() {
                let timeline_path = delta.snapshot.path(src, dst);
                prop_assert!(timeline_path.is_some());
                prop_assert_eq!(timeline_path.unwrap(), &**path);
            }
            prop_assert_eq!(delta.snapshot.link_capacities(), reference.link_capacities());

            // Allocations from the two snapshots are bit-identical: feed the
            // same active pairs through `flow_demand` + `allocate` on both.
            let mut pairs: Vec<(kollaps::netmodel::packet::Addr, kollaps::netmodel::packet::Addr)> =
                Vec::new();
            for (&(src, dst), _) in reference.path_handles() {
                if let (Some(a), Some(b)) = (reference.address_of(src), reference.address_of(dst)) {
                    pairs.push((a, b));
                }
            }
            pairs.sort();
            pairs.truncate(8);
            let demands = |view: &CollapsedTopology| -> Vec<FlowDemand> {
                pairs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &(a, b))| view.flow_demand(i as u64, a, b))
                    .collect()
            };
            let from_timeline = demands(&delta.snapshot);
            let from_reference = demands(&reference);
            prop_assert_eq!(from_timeline.len(), from_reference.len());
            let alloc_timeline = allocate(&from_timeline, delta.snapshot.link_capacities());
            let alloc_reference = allocate(&from_reference, reference.link_capacities());
            for i in 0..from_timeline.len() as u64 {
                prop_assert_eq!(alloc_timeline.of(i), alloc_reference.of(i));
            }
        }
    }
}

/// Strips the nondeterministic report fields — the wall-clock stamp of the
/// offline timeline precompute and the wall-clock-only phase-timing block
/// the flight recorder fills in — so two otherwise identical runs
/// serialize to identical bytes.
fn normalized_json(mut report: kollaps::scenario::Report) -> String {
    if let Some(dynamics) = report.dynamics.as_mut() {
        dynamics.precompute_micros = 0;
    }
    report.phase_timing = None;
    report.to_json_string()
}

proptest! {
    /// The session-redesign acceptance property: driving a scenario
    /// through `session()` in arbitrary step sizes produces a
    /// **byte-identical** JSON report to the one-shot `run()` path — with
    /// and without churn, across seeds. Stepping granularity must never
    /// leak into results: runtime events that land between the session's
    /// internal dispatch points are buffered and handled at the same
    /// instants the one-shot loop would have handled them. The request /
    /// response workload (wrk2) is the sensitive one: its connections
    /// re-arm on completion events, so any dispatch-time drift would move
    /// every subsequent transfer.
    #[test]
    fn stepped_session_is_byte_identical_to_one_shot(
        seed in 0u64..1_000_000,
        step_ms in 1u64..900,
        with_churn in 0u8..2,
    ) {
        use kollaps::dynamics::Churn;
        let make = || {
            let (topo, _, _) = generators::dumbbell(
                2,
                Bandwidth::from_mbps(100),
                Bandwidth::from_mbps(50),
                SimDuration::from_millis(1),
                SimDuration::from_millis(10),
            );
            let mut scenario = Scenario::from_topology(topo)
                .named("equivalence")
                .hosts(2)
                .metadata_delay(SimDuration::from_millis(2))
                .workload(
                    Workload::wrk2("server-0", "client-0")
                        .connections(2)
                        .request_size(DataSize::from_kib(32))
                        .duration(SimDuration::from_millis(1800)),
                )
                .workload(
                    Workload::iperf_udp("client-1", "server-1", Bandwidth::from_mbps(30))
                        .duration(SimDuration::from_millis(1800)),
                )
                .workload(
                    Workload::ping("client-0", "server-1")
                        .count(5)
                        .interval(SimDuration::from_millis(250))
                        .start(SimDuration::from_millis(300))
                        .duration(SimDuration::from_millis(1400)),
                );
            if with_churn == 1 {
                scenario = scenario.churn(
                    Churn::poisson_flaps(&[("client-1", "bridge-left")])
                        .mean_uptime(SimDuration::from_millis(800))
                        .mean_downtime(SimDuration::from_millis(200))
                        .horizon(SimDuration::from_millis(1800))
                        .seed(seed),
                );
            }
            scenario
        };
        let one_shot = make().run().expect("valid scenario");
        let mut session = make().session().expect("valid scenario");
        while session.clock() < session.end() {
            session.step(SimDuration::from_millis(step_ms)).expect("stepping");
        }
        let stepped = session.finish();
        prop_assert_eq!(normalized_json(one_shot), normalized_json(stepped));
    }
}

/// The steering-equivalence contract: a dynamic event injected mid-run
/// into a live session produces exactly the report the same event declared
/// up front produces. The injection path extends the precomputed snapshot
/// timeline incrementally; this pins that the incrementally derived
/// snapshots drive the emulation identically to precomputed ones.
#[test]
fn mid_run_injection_equals_up_front_declaration() {
    use kollaps::topology::events::{DynamicAction, DynamicEvent, LinkChange};

    let make = || {
        let (topo, _, _) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        Scenario::from_topology(topo)
            .named("injection-parity")
            .workload(
                Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(20))
                    .duration(SimDuration::from_secs(5)),
            )
            .workload(
                Workload::ping("client-1", "server-1")
                    .count(20)
                    .interval(SimDuration::from_millis(200))
                    .duration(SimDuration::from_secs(5)),
            )
    };
    let event = || DynamicEvent {
        at: SimDuration::from_secs(3),
        action: DynamicAction::SetLinkProperties {
            orig: "bridge-left".into(),
            dest: "bridge-right".into(),
            change: LinkChange {
                latency: Some(SimDuration::from_millis(45)),
                up: Some(Bandwidth::from_mbps(10)),
                down: Some(Bandwidth::from_mbps(10)),
                ..LinkChange::default()
            },
        },
    };

    let declared = make().event(event()).run().expect("valid scenario");
    let mut session = make().session().expect("valid scenario");
    session
        .run_until(kollaps::sim::time::SimTime::from_secs(1))
        .expect("stepping");
    session.inject_event(event()).expect("valid injection");
    let injected = session.finish();
    assert_eq!(normalized_json(declared), normalized_json(injected));
}

/// With `metadata_delay = 0` and a single host, the decentralized per-host
/// Emulation Manager sees exactly what the old centralized loop saw, so its
/// allocation must equal the centralized `allocate()` result — on random
/// scale-free generator topologies (fixed seeds), not just the paper's
/// hand-built ones.
#[test]
fn single_host_decentralized_allocation_matches_centralized() {
    use kollaps::core::emulation::{EmulationConfig, KollapsDataplane};
    use kollaps::core::runtime::Runtime;
    use kollaps::core::CollapsedTopology;
    use kollaps::topology::events::EventSchedule;
    use kollaps::topology::generators::ScaleFreeParams;

    for seed in [1u64, 7, 42] {
        let mut rng = SimRng::new(seed);
        let params = ScaleFreeParams {
            total_elements: 24,
            ..ScaleFreeParams::default()
        };
        let (topo, nodes, _) = generators::barabasi_albert(&params, &mut rng);
        let collapsed = CollapsedTopology::build(&topo);
        let config = EmulationConfig {
            metadata_delay: SimDuration::ZERO,
            ..EmulationConfig::default()
        };
        let dp = KollapsDataplane::new(topo, EventSchedule::new(), 1, config);
        let mut rt = Runtime::new(dp);
        let mut pairs = Vec::new();
        for (i, &a) in nodes.iter().enumerate().take(8) {
            let b = nodes[(i + 3) % nodes.len()];
            if a == b || collapsed.path(a, b).is_none() {
                continue;
            }
            let (Some(src), Some(dst)) = (collapsed.address_of(a), collapsed.address_of(b)) else {
                continue;
            };
            rt.add_udp_flow(src, dst, Bandwidth::from_mbps(40), SimTime::ZERO, None);
            pairs.push((src, dst));
        }
        assert!(pairs.len() >= 4, "seed {seed} produced too few flows");
        let _ = rt.run_until(SimTime::from_millis(600));

        // Rebuild the old centralized solver input from the same usage the
        // managers measured, in the same deterministic order.
        pairs.sort();
        let mut flows = Vec::new();
        let mut keys = Vec::new();
        for &(src, dst) in &pairs {
            if rt.dataplane.measured_usage(src, dst).is_none() {
                continue;
            }
            let path = collapsed.path_by_addr(src, dst).unwrap();
            let src_node = collapsed.service_at(src).unwrap();
            let dst_node = collapsed.service_at(dst).unwrap();
            flows.push(FlowDemand {
                id: keys.len() as u64,
                links: path.links.clone(),
                rtt: collapsed.rtt(src_node, dst_node).unwrap(),
                demand: path.max_bandwidth,
            });
            keys.push((src, dst));
        }
        assert!(!flows.is_empty(), "seed {seed} measured no usage");
        let centralized = allocate(&flows, collapsed.link_capacities());
        for (i, &(src, dst)) in keys.iter().enumerate() {
            let decentralized = rt
                .dataplane
                .allocation(src, dst)
                .expect("active pair has an allocation");
            let expected = centralized.of(i as u64);
            let diff = decentralized.as_bps().abs_diff(expected.as_bps());
            assert!(
                diff <= 1,
                "seed {seed}, pair {i}: decentralized {decentralized} vs centralized {expected}"
            );
        }
        let stats = rt.dataplane.convergence();
        assert!(stats.samples > 0);
        assert!(
            stats.max_gap < 1e-9,
            "seed {seed}: single-host gap {}",
            stats.max_gap
        );
    }
}

proptest! {
    /// The parallel-stepping acceptance property: running the same churned
    /// scenario with 1, 2 and 8 worker threads produces **byte-identical**
    /// JSON reports. Threads split the per-host managers into disjoint
    /// chunks, so they may only move wall-clock time, never results.
    #[test]
    fn parallel_stepping_is_byte_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        step_ms in 50u64..500,
    ) {
        use kollaps::dynamics::Churn;
        let run = |threads: usize| {
            let (topo, _, _) = generators::dumbbell(
                3,
                Bandwidth::from_mbps(100),
                Bandwidth::from_mbps(50),
                SimDuration::from_millis(1),
                SimDuration::from_millis(10),
            );
            let scenario = Scenario::from_topology(topo)
                .named("thread-equivalence")
                .hosts(4)
                .threads(threads)
                .metadata_delay(SimDuration::from_millis(2))
                .churn(
                    Churn::poisson_flaps(&[("client-2", "bridge-left")])
                        .mean_uptime(SimDuration::from_millis(800))
                        .mean_downtime(SimDuration::from_millis(200))
                        .horizon(SimDuration::from_millis(900))
                        .seed(seed),
                )
                .workloads((0..3).map(|i| {
                    Workload::iperf_udp(
                        &format!("client-{i}"),
                        &format!("server-{}", (i + 1) % 3),
                        Bandwidth::from_mbps(40),
                    )
                    .duration(SimDuration::from_millis(900))
                }));
            let mut session = scenario.session().expect("valid scenario");
            while session.clock() < session.end() {
                session.step(SimDuration::from_millis(step_ms)).expect("stepping");
            }
            normalized_json(session.finish())
        };
        let sequential = run(1);
        prop_assert_eq!(&sequential, &run(2));
        prop_assert_eq!(&sequential, &run(8));
    }
}

proptest! {
    /// The flight-recorder acceptance property: tracing may only move
    /// wall-clock time, never results. The same churned scenario with
    /// tracing off and on — across 1, 2 and 8 worker threads — produces
    /// **byte-identical** reports once the wall-clock-only phase-timing
    /// block is stripped.
    #[test]
    fn tracing_is_byte_identical_to_untraced_across_thread_counts(
        seed in 0u64..1_000_000,
        step_ms in 50u64..500,
    ) {
        use kollaps::dynamics::Churn;
        let run = |threads: usize, trace: bool| {
            let (topo, _, _) = generators::dumbbell(
                3,
                Bandwidth::from_mbps(100),
                Bandwidth::from_mbps(50),
                SimDuration::from_millis(1),
                SimDuration::from_millis(10),
            );
            let scenario = Scenario::from_topology(topo)
                .named("trace-equivalence")
                .hosts(4)
                .threads(threads)
                .trace(trace)
                .metadata_delay(SimDuration::from_millis(2))
                .churn(
                    Churn::poisson_flaps(&[("client-2", "bridge-left")])
                        .mean_uptime(SimDuration::from_millis(800))
                        .mean_downtime(SimDuration::from_millis(200))
                        .horizon(SimDuration::from_millis(900))
                        .seed(seed),
                )
                .workloads((0..3).map(|i| {
                    Workload::iperf_udp(
                        &format!("client-{i}"),
                        &format!("server-{}", (i + 1) % 3),
                        Bandwidth::from_mbps(40),
                    )
                    .duration(SimDuration::from_millis(900))
                }));
            let mut session = scenario.session().expect("valid scenario");
            while session.clock() < session.end() {
                session.step(SimDuration::from_millis(step_ms)).expect("stepping");
            }
            let tracer = session.tracer().clone();
            let report = session.finish();
            // The traced runs must actually have recorded something, or
            // this property would pass vacuously.
            prop_assert_eq!(tracer.is_enabled(), trace);
            if trace {
                prop_assert!(!tracer.events().is_empty());
                prop_assert!(report.phase_timing.is_some());
            } else {
                prop_assert!(report.phase_timing.is_none());
            }
            Ok(normalized_json(report))
        };
        let untraced = run(1, false)?;
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(&untraced, &run(threads, true)?);
        }
    }
}

/// The trace itself is stable: two identical seeded single-threaded runs
/// record the same event sequence — same kinds, lanes, names and args —
/// differing only in wall-clock timestamps. This is what makes traces
/// diffable across runs when hunting a regression.
#[test]
fn seeded_runs_record_identical_trace_event_sequences() {
    use kollaps::dynamics::Churn;
    let run = || {
        let (topo, _, _) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let scenario = Scenario::from_topology(topo)
            .named("trace-stability")
            .hosts(2)
            // Pin one worker regardless of `KOLLAPS_THREADS`: with parallel
            // workers the recorder's per-event wall-clock timestamps decide
            // the merged ordering, which varies run to run by design.
            .threads(1)
            .trace(true)
            .metadata_delay(SimDuration::from_millis(2))
            .churn(
                Churn::poisson_flaps(&[("client-1", "bridge-left")])
                    .mean_uptime(SimDuration::from_millis(600))
                    .mean_downtime(SimDuration::from_millis(200))
                    .horizon(SimDuration::from_millis(1200))
                    .seed(42),
            )
            .workloads((0..2).map(|i| {
                Workload::iperf_udp(
                    &format!("client-{i}"),
                    &format!("server-{i}"),
                    Bandwidth::from_mbps(40),
                )
                .duration(SimDuration::from_millis(1200))
            }));
        let mut session = scenario.session().expect("valid scenario");
        while session.clock() < session.end() {
            session
                .step(SimDuration::from_millis(100))
                .expect("stepping");
        }
        let tracer = session.tracer().clone();
        session.finish();
        tracer
            .events()
            .into_iter()
            .map(|e| {
                let args: Vec<(String, Option<f64>)> = e
                    .args
                    .into_iter()
                    // Allocation spans carry their own wall-clock cost as
                    // a `micros` arg; keep the key, ignore the value.
                    .map(|(k, v)| {
                        let value = (k != "micros").then_some(v);
                        (k, value)
                    })
                    .collect();
                (e.kind, e.lane, e.name, args)
            })
            .collect::<Vec<_>>()
    };
    let first = run();
    assert!(!first.is_empty(), "traced run recorded no events");
    assert_eq!(first, run());
}

proptest! {
    /// The incremental allocator is an exact drop-in for the full min-max
    /// solver: across seeded scale-free topologies with flows joining and
    /// leaving every step (so the positional flow ids shift and cached
    /// grants must remap) and demands mutating in place, every grant equals
    /// the full `allocate()` on the same inputs.
    #[test]
    fn incremental_allocation_equals_full_solver_under_churn(
        seed in 0u64..100_000,
        steps in 4usize..24,
    ) {
        use kollaps::core::{CollapsedTopology, IncrementalAllocator};
        use kollaps::topology::generators::ScaleFreeParams;

        let mut rng = SimRng::new(seed);
        let params = ScaleFreeParams {
            total_elements: 30,
            ..ScaleFreeParams::default()
        };
        let (topo, nodes, _) = generators::barabasi_albert(&params, &mut rng);
        let collapsed = CollapsedTopology::build(&topo);
        let mut candidates = Vec::new();
        for (i, &a) in nodes.iter().enumerate() {
            let b = nodes[(i * 7 + 3) % nodes.len()];
            if a != b && collapsed.path(a, b).is_some() {
                if let (Some(src), Some(dst)) =
                    (collapsed.address_of(a), collapsed.address_of(b))
                {
                    candidates.push((src, dst));
                }
            }
        }
        prop_assert!(candidates.len() >= 4);

        let mut active = Vec::new();
        let mut incremental = IncrementalAllocator::new();
        for _ in 0..steps {
            // Membership churn: usually a join, sometimes a leave.
            if active.len() < 2
                || (rng.gen_index(3) != 0 && active.len() < candidates.len())
            {
                let next = candidates[rng.gen_index(candidates.len())];
                if !active.contains(&next) {
                    active.push(next);
                }
            } else {
                let gone = rng.gen_index(active.len());
                active.remove(gone);
            }
            let mut flows: Vec<FlowDemand> = active
                .iter()
                .enumerate()
                .filter_map(|(i, &(src, dst))| collapsed.flow_demand(i as u64, src, dst))
                .collect();
            if flows.is_empty() {
                continue;
            }
            // Occasionally mutate one demand in place: same membership,
            // different shape — the cached component must notice.
            if rng.gen_index(2) == 0 {
                let victim = rng.gen_index(flows.len());
                flows[victim].demand = Bandwidth::from_mbps(rng.gen_range(1, 200));
            }
            let full = allocate(&flows, collapsed.link_capacities());
            let fast = incremental.allocate(&flows, collapsed.link_capacities());
            for flow in &flows {
                prop_assert_eq!(fast.of(flow.id), full.of(flow.id));
            }
        }
    }
}
