//! Offline API-surface shim for [`proptest`](https://crates.io/crates/proptest).
//!
//! Provides the subset the workspace's property tests use: the [`proptest!`]
//! macro, range / tuple / `collection::vec` strategies, and the
//! `prop_assert*` macros. Each property runs [`CASES`] random cases from a
//! deterministic per-test seed (derived from the test name, so adding a test
//! does not perturb its neighbours' inputs). Upstream's shrinking machinery
//! is intentionally absent: on failure the offending inputs are reported
//! unshrunk via the `Debug` payload of the returned error.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of random cases each property runs.
pub const CASES: u32 = 128;

/// Deterministic RNG driving input generation for one property.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test's name so every property gets an
    /// independent, reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Error carried by a failed property case, mirroring
/// `proptest::test_runner::TestCaseError` loosely.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values, mirroring `proptest::strategy::Strategy`
/// minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields clones of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Ranges usable as a collection size specification.
    pub trait SizeRange {
        /// Draws a size from the range.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Creates a `Vec` strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner types, mirroring `proptest::test_runner` loosely.
pub mod test_runner {
    pub use super::{TestCaseError, TestCaseResult, TestRng};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestCaseError,
        TestCaseResult,
    };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that evaluates the body for [`CASES`] generated inputs, panicking with the
/// offending inputs on the first failure.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, $crate::CASES, e, inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property, mirroring `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property, mirroring `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, f in 0.0f64..1.0, i in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(i < 4);
        }

        #[test]
        fn vec_sizes_respect_range(v in collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_compose(pair in (1u16..5, collection::vec(0u8..2, 0..3))) {
            prop_assert!((1..5).contains(&pair.0));
            prop_assert!(pair.1.len() < 3);
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "got: {msg}");
        assert!(msg.contains("inputs"), "got: {msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let s = collection::vec(0u64..1_000, 5..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
