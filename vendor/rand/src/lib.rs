//! Offline API-surface shim for [`rand`](https://crates.io/crates/rand) 0.8.
//!
//! Supplies the subset of the rand 0.8 API the workspace uses — the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, `rngs::StdRng`, and
//! uniform range sampling — backed by a real generator (xoshiro256++ seeded
//! via SplitMix64) rather than a no-op, because the simulation's statistical
//! tests exercise distribution quality. The stream differs from upstream
//! `StdRng` (which is ChaCha-based); nothing in the workspace depends on the
//! exact stream, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Stand-in for `rand::Error`; never actually produced by this shim.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core trait mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; this shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seeding trait mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed type (array of bytes).
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed, mirroring rand's
    /// SplitMix64-based expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Draws a uniform sample from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // 64-bit domain, where next_u64 is already uniform.
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return low.wrapping_add((m >> 64) as $ty);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        // Guard against rounding up to the excluded upper bound.
        if v >= high {
            low
        } else {
            v.max(low)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`], mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                if high == <$ty>::MAX {
                    if low == 0 as $ty && high as u128 == u64::MAX as u128 {
                        return rng.next_u64() as $ty;
                    }
                    // Rare in practice; rejection-sample the top value.
                    loop {
                        let v = <$ty>::sample_range(rng, low.wrapping_sub(1 as $ty), high);
                        if v >= low {
                            return v;
                        }
                    }
                } else {
                    <$ty>::sample_range(rng, low, high + 1 as $ty)
                }
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize);

/// Values sampled by the bare [`Rng::gen`] call (the `Standard` distribution).
pub trait StandardSample {
    /// Draws a standard-distributed value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a standard-distributed value (uniform in `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, high-quality generator. Upstream
    /// `StdRng` is ChaCha12; the shim trades stream compatibility (which
    /// nothing relies on) for zero dependencies.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0xA076_1D64_78BD_642F,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }
}
