//! Offline API-surface shim for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no registry access, so this crate supplies just
//! enough of serde's public API for the workspace to compile: the
//! [`Serialize`] / [`Deserialize`] marker traits and (behind the `derive`
//! feature) re-exports of the derive macros. Nothing in the workspace
//! serializes at runtime yet; when a real serialization backend lands, this
//! shim is replaced by the crates.io dependency by editing one line in the
//! root `Cargo.toml`.

/// Marker stand-in for `serde::Serialize`.
///
/// The real trait's `serialize` method is deliberately absent: no code in the
/// workspace calls it, and omitting it keeps the derive expansion trivial.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
