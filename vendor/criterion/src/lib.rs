//! Offline API-surface shim for [`criterion`](https://crates.io/crates/criterion).
//!
//! Lets the workspace's `harness = false` benches compile and run without
//! registry access. Instead of criterion's statistical pipeline, each
//! benchmark is timed with a fixed-iteration wall-clock loop and the mean is
//! printed — enough to eyeball regressions locally and to keep
//! `cargo check --all-targets` honest in CI. The statistical machinery
//! returns when the real dependency can be fetched.

use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which this simply is).
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_ITERS: u64 = 20;

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its return value opaque to the optimizer.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / MEASURE_ITERS as u32);
    }
}

fn run_one(id: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { mean: None };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench {id:<40} {mean:>12.2?}/iter"),
        None => println!("bench {id:<40} (no measurement)"),
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the fixed-iteration loop ignores it.
    pub fn sample_size(&mut self, _size: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the fixed-iteration loop ignores it.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), f);
        self
    }

    /// Ends the group (a no-op beyond matching upstream's API).
    pub fn finish(self) {}
}

/// Throughput annotation, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; CLI arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Flushes results (a no-op beyond matching upstream's API).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_a_mean() {
        let mut ran = 0u64;
        run_one("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert_eq!(ran, WARMUP_ITERS + MEASURE_ITERS);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(10)
            .bench_with_input(BenchmarkId::new("f", 3), &3, |b, &_n| {
                b.iter(|| {
                    ran = true;
                });
            });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("encode", 40).id, "encode/40");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
