//! Offline shim for `serde_derive`.
//!
//! The derives expand to the corresponding marker-trait impls from the
//! sibling `serde` shim. The expansion is name-and-generics only (parsed by
//! hand — no `syn` available offline); `#[serde(...)]` attributes are
//! accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, impl_generics, ty_generics)` from a type definition's
/// token stream. Handles `struct Foo`, `struct Foo<T, 'a: 'b, const N: usize>`
/// and enums; gives up (returning no generics) on anything it cannot parse,
/// which is still a valid expansion for the non-generic types this workspace
/// derives on.
fn parse_definition(input: TokenStream) -> Option<(String, String, String)> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes, doc comments and visibility until `struct` / `enum`.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ref i) = tt {
            let kw = i.to_string();
            if kw == "struct" || kw == "enum" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return None,
    };
    // Collect a generics list if one follows: everything from `<` to the
    // matching `>` at depth zero. Bounds are kept for the impl side and
    // stripped for the type side.
    let mut raw = String::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(ref p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            raw.push_str(&tt.to_string());
            raw.push(' ');
        }
    }
    if raw.is_empty() {
        return Some((name, String::new(), String::new()));
    }
    let impl_generics = format!("<{raw}>");
    let ty_params: Vec<String> = split_top_level_commas(&raw)
        .into_iter()
        .map(|param| {
            let head = param.split(':').next().unwrap_or("").trim();
            // `const N : usize` participates in the type position as `N`.
            head.strip_prefix("const ")
                .map(|c| c.trim().to_string())
                .unwrap_or_else(|| head.to_string())
        })
        .collect();
    let ty_generics = format!("<{}>", ty_params.join(", "));
    Some((name, impl_generics, ty_generics))
}

/// Splits a generics list on commas that are not nested inside `<...>`.
fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for c in s.chars() {
        match c {
            '<' => depth += 1,
            '>' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

fn expand(input: TokenStream, make_impl: impl Fn(&str, &str, &str) -> String) -> TokenStream {
    match parse_definition(input) {
        Some((name, impl_generics, ty_generics)) => make_impl(&name, &impl_generics, &ty_generics)
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, |name, ig, tg| {
        format!("impl {ig} ::serde::Serialize for {name} {tg} {{}}")
    })
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, |name, ig, tg| {
        let params = ig.trim_start_matches('<').trim_end_matches('>');
        format!("impl <'de, {params}> ::serde::Deserialize<'de> for {name} {tg} {{}}")
    })
}
