//! Offline API-surface shim for [`bytes`](https://crates.io/crates/bytes) 1.x.
//!
//! Implements the subset the workspace uses: [`Bytes`] (cheaply cloneable,
//! sliceable view of an immutable buffer), [`BytesMut`] (growable builder),
//! and the [`Buf`] / [`BufMut`] cursor traits with the big-endian integer
//! accessors. Backed by `Arc<[u8]>` instead of upstream's hand-rolled vtable;
//! semantics (including `slice` panics and `Buf` advancing) match upstream
//! for the covered subset.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer, mirroring `bytes::Bytes`.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the remaining view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of a sub-range without copying.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds, like upstream.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            begin <= end,
            "slice index starts at {begin} but ends at {end}"
        );
        assert!(end <= len, "range end out of bounds: {end} <= {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source, mirroring `bytes::Buf` (big-endian
/// accessors; `get_*` panics when the buffer is exhausted, like upstream).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor.
    fn advance(&mut self, cnt: usize);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer exhausted");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        assert!(self.remaining() >= 2, "buffer exhausted");
        let v = u16::from_be_bytes([self.chunk()[0], self.chunk()[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer exhausted");
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer exhausted");
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Copies bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer exhausted");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past the end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor mirroring `bytes::BufMut` (big-endian accessors).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 15);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16(), 0x0102);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), 42);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slices_share_storage_and_compare_by_content() {
        let a = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = a.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(mid.slice(..), mid);
        assert_eq!(a.slice(0..0).len(), 0);
        assert_eq!(Bytes::copy_from_slice(&[2, 3, 4]), mid);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2, 3]).slice(0..4);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn reading_past_the_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u16();
    }
}
