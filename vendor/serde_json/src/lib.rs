//! Offline shim for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! The build environment has no registry access, so this crate supplies the
//! small slice of `serde_json` the workspace needs: the dynamically-typed
//! [`Value`] tree, a compact writer and a [`from_str`] parser into `Value`
//! (used by the `kollaps_dynamics` trace-replay format). Reports are built
//! as `Value` trees by hand (the vendored `serde` shim's `Serialize` is a
//! marker trait with no data model), which keeps the emitted JSON
//! byte-compatible with what the real crate would produce for the same
//! tree. When a real serde backend lands, this shim is replaced by the
//! crates.io dependency by editing one line in the root `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A dynamically-typed JSON value.
///
/// Objects preserve insertion order (like `serde_json`'s `preserve_order`
/// feature) so that reports serialize deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point JSON number. Non-finite values (NaN, ±∞) have no
    /// JSON representation and are emitted as `null`, matching what
    /// `serde_json::Number::from_f64` would force callers to do.
    Number(f64),
    /// An unsigned-integer JSON number, preserved exactly. Kept separate
    /// from [`Value::Number`] because routing counters through `f64` would
    /// silently corrupt values above 2^53 (real `serde_json` keeps full
    /// `u64` precision).
    Uint(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key`, when `self` is an object that contains it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The `f64` payload, when `self` is a finite number (lossy above 2^53
    /// for [`Value::Uint`], like upstream's `as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) if n.is_finite() => Some(*n),
            Value::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The `u64` payload, when `self` is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` when `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Uint(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Uint(u64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Uint(n as u64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        return f.write_str("null");
    }
    // Integral values print without a fractional part, like serde_json's
    // integer numbers; everything else uses the shortest f64 form.
    if n == n.trunc() && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(f, *n),
            Value::Uint(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serializes a [`Value`] tree to its compact JSON text.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

/// A JSON parse error: what went wrong and the byte offset it went wrong
/// at (upstream reports line/column; a flat offset keeps the shim small
/// while still pointing at the culprit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl Error {
    /// Byte offset of the error in the input.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parses JSON text into a [`Value`] tree.
///
/// Like upstream's `from_str::<Value>`: numbers without `.`/exponent that
/// fit `u64` become [`Value::Uint`], everything else [`Value::Number`];
/// duplicate object keys keep the last occurrence's position semantics of a
/// plain push (the tree preserves insertion order, lookups find the first).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Maximum container nesting the parser accepts before giving up with a
/// typed error — same bound as upstream `serde_json`, and what keeps a
/// corrupt `[[[[...` input from overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.nested(Parser::parse_object),
            Some(b'[') => self.nested(Parser::parse_array),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn nested(
        &mut self,
        parse: fn(&mut Parser<'a>) -> Result<Value, Error>,
    ) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match ch {
                                Some(ch) => out.push(ch),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at `c`.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    if len == 0 || end > self.bytes.len() {
                        return Err(self.error("invalid UTF-8 in string"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.error("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(code) => {
                self.pos = end;
                Ok(code)
            }
            None => Err(self.error("invalid \\u escape")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Uint(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Length of the UTF-8 sequence introduced by `first`, 0 when `first` is
/// not a valid leading byte.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_matches_json() {
        let v = Value::Object(vec![
            ("name".into(), "iperf".into()),
            ("rate_mbps".into(), 12.5.into()),
            ("replies".into(), 3u64.into()),
            ("ok".into(), true.into()),
            ("missing".into(), Value::Null),
            ("samples".into(), vec![1.0, 2.0].into()),
        ]);
        // Round trip through the parser: structurally identical except for
        // float-typed integral numbers, which re-parse as `Uint`.
        let text = to_string(&v);
        let parsed = from_str(&text).expect("valid JSON");
        assert_eq!(to_string(&parsed), text);
        assert_eq!(
            to_string(&v),
            r#"{"name":"iperf","rate_mbps":12.5,"replies":3,"ok":true,"missing":null,"samples":[1,2]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::String("a\"b\\c\nd\u{1}".into());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn large_unsigned_integers_are_exact() {
        // 2^53 + 1 is not representable as f64; the Uint path must keep it.
        let n = (1u64 << 53) + 1;
        assert_eq!(to_string(&Value::from(n)), format!("{n}"));
        assert_eq!(to_string(&Value::from(u64::MAX)), format!("{}", u64::MAX));
        assert_eq!(Value::from(n).as_u64(), Some(n));
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = Value::Object(vec![("x".into(), vec![10.0].into())]);
        let arr = v.get("x").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(10.0));
        assert!(v.get("y").is_none());
        assert!(Value::from(Option::<f64>::None).is_null());
    }

    #[test]
    fn parser_handles_nesting_whitespace_and_escapes() {
        let v = from_str(
            " { \"a\" : [ 1 , -2.5 , 1e3 , true , null ] ,\n\t\"s\" : \"q\\\"\\n\\u0041\\u00e9\" } ",
        )
        .expect("valid");
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Value::Uint(1));
        assert_eq!(arr[1], Value::Number(-2.5));
        assert_eq!(arr[2], Value::Number(1000.0));
        assert_eq!(arr[3], Value::Bool(true));
        assert!(arr[4].is_null());
        assert_eq!(v.get("s").unwrap().as_str(), Some("q\"\nAé"));
    }

    #[test]
    fn parser_handles_surrogate_pairs_and_raw_utf8() {
        let v = from_str(r#"["😀", "héllo"]"#).expect("valid");
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_str(), Some("😀"));
        assert_eq!(arr[1].as_str(), Some("héllo"));
    }

    #[test]
    fn parser_rejects_malformed_input_with_offsets() {
        for (text, expect_offset_at_most) in [
            ("", 0usize),
            ("{", 1),
            ("[1, ]", 4),
            ("{\"a\" 1}", 6),
            ("tru", 3),
            ("\"unterminated", 13),
            ("[1] trailing", 12),
            ("01x", 3),
        ] {
            let err = from_str(text).expect_err(text);
            assert!(err.offset() <= expect_offset_at_most, "{text}: {err}");
        }
    }

    #[test]
    fn parser_caps_nesting_depth() {
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str(&deep_ok).is_ok());
        // Way past the cap: must come back as a typed error, not a stack
        // overflow.
        let too_deep = "[".repeat(200_000);
        let err = from_str(&too_deep).expect_err("depth-capped");
        assert!(err.to_string().contains("recursion"), "{err}");
    }

    #[test]
    fn parser_number_edges() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::Uint(u64::MAX)
        );
        // Too big for u64 → f64.
        assert!(matches!(
            from_str("18446744073709551616").unwrap(),
            Value::Number(_)
        ));
        assert_eq!(from_str("-7").unwrap(), Value::Number(-7.0));
        assert_eq!(from_str("0.125").unwrap(), Value::Number(0.125));
    }
}
