//! Offline shim for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! The build environment has no registry access, so this crate supplies the
//! small slice of `serde_json` the workspace needs: the dynamically-typed
//! [`Value`] tree and a compact writer. Reports are built as `Value` trees
//! by hand (the vendored `serde` shim's `Serialize` is a marker trait with
//! no data model), which keeps the emitted JSON byte-compatible with what
//! the real crate would produce for the same tree. When a real serde
//! backend lands, this shim is replaced by the crates.io dependency by
//! editing one line in the root `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A dynamically-typed JSON value.
///
/// Objects preserve insertion order (like `serde_json`'s `preserve_order`
/// feature) so that reports serialize deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point JSON number. Non-finite values (NaN, ±∞) have no
    /// JSON representation and are emitted as `null`, matching what
    /// `serde_json::Number::from_f64` would force callers to do.
    Number(f64),
    /// An unsigned-integer JSON number, preserved exactly. Kept separate
    /// from [`Value::Number`] because routing counters through `f64` would
    /// silently corrupt values above 2^53 (real `serde_json` keeps full
    /// `u64` precision).
    Uint(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key`, when `self` is an object that contains it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The `f64` payload, when `self` is a finite number (lossy above 2^53
    /// for [`Value::Uint`], like upstream's `as_f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) if n.is_finite() => Some(*n),
            Value::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The `u64` payload, when `self` is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` when `self` is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Uint(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Uint(u64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Uint(n as u64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        return f.write_str("null");
    }
    // Integral values print without a fractional part, like serde_json's
    // integer numbers; everything else uses the shortest f64 form.
    if n == n.trunc() && n.abs() < 9.0e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(f, *n),
            Value::Uint(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serializes a [`Value`] tree to its compact JSON text.
pub fn to_string(value: &Value) -> String {
    value.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output_matches_json() {
        let v = Value::Object(vec![
            ("name".into(), "iperf".into()),
            ("rate_mbps".into(), 12.5.into()),
            ("replies".into(), 3u64.into()),
            ("ok".into(), true.into()),
            ("missing".into(), Value::Null),
            ("samples".into(), vec![1.0, 2.0].into()),
        ]);
        assert_eq!(
            to_string(&v),
            r#"{"name":"iperf","rate_mbps":12.5,"replies":3,"ok":true,"missing":null,"samples":[1,2]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::String("a\"b\\c\nd\u{1}".into());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn large_unsigned_integers_are_exact() {
        // 2^53 + 1 is not representable as f64; the Uint path must keep it.
        let n = (1u64 << 53) + 1;
        assert_eq!(to_string(&Value::from(n)), format!("{n}"));
        assert_eq!(to_string(&Value::from(u64::MAX)), format!("{}", u64::MAX));
        assert_eq!(Value::from(n).as_u64(), Some(n));
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let v = Value::Object(vec![("x".into(), vec![10.0].into())]);
        let arr = v.get("x").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(10.0));
        assert!(v.get("y").is_none());
        assert!(Value::from(Option::<f64>::None).is_null());
    }
}
