//! Trace replay: a simple JSON format for recorded dynamic-topology traces.
//!
//! The format is a flat record list (optionally wrapped in an object under
//! an `"events"` key), friendly to hand-editing and to tooling that dumps
//! observed churn from a real deployment:
//!
//! ```json
//! { "events": [
//!   { "at_ms": 500,  "action": "link_down", "orig": "c1", "dest": "s1" },
//!   { "at_ms": 900,  "action": "link_up",   "orig": "c1", "dest": "s1",
//!     "latency_ms": 10, "up_mbps": 50, "down_mbps": 50 },
//!   { "at_ms": 1200, "action": "set_link",  "orig": "s1", "dest": "s2",
//!     "latency_ms": 40, "loss": 0.01 },
//!   { "at_ms": 2000, "action": "node_down", "name": "sv" },
//!   { "at_ms": 2500, "action": "node_up",   "name": "sw" }
//! ] }
//! ```
//!
//! * `action` is one of `link_down`, `link_up`, `set_link`, `node_down`,
//!   `node_up`.
//! * Property fields (`latency_ms`, `jitter_ms`, `up_mbps`, `down_mbps`,
//!   `loss`) are optional; for `set_link` at least one must be present.
//! * Records may appear in **any order** — the parsed [`EventSchedule`] is
//!   normalized on construction (see
//!   [`EventSchedule::from_events`]), so an out-of-order trace
//!   can never break the emulation loop's sorted due-event scan.

use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;
use kollaps_topology::events::{DynamicAction, DynamicEvent, EventSchedule, LinkChange};
use serde_json::Value;

/// A malformed trace: what was wrong and — when the problem is inside a
/// record — which record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceError {
    /// Human-readable reason.
    pub reason: String,
    /// Index of the offending record, if the trace parsed as JSON.
    pub record: Option<usize>,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.record {
            Some(i) => write!(f, "record {i}: {}", self.reason),
            None => write!(f, "{}", self.reason),
        }
    }
}

impl std::error::Error for TraceError {}

fn err(reason: impl Into<String>, record: Option<usize>) -> TraceError {
    TraceError {
        reason: reason.into(),
        record,
    }
}

/// Parses a JSON trace into a normalized (sorted) [`EventSchedule`].
pub fn parse_trace(json: &str) -> Result<EventSchedule, TraceError> {
    let value = serde_json::from_str(json).map_err(|e| err(format!("invalid JSON: {e}"), None))?;
    let records = match &value {
        Value::Array(items) => items.as_slice(),
        Value::Object(_) => value
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| err("expected an `events` array", None))?,
        _ => return Err(err("expected an array of records", None)),
    };
    let mut events = Vec::with_capacity(records.len());
    for (i, record) in records.iter().enumerate() {
        events.push(parse_record(record, i)?);
    }
    Ok(EventSchedule::from_events(events))
}

fn parse_record(record: &Value, i: usize) -> Result<DynamicEvent, TraceError> {
    let at_ms = record
        .get("at_ms")
        .and_then(Value::as_f64)
        .ok_or_else(|| err("missing numeric `at_ms`", Some(i)))?;
    if !(at_ms.is_finite() && at_ms >= 0.0) {
        return Err(err("`at_ms` must be finite and non-negative", Some(i)));
    }
    let at = SimDuration::from_millis_f64(at_ms);
    let action = record
        .get("action")
        .and_then(Value::as_str)
        .ok_or_else(|| err("missing string `action`", Some(i)))?;
    let name_field = |key: &str| -> Result<String, TraceError> {
        record
            .get(key)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| err(format!("`{action}` needs a string `{key}`"), Some(i)))
    };
    let action = match action {
        "link_down" => DynamicAction::LinkLeave {
            orig: name_field("orig")?,
            dest: name_field("dest")?,
        },
        "link_up" => DynamicAction::LinkJoin {
            orig: name_field("orig")?,
            dest: name_field("dest")?,
            change: parse_change(record, i)?,
        },
        "set_link" => {
            let change = parse_change(record, i)?;
            if change == LinkChange::default() {
                return Err(err("`set_link` needs at least one property field", Some(i)));
            }
            DynamicAction::SetLinkProperties {
                orig: name_field("orig")?,
                dest: name_field("dest")?,
                change,
            }
        }
        "node_down" => DynamicAction::NodeLeave {
            name: name_field("name")?,
        },
        "node_up" => DynamicAction::NodeJoin {
            name: name_field("name")?,
        },
        other => return Err(err(format!("unknown action `{other}`"), Some(i))),
    };
    Ok(DynamicEvent { at, action })
}

fn parse_change(record: &Value, i: usize) -> Result<LinkChange, TraceError> {
    let number = |key: &str| -> Result<Option<f64>, TraceError> {
        match record.get(key) {
            None => Ok(None),
            Some(v) => match v.as_f64() {
                Some(n) if n.is_finite() && n >= 0.0 => Ok(Some(n)),
                _ => Err(err(
                    format!("`{key}` must be a non-negative number"),
                    Some(i),
                )),
            },
        }
    };
    let loss = number("loss")?;
    if let Some(loss) = loss {
        // A probability, not a percentage: the rest of the stack asserts
        // the [0, 1] range, so reject it here with the record index.
        if loss > 1.0 {
            return Err(err("`loss` must be a probability in [0, 1]", Some(i)));
        }
    }
    Ok(LinkChange {
        latency: number("latency_ms")?.map(SimDuration::from_millis_f64),
        jitter: number("jitter_ms")?.map(SimDuration::from_millis_f64),
        up: number("up_mbps")?.map(Bandwidth::from_mbps_f64),
        down: number("down_mbps")?.map(Bandwidth::from_mbps_f64),
        loss,
    })
}

/// Serializes a schedule back into the trace format (an object with an
/// `"events"` array), so recorded or generated churn can be stored and
/// replayed. `parse_trace(&trace_to_json(s))` reproduces `s` up to the
/// millisecond resolution of `at_ms`.
pub fn trace_to_json(schedule: &EventSchedule) -> String {
    let records: Vec<Value> = schedule.events().iter().map(record_to_json).collect();
    Value::Object(vec![("events".to_string(), Value::Array(records))]).to_string()
}

fn record_to_json(event: &DynamicEvent) -> Value {
    let mut fields: Vec<(String, Value)> =
        vec![("at_ms".to_string(), event.at.as_millis_f64().into())];
    let mut push = |k: &str, v: Value| fields.push((k.to_string(), v));
    let change_fields = |change: &LinkChange, push: &mut dyn FnMut(&str, Value)| {
        if let Some(latency) = change.latency {
            push("latency_ms", latency.as_millis_f64().into());
        }
        if let Some(jitter) = change.jitter {
            push("jitter_ms", jitter.as_millis_f64().into());
        }
        if let Some(up) = change.up {
            push("up_mbps", up.as_mbps().into());
        }
        if let Some(down) = change.down {
            push("down_mbps", down.as_mbps().into());
        }
        if let Some(loss) = change.loss {
            push("loss", loss.into());
        }
    };
    match &event.action {
        DynamicAction::LinkLeave { orig, dest } => {
            push("action", "link_down".into());
            push("orig", orig.as_str().into());
            push("dest", dest.as_str().into());
        }
        DynamicAction::LinkJoin { orig, dest, change } => {
            push("action", "link_up".into());
            push("orig", orig.as_str().into());
            push("dest", dest.as_str().into());
            change_fields(change, &mut push);
        }
        DynamicAction::SetLinkProperties { orig, dest, change } => {
            push("action", "set_link".into());
            push("orig", orig.as_str().into());
            push("dest", dest.as_str().into());
            change_fields(change, &mut push);
        }
        DynamicAction::NodeLeave { name } => {
            push("action", "node_down".into());
            push("name", name.as_str().into());
        }
        DynamicAction::NodeJoin { name } => {
            push("action", "node_up".into());
            push("name", name.as_str().into());
        }
    }
    Value::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_actions_and_normalizes_order() {
        // Records deliberately out of order: the deserialized schedule must
        // come out sorted, or the emulation loop's due-event scan (and the
        // sortedness `change_times` relies on) would silently break.
        let trace = r#"{ "events": [
            { "at_ms": 2000, "action": "node_down", "name": "sv" },
            { "at_ms": 500,  "action": "link_down", "orig": "c1", "dest": "s1" },
            { "at_ms": 900,  "action": "link_up", "orig": "c1", "dest": "s1",
              "latency_ms": 10, "up_mbps": 50, "down_mbps": 25, "loss": 0.01 },
            { "at_ms": 1200, "action": "set_link", "orig": "s1", "dest": "s2",
              "latency_ms": 40.5 },
            { "at_ms": 2500, "action": "node_up", "name": "sw" }
        ] }"#;
        let schedule = parse_trace(trace).expect("valid trace");
        assert_eq!(schedule.len(), 5);
        let times: Vec<f64> = schedule
            .events()
            .iter()
            .map(|e| e.at.as_millis_f64())
            .collect();
        assert_eq!(times, [500.0, 900.0, 1200.0, 2000.0, 2500.0]);
        let DynamicAction::LinkJoin { change, .. } = &schedule.events()[1].action else {
            panic!("expected link_up second");
        };
        assert_eq!(change.latency, Some(SimDuration::from_millis(10)));
        assert_eq!(change.up, Some(Bandwidth::from_mbps(50)));
        assert_eq!(change.down, Some(Bandwidth::from_mbps(25)));
        assert_eq!(change.loss, Some(0.01));
        assert_eq!(change.jitter, None);
        assert!(matches!(
            &schedule.events()[2].action,
            DynamicAction::SetLinkProperties { .. }
        ));
        assert_eq!(schedule.change_times().len(), 5);
    }

    #[test]
    fn bare_arrays_are_accepted() {
        let schedule =
            parse_trace(r#"[{ "at_ms": 10, "action": "node_down", "name": "x" }]"#).unwrap();
        assert_eq!(schedule.len(), 1);
    }

    #[test]
    fn malformed_traces_are_typed_errors() {
        for (trace, needle) in [
            ("nonsense", "invalid JSON"),
            ("{}", "events"),
            (r#"[{ "action": "node_down", "name": "x" }]"#, "at_ms"),
            (r#"[{ "at_ms": 5 }]"#, "action"),
            (r#"[{ "at_ms": 5, "action": "warp" }]"#, "unknown action"),
            (
                r#"[{ "at_ms": 5, "action": "link_down", "orig": "a" }]"#,
                "dest",
            ),
            (
                r#"[{ "at_ms": 5, "action": "set_link", "orig": "a", "dest": "b" }]"#,
                "at least one property",
            ),
            (
                r#"[{ "at_ms": 5, "action": "set_link", "orig": "a", "dest": "b", "loss": -1 }]"#,
                "non-negative",
            ),
            (
                r#"[{ "at_ms": 5, "action": "set_link", "orig": "a", "dest": "b", "loss": 1.5 }]"#,
                "probability",
            ),
            (
                r#"[{ "at_ms": -2, "action": "node_down", "name": "x" }]"#,
                "at_ms",
            ),
        ] {
            let error = parse_trace(trace).expect_err(trace);
            assert!(
                error.to_string().contains(needle),
                "`{trace}` → `{error}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn round_trips_through_the_json_form() {
        let trace = r#"[
            { "at_ms": 500, "action": "link_down", "orig": "c1", "dest": "s1" },
            { "at_ms": 900, "action": "link_up", "orig": "c1", "dest": "s1",
              "latency_ms": 10, "jitter_ms": 0.5, "up_mbps": 50, "down_mbps": 25,
              "loss": 0.01 },
            { "at_ms": 1000, "action": "node_down", "name": "sv" }
        ]"#;
        let schedule = parse_trace(trace).unwrap();
        let reparsed = parse_trace(&trace_to_json(&schedule)).unwrap();
        assert_eq!(schedule, reparsed);
    }
}
