//! Churn scenario generators: typed, validated sources of dynamic-event
//! schedules.
//!
//! Each generator is a small declarative spec that, applied to a concrete
//! [`Topology`], expands into an [`EventSchedule`] — the same schedule type
//! hand-written dynamics use, so generated churn flows through the exact
//! pipeline the paper describes (offline snapshot precompute, delta swaps
//! at runtime). Generation is deterministic from the explicit seed.
//!
//! A "node leave" here detaches every link of the node and a "node join"
//! re-attaches them with their original properties: at the topology level
//! that is exactly what a container crash/restart looks like (the paper's
//! service joins are an orchestrator concern — the address and the node
//! survive, its connectivity does not).

use kollaps_sim::rng::SimRng;
use kollaps_sim::time::SimDuration;
use kollaps_topology::events::{DynamicAction, DynamicEvent, EventSchedule, LinkChange};
use kollaps_topology::model::{NodeId, Topology};

use crate::trace;

/// Everything that can be wrong with a churn spec, detected before any
/// event is generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnError {
    /// The spec references a node name the topology does not declare.
    UnknownNode {
        /// The unknown name.
        name: String,
    },
    /// The spec references a link (node pair) with no links between them.
    NoLinkBetween {
        /// Origin node name.
        orig: String,
        /// Destination node name.
        dest: String,
    },
    /// A parameter is out of range (zero horizon, empty node list, ...).
    InvalidSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// A trace failed to parse.
    Trace(trace::TraceError),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::UnknownNode { name } => {
                write!(f, "churn references unknown node `{name}`")
            }
            ChurnError::NoLinkBetween { orig, dest } => {
                write!(f, "no link between `{orig}` and `{dest}` to churn")
            }
            ChurnError::InvalidSpec { reason } => write!(f, "invalid churn spec: {reason}"),
            ChurnError::Trace(e) => write!(f, "churn trace: {e}"),
        }
    }
}

impl std::error::Error for ChurnError {}

impl From<trace::TraceError> for ChurnError {
    fn from(e: trace::TraceError) -> Self {
        ChurnError::Trace(e)
    }
}

#[derive(Debug, Clone)]
enum ChurnKind {
    PoissonFlaps {
        links: Vec<(String, String)>,
        mean_up: SimDuration,
        mean_down: SimDuration,
    },
    StaggeredNodes {
        nodes: Vec<String>,
        stagger: SimDuration,
        downtime: SimDuration,
        rounds: usize,
    },
    Partition {
        left: Vec<String>,
        right: Vec<String>,
        heal_after: Option<SimDuration>,
    },
    BandwidthRamp {
        orig: String,
        dest: String,
        to_fraction: f64,
        duration: SimDuration,
        steps: usize,
    },
    Trace {
        json: String,
    },
}

/// A declarative churn spec: what to shake, how hard, and from when.
///
/// Build one with a constructor ([`Churn::poisson_flaps`],
/// [`Churn::staggered_nodes`], [`Churn::partition`],
/// [`Churn::bandwidth_ramp`], [`Churn::trace`]), tune it with the setters,
/// then either pass it to `Scenario::churn(..)` or expand it yourself with
/// [`Churn::generate`].
#[derive(Debug, Clone)]
pub struct Churn {
    kind: ChurnKind,
    start: SimDuration,
    horizon: SimDuration,
    seed: u64,
}

impl Churn {
    fn new(kind: ChurnKind) -> Self {
        Churn {
            kind,
            start: SimDuration::ZERO,
            horizon: SimDuration::from_secs(60),
            seed: 1,
        }
    }

    /// Poisson link flapping: each named link alternates between up and
    /// down, with exponentially distributed uptimes and downtimes (defaults:
    /// 5 s up, 500 ms down). Links are named by their endpoint node names;
    /// a downed link is removed entirely and restored with its original
    /// properties.
    pub fn poisson_flaps(links: &[(&str, &str)]) -> Self {
        Churn::new(ChurnKind::PoissonFlaps {
            links: links
                .iter()
                .map(|&(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            mean_up: SimDuration::from_secs(5),
            mean_down: SimDuration::from_millis(500),
        })
    }

    /// Staggered node churn: node `i` of `nodes` detaches (all its links
    /// leave) at `start + i·stagger` and re-attaches `downtime` later with
    /// the original link properties. With [`Churn::rounds`] > 1 the whole
    /// wave repeats. Defaults: 1 s stagger, 2 s downtime, one round.
    pub fn staggered_nodes(nodes: &[&str]) -> Self {
        Churn::new(ChurnKind::StaggeredNodes {
            nodes: nodes.iter().map(|&n| n.to_string()).collect(),
            stagger: SimDuration::from_secs(1),
            downtime: SimDuration::from_secs(2),
            rounds: 1,
        })
    }

    /// Network partition: every link crossing between the `left` and
    /// `right` node sets leaves at [`Churn::start`], and — unless the
    /// partition is permanent — heals (links rejoin with original
    /// properties) after [`Churn::heal_after`].
    pub fn partition(left: &[&str], right: &[&str]) -> Self {
        Churn::new(ChurnKind::Partition {
            left: left.iter().map(|&n| n.to_string()).collect(),
            right: right.iter().map(|&n| n.to_string()).collect(),
            heal_after: Some(SimDuration::from_secs(5)),
        })
    }

    /// Bandwidth-degradation ramp: the link(s) between `orig` and `dest`
    /// scale linearly from full capacity down to `to_fraction` of it over
    /// [`Churn::ramp_duration`], in [`Churn::steps`] equal steps starting
    /// at [`Churn::start`].
    pub fn bandwidth_ramp(orig: &str, dest: &str, to_fraction: f64) -> Self {
        Churn::new(ChurnKind::BandwidthRamp {
            orig: orig.to_string(),
            dest: dest.to_string(),
            to_fraction,
            duration: SimDuration::from_secs(10),
            steps: 10,
        })
    }

    /// Replay of a recorded trace in the JSON format documented in
    /// [`crate::trace`]. The trace may list records in any order; the
    /// schedule is normalized on construction.
    pub fn trace(json: &str) -> Self {
        Churn::new(ChurnKind::Trace {
            json: json.to_string(),
        })
    }

    /// When the churn begins (default: experiment start).
    pub fn start(mut self, start: SimDuration) -> Self {
        self.start = start;
        self
    }

    /// How long the churn keeps going, for the open-ended generators
    /// (Poisson flaps). Default 60 s.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Seed of the generator's private RNG (flap timings). Default 1.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mean exponential uptime between flaps (Poisson flaps only).
    pub fn mean_uptime(mut self, mean: SimDuration) -> Self {
        if let ChurnKind::PoissonFlaps { mean_up, .. } = &mut self.kind {
            *mean_up = mean;
        }
        self
    }

    /// Mean exponential downtime per flap (Poisson flaps only).
    pub fn mean_downtime(mut self, mean: SimDuration) -> Self {
        if let ChurnKind::PoissonFlaps { mean_down, .. } = &mut self.kind {
            *mean_down = mean;
        }
        self
    }

    /// Delay between consecutive node departures (staggered churn only).
    pub fn stagger(mut self, delay: SimDuration) -> Self {
        if let ChurnKind::StaggeredNodes { stagger, .. } = &mut self.kind {
            *stagger = delay;
        }
        self
    }

    /// How long each churned node stays detached (staggered churn only).
    pub fn downtime(mut self, time: SimDuration) -> Self {
        if let ChurnKind::StaggeredNodes { downtime, .. } = &mut self.kind {
            *downtime = time;
        }
        self
    }

    /// Number of leave/rejoin waves (staggered churn only).
    pub fn rounds(mut self, n: usize) -> Self {
        if let ChurnKind::StaggeredNodes { rounds, .. } = &mut self.kind {
            *rounds = n;
        }
        self
    }

    /// Time until the partition heals; `None` keeps it forever (partition
    /// only).
    pub fn heal_after(mut self, after: Option<SimDuration>) -> Self {
        if let ChurnKind::Partition { heal_after, .. } = &mut self.kind {
            *heal_after = after;
        }
        self
    }

    /// Total ramp time (bandwidth ramp only).
    pub fn ramp_duration(mut self, duration: SimDuration) -> Self {
        if let ChurnKind::BandwidthRamp { duration: d, .. } = &mut self.kind {
            *d = duration;
        }
        self
    }

    /// Number of discrete ramp steps (bandwidth ramp only).
    pub fn steps(mut self, n: usize) -> Self {
        if let ChurnKind::BandwidthRamp { steps, .. } = &mut self.kind {
            *steps = n;
        }
        self
    }

    /// Scales the churn **rate** by `factor`: every temporal spacing of the
    /// spec (flap mean up/downtimes, node stagger and downtime, partition
    /// heal delay, ramp duration) is divided by it, so `factor = 2.0` makes
    /// the same churn happen twice as fast within the same horizon. Trace
    /// replays are untouched (their timestamps are data, not a knob). This
    /// is the `Campaign::vary_churn_rate` axis.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    pub fn scale_rate(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "churn rate factor must be positive: {factor}"
        );
        let scale = |d: SimDuration| d.mul_f64(1.0 / factor);
        match &mut self.kind {
            ChurnKind::PoissonFlaps {
                mean_up, mean_down, ..
            } => {
                *mean_up = scale(*mean_up);
                *mean_down = scale(*mean_down);
            }
            ChurnKind::StaggeredNodes {
                stagger, downtime, ..
            } => {
                *stagger = scale(*stagger);
                *downtime = scale(*downtime);
            }
            ChurnKind::Partition { heal_after, .. } => {
                *heal_after = heal_after.map(scale);
            }
            ChurnKind::BandwidthRamp { duration, .. } => {
                *duration = scale(*duration);
            }
            ChurnKind::Trace { .. } => {}
        }
        self
    }

    /// Validates the spec against `topology` and expands it into a sorted
    /// [`EventSchedule`].
    pub fn generate(&self, topology: &Topology) -> Result<EventSchedule, ChurnError> {
        let mut events: Vec<DynamicEvent> = Vec::new();
        match &self.kind {
            ChurnKind::PoissonFlaps {
                links,
                mean_up,
                mean_down,
            } => {
                if links.is_empty() {
                    return Err(invalid("poisson flaps need at least one link"));
                }
                if mean_up.is_zero() || mean_down.is_zero() {
                    return Err(invalid("flap mean uptime/downtime must be positive"));
                }
                if self.horizon.is_zero() {
                    return Err(invalid("flap horizon must be positive"));
                }
                for (i, (orig, dest)) in links.iter().enumerate() {
                    let restore = restore_change(topology, orig, dest)?;
                    let mut rng = SimRng::new(self.seed).derive(i as u64);
                    let end = self.start + self.horizon;
                    let mut t = self.start;
                    loop {
                        t += SimDuration::from_secs_f64(
                            rng.exponential(1.0 / mean_up.as_secs_f64()),
                        );
                        if t >= end {
                            break;
                        }
                        events.push(DynamicEvent {
                            at: t,
                            action: DynamicAction::LinkLeave {
                                orig: orig.clone(),
                                dest: dest.clone(),
                            },
                        });
                        let down = SimDuration::from_secs_f64(
                            rng.exponential(1.0 / mean_down.as_secs_f64()),
                        );
                        // A flap that would outlive the horizon heals at the
                        // horizon: churn never leaves the topology degraded
                        // past its own window.
                        t = (t + down).min(end);
                        events.push(DynamicEvent {
                            at: t,
                            action: DynamicAction::LinkJoin {
                                orig: orig.clone(),
                                dest: dest.clone(),
                                change: restore,
                            },
                        });
                    }
                }
            }
            ChurnKind::StaggeredNodes {
                nodes,
                stagger,
                downtime,
                rounds,
            } => {
                if nodes.is_empty() {
                    return Err(invalid("staggered churn needs at least one node"));
                }
                if *rounds == 0 {
                    return Err(invalid("staggered churn needs at least one round"));
                }
                if downtime.is_zero() {
                    return Err(invalid("staggered churn downtime must be positive"));
                }
                let attachments: Vec<(String, Vec<(String, LinkChange)>)> = nodes
                    .iter()
                    .map(|name| {
                        let peers = node_attachments(topology, name)?;
                        Ok((name.clone(), peers))
                    })
                    .collect::<Result<_, ChurnError>>()?;
                let wave = *stagger * nodes.len() as u64 + *downtime;
                for round in 0..*rounds {
                    let round_start = self.start + wave * round as u64;
                    for (i, (name, peers)) in attachments.iter().enumerate() {
                        let leave = round_start + *stagger * i as u64;
                        let rejoin = leave + *downtime;
                        for (peer, restore) in peers {
                            events.push(DynamicEvent {
                                at: leave,
                                action: DynamicAction::LinkLeave {
                                    orig: name.clone(),
                                    dest: peer.clone(),
                                },
                            });
                            events.push(DynamicEvent {
                                at: rejoin,
                                action: DynamicAction::LinkJoin {
                                    orig: name.clone(),
                                    dest: peer.clone(),
                                    change: *restore,
                                },
                            });
                        }
                    }
                }
            }
            ChurnKind::Partition {
                left,
                right,
                heal_after,
            } => {
                if left.is_empty() || right.is_empty() {
                    return Err(invalid("both partition sides need at least one node"));
                }
                let left_ids = resolve_all(topology, left)?;
                let right_ids = resolve_all(topology, right)?;
                if let Some(shared) = left.iter().find(|n| right.contains(n)) {
                    return Err(invalid(&format!("`{shared}` is on both partition sides")));
                }
                // Links are stored unidirectionally; normalize each crossing
                // to (left node, right node) — `LinkLeave` removes both
                // directions at once.
                let mut crossing: Vec<(String, String)> = Vec::new();
                for link in topology.links() {
                    let pair = if left_ids.contains(&link.from) && right_ids.contains(&link.to) {
                        Some((link.from, link.to))
                    } else if right_ids.contains(&link.from) && left_ids.contains(&link.to) {
                        Some((link.to, link.from))
                    } else {
                        None
                    };
                    if let Some((l, r)) = pair {
                        let entry = (node_name(topology, l), node_name(topology, r));
                        if !crossing.contains(&entry) {
                            crossing.push(entry);
                        }
                    }
                }
                if crossing.is_empty() {
                    return Err(invalid("no links cross the requested partition"));
                }
                for (orig, dest) in &crossing {
                    let restore = restore_change(topology, orig, dest)?;
                    events.push(DynamicEvent {
                        at: self.start,
                        action: DynamicAction::LinkLeave {
                            orig: orig.clone(),
                            dest: dest.clone(),
                        },
                    });
                    if let Some(heal) = heal_after {
                        events.push(DynamicEvent {
                            at: self.start + *heal,
                            action: DynamicAction::LinkJoin {
                                orig: orig.clone(),
                                dest: dest.clone(),
                                change: restore,
                            },
                        });
                    }
                }
            }
            ChurnKind::BandwidthRamp {
                orig,
                dest,
                to_fraction,
                duration,
                steps,
            } => {
                if !(*to_fraction > 0.0 && *to_fraction <= 1.0) {
                    return Err(invalid("ramp target fraction must be in (0, 1]"));
                }
                if *steps == 0 {
                    return Err(invalid("ramp needs at least one step"));
                }
                if duration.is_zero() {
                    return Err(invalid("ramp duration must be positive"));
                }
                let base = restore_change(topology, orig, dest)?;
                let (Some(up0), Some(down0)) = (base.up, base.down) else {
                    return Err(ChurnError::NoLinkBetween {
                        orig: orig.clone(),
                        dest: dest.clone(),
                    });
                };
                for k in 1..=*steps {
                    let progress = k as f64 / *steps as f64;
                    let fraction = 1.0 + (to_fraction - 1.0) * progress;
                    events.push(DynamicEvent {
                        at: self.start
                            + SimDuration::from_secs_f64(duration.as_secs_f64() * progress),
                        action: DynamicAction::SetLinkProperties {
                            orig: orig.clone(),
                            dest: dest.clone(),
                            change: LinkChange {
                                up: Some(up0.mul_f64(fraction)),
                                down: Some(down0.mul_f64(fraction)),
                                ..LinkChange::default()
                            },
                        },
                    });
                }
            }
            ChurnKind::Trace { json } => {
                let schedule = trace::parse_trace(json)?;
                // Traces address nodes by name; validate them against the
                // topology so a typo fails loudly instead of becoming the
                // silent no-op `apply_action` turns unknown names into.
                for event in schedule.events() {
                    for name in action_names(&event.action) {
                        if topology.node_by_name(name).is_none() {
                            return Err(ChurnError::UnknownNode {
                                name: name.to_string(),
                            });
                        }
                    }
                }
                return Ok(schedule);
            }
        }
        Ok(EventSchedule::from_events(events))
    }
}

fn invalid(reason: &str) -> ChurnError {
    ChurnError::InvalidSpec {
        reason: reason.to_string(),
    }
}

fn resolve(topology: &Topology, name: &str) -> Result<NodeId, ChurnError> {
    topology
        .node_by_name(name)
        .ok_or_else(|| ChurnError::UnknownNode {
            name: name.to_string(),
        })
}

fn resolve_all(topology: &Topology, names: &[String]) -> Result<Vec<NodeId>, ChurnError> {
    names.iter().map(|n| resolve(topology, n)).collect()
}

fn node_name(topology: &Topology, id: NodeId) -> String {
    topology
        .node(id)
        .map(|n| n.kind.display_name())
        .unwrap_or_else(|| format!("#{id}"))
}

/// The [`LinkChange`] that restores the link(s) between `orig` and `dest`
/// to their current properties: forward bandwidth as `up`, reverse as
/// `down`, latency/jitter/loss from the forward direction.
fn restore_change(topology: &Topology, orig: &str, dest: &str) -> Result<LinkChange, ChurnError> {
    let a = resolve(topology, orig)?;
    let b = resolve(topology, dest)?;
    let forward = topology
        .links()
        .iter()
        .find(|l| l.from == a && l.to == b)
        .map(|l| l.properties);
    let backward = topology
        .links()
        .iter()
        .find(|l| l.from == b && l.to == a)
        .map(|l| l.properties);
    let reference = forward
        .or(backward)
        .ok_or_else(|| ChurnError::NoLinkBetween {
            orig: orig.to_string(),
            dest: dest.to_string(),
        })?;
    Ok(LinkChange {
        latency: Some(reference.latency),
        jitter: Some(reference.jitter),
        up: Some(forward.unwrap_or(reference).bandwidth),
        down: Some(backward.unwrap_or(reference).bandwidth),
        loss: Some(reference.loss),
    })
}

/// Every peer `name` is attached to, with the restore change per peer.
fn node_attachments(
    topology: &Topology,
    name: &str,
) -> Result<Vec<(String, LinkChange)>, ChurnError> {
    let id = resolve(topology, name)?;
    let mut peers: Vec<NodeId> = Vec::new();
    for link in topology.links() {
        let peer = if link.from == id {
            link.to
        } else if link.to == id {
            link.from
        } else {
            continue;
        };
        if !peers.contains(&peer) {
            peers.push(peer);
        }
    }
    if peers.is_empty() {
        return Err(invalid(&format!("node `{name}` has no links to churn")));
    }
    peers
        .into_iter()
        .map(|peer| {
            let peer_name = node_name(topology, peer);
            let restore = restore_change(topology, name, &peer_name)?;
            Ok((peer_name, restore))
        })
        .collect()
}

fn action_names(action: &DynamicAction) -> Vec<&str> {
    match action {
        DynamicAction::SetLinkProperties { orig, dest, .. }
        | DynamicAction::LinkJoin { orig, dest, .. }
        | DynamicAction::LinkLeave { orig, dest } => vec![orig, dest],
        DynamicAction::NodeLeave { name } | DynamicAction::NodeJoin { name } => vec![name],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_sim::units::Bandwidth;
    use kollaps_topology::generators;

    fn dumbbell() -> Topology {
        let (topo, _, _) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        topo
    }

    #[test]
    fn poisson_flaps_alternate_leave_and_join() {
        let topo = dumbbell();
        let schedule = Churn::poisson_flaps(&[("client-0", "bridge-left")])
            .mean_uptime(SimDuration::from_secs(1))
            .mean_downtime(SimDuration::from_millis(200))
            .horizon(SimDuration::from_secs(30))
            .seed(3)
            .generate(&topo)
            .expect("valid spec");
        assert!(schedule.len() >= 4, "got {} events", schedule.len());
        assert_eq!(schedule.len() % 2, 0, "leave/join events come in pairs");
        let mut expect_leave = true;
        for event in schedule.events() {
            match (&event.action, expect_leave) {
                (DynamicAction::LinkLeave { .. }, true) => expect_leave = false,
                (DynamicAction::LinkJoin { change, .. }, false) => {
                    assert_eq!(change.up, Some(Bandwidth::from_mbps(100)));
                    assert_eq!(change.latency, Some(SimDuration::from_millis(1)));
                    expect_leave = true;
                }
                other => panic!("unexpected event order: {other:?}"),
            }
            assert!(event.at <= SimDuration::from_secs(30));
        }
        // Determinism: the same seed generates the same schedule.
        let again = Churn::poisson_flaps(&[("client-0", "bridge-left")])
            .mean_uptime(SimDuration::from_secs(1))
            .mean_downtime(SimDuration::from_millis(200))
            .horizon(SimDuration::from_secs(30))
            .seed(3)
            .generate(&topo)
            .unwrap();
        assert_eq!(schedule, again);
    }

    #[test]
    fn staggered_nodes_detach_and_reattach_in_waves() {
        let topo = dumbbell();
        let schedule = Churn::staggered_nodes(&["client-0", "client-1"])
            .stagger(SimDuration::from_secs(1))
            .downtime(SimDuration::from_secs(2))
            .rounds(2)
            .start(SimDuration::from_secs(10))
            .generate(&topo)
            .expect("valid spec");
        // Per round: 2 nodes × (1 leave + 1 join) = 4 events; 2 rounds.
        assert_eq!(schedule.len(), 8);
        assert_eq!(schedule.events()[0].at, SimDuration::from_secs(10));
        assert!(matches!(
            &schedule.events()[0].action,
            DynamicAction::LinkLeave { orig, .. } if orig == "client-0"
        ));
        // client-1 leaves one stagger later, client-0 rejoins after 2 s.
        assert_eq!(schedule.events()[1].at, SimDuration::from_secs(11));
        let rejoin = schedule
            .events()
            .iter()
            .find(
                |e| matches!(&e.action, DynamicAction::LinkJoin { orig, .. } if orig == "client-0"),
            )
            .unwrap();
        assert_eq!(rejoin.at, SimDuration::from_secs(12));
    }

    #[test]
    fn partition_cuts_and_heals_crossing_links() {
        let topo = dumbbell();
        let schedule = Churn::partition(&["bridge-left"], &["bridge-right"])
            .start(SimDuration::from_secs(5))
            .heal_after(Some(SimDuration::from_secs(3)))
            .generate(&topo)
            .expect("valid spec");
        assert_eq!(schedule.len(), 2);
        assert!(matches!(
            &schedule.events()[0].action,
            DynamicAction::LinkLeave { .. }
        ));
        assert_eq!(schedule.events()[1].at, SimDuration::from_secs(8));
        let permanent = Churn::partition(&["bridge-left"], &["bridge-right"])
            .heal_after(None)
            .generate(&topo)
            .unwrap();
        assert_eq!(permanent.len(), 1);
    }

    #[test]
    fn bandwidth_ramp_scales_down_linearly() {
        let topo = dumbbell();
        let schedule = Churn::bandwidth_ramp("bridge-left", "bridge-right", 0.2)
            .ramp_duration(SimDuration::from_secs(10))
            .steps(5)
            .generate(&topo)
            .expect("valid spec");
        assert_eq!(schedule.len(), 5);
        let first = &schedule.events()[0];
        let last = &schedule.events()[4];
        assert_eq!(first.at, SimDuration::from_secs(2));
        assert_eq!(last.at, SimDuration::from_secs(10));
        let up_of = |e: &DynamicEvent| -> Bandwidth {
            let DynamicAction::SetLinkProperties { change, .. } = &e.action else {
                panic!("ramp must set properties")
            };
            change.up.unwrap()
        };
        // 50 Mb/s bottleneck: first step 84 %, last step 20 %.
        assert!((up_of(first).as_mbps() - 42.0).abs() < 0.5);
        assert!((up_of(last).as_mbps() - 10.0).abs() < 0.5);
    }

    #[test]
    fn specs_are_validated() {
        let topo = dumbbell();
        let err = Churn::poisson_flaps(&[("ghost", "bridge-left")])
            .generate(&topo)
            .unwrap_err();
        assert!(matches!(err, ChurnError::UnknownNode { name } if name == "ghost"));
        let err = Churn::poisson_flaps(&[("client-0", "client-1")])
            .generate(&topo)
            .unwrap_err();
        assert!(matches!(err, ChurnError::NoLinkBetween { .. }));
        let err = Churn::poisson_flaps(&[]).generate(&topo).unwrap_err();
        assert!(matches!(err, ChurnError::InvalidSpec { .. }));
        let err = Churn::staggered_nodes(&["client-0"])
            .downtime(SimDuration::ZERO)
            .generate(&topo)
            .unwrap_err();
        assert!(matches!(err, ChurnError::InvalidSpec { .. }));
        let err = Churn::partition(&["bridge-left"], &["bridge-left"])
            .generate(&topo)
            .unwrap_err();
        assert!(matches!(err, ChurnError::InvalidSpec { .. }));
        let err = Churn::partition(&["client-0"], &["server-0"])
            .generate(&topo)
            .unwrap_err();
        assert!(matches!(err, ChurnError::InvalidSpec { .. }), "{err}");
        let err = Churn::bandwidth_ramp("bridge-left", "bridge-right", 0.0)
            .generate(&topo)
            .unwrap_err();
        assert!(matches!(err, ChurnError::InvalidSpec { .. }));
    }

    #[test]
    fn generated_schedules_precompute_into_timelines() {
        use crate::SnapshotTimeline;
        let topo = dumbbell();
        let schedule = Churn::poisson_flaps(&[("client-0", "bridge-left")])
            .mean_uptime(SimDuration::from_secs(2))
            .mean_downtime(SimDuration::from_millis(300))
            .horizon(SimDuration::from_secs(20))
            .seed(11)
            .generate(&topo)
            .unwrap();
        let timeline = SnapshotTimeline::precompute(&topo, &schedule);
        assert_eq!(timeline.len(), schedule.change_times().len());
        // Flapping one access link must never force all-pairs work: every
        // delta touches only pairs involving client-0 (6 of 12).
        for delta in timeline.deltas() {
            assert!(delta.swap_cost() <= 6, "delta {:?}", delta.swap_cost());
        }
    }
}
