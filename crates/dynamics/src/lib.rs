//! # kollaps-dynamics
//!
//! The dynamic-topology subsystem of the Kollaps reproduction, in two
//! halves mirroring the paper's §3 dynamics story:
//!
//! 1. **The snapshot timeline** — the offline dynamics engine. Because the
//!    event schedule is part of the experiment description, the whole
//!    sequence of collapsed topology snapshots is precomputed before the
//!    experiment starts, delta-encoded with structural sharing; at runtime
//!    each change swaps an `Arc` and touches only the affected qdisc
//!    chains, never recomputing paths in the emulation loop. The engine
//!    lives in `kollaps_core::timeline` (it needs the collapse internals)
//!    and is re-exported here as [`SnapshotTimeline`], [`SnapshotDelta`]
//!    and [`TimelineStats`].
//!
//! 2. **Churn generators** — composable sources of [`EventSchedule`]s that
//!    open the churn/failure workload space: Poisson link flapping
//!    ([`Churn::poisson_flaps`]), staggered node leave/rejoin churn
//!    ([`Churn::staggered_nodes`]), partition/heal
//!    ([`Churn::partition`]), bandwidth-degradation ramps
//!    ([`Churn::bandwidth_ramp`]) and replay of a simple JSON trace format
//!    ([`Churn::trace`], see [`trace`]). Every generator validates against
//!    the topology it is applied to and reports a typed [`ChurnError`].
//!
//! The scenario layer exposes the generators as `Scenario::churn(..)`
//! knobs; generation is deterministic from an explicit seed.
//!
//! ```
//! use kollaps_dynamics::{Churn, SnapshotTimeline};
//! use kollaps_sim::prelude::*;
//! use kollaps_topology::generators;
//!
//! let (topo, _, _) = generators::dumbbell(
//!     2,
//!     Bandwidth::from_mbps(100),
//!     Bandwidth::from_mbps(50),
//!     SimDuration::from_millis(1),
//!     SimDuration::from_millis(10),
//! );
//! let schedule = Churn::poisson_flaps(&[("client-0", "bridge-left")])
//!     .mean_uptime(SimDuration::from_secs(2))
//!     .mean_downtime(SimDuration::from_millis(300))
//!     .horizon(SimDuration::from_secs(20))
//!     .seed(7)
//!     .generate(&topo)
//!     .expect("valid churn");
//! assert!(!schedule.is_empty());
//! // The whole dynamic future is precomputed offline:
//! let timeline = SnapshotTimeline::precompute(&topo, &schedule);
//! assert_eq!(timeline.len(), schedule.change_times().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod trace;

pub use churn::{Churn, ChurnError};
pub use kollaps_core::timeline::{SnapshotDelta, SnapshotTimeline, TimelineStats};
pub use trace::{parse_trace, trace_to_json, TraceError};

// Re-exported so downstream code can name the schedule type without a
// direct kollaps_topology dependency.
pub use kollaps_topology::events::EventSchedule;
