//! Workload state machinery shared by the [`crate::Session`] engine.
//!
//! All workloads of a scenario share one [`Runtime`] and one virtual
//! timeline: flows are registered with their start times (up front, or
//! mid-run through [`crate::Session::inject_workload`]), the session steps
//! the clock in small slices so request/response workloads can re-arm on
//! completion events, and every workload is finalized into a [`FlowReport`]
//! exactly when its activity window closes. This module holds the
//! per-workload registration, live state, completion handling and
//! finalization; the resumable clock-driving loop lives in
//! [`crate::session`].

use std::collections::{BTreeMap, HashMap};

use kollaps_core::collapse::Addressable;
use kollaps_core::runtime::Runtime;
use kollaps_netmodel::packet::{Addr, FlowId};
use kollaps_sim::prelude::*;
use kollaps_transport::tcp::{TcpSenderConfig, TransferSize};
use kollaps_workloads::memcached_throughput;

use crate::backend::AnyDataplane;
use crate::report::{FlowReport, HttpStats, LinkReport, RttStats};
use crate::workload::Workload;

/// Default wall-clock slice between event-dispatch rounds (same granularity
/// the standalone wrk2/curl drivers used); overridable per scenario with
/// [`crate::Scenario::step_interval`].
pub(crate) const DEFAULT_STEP: SimDuration = SimDuration::from_millis(100);

/// Per-operation memcached server time (µs) and aggregate server capacity
/// (ops/s) fed to the closed-loop model, matching the Figure 4 harness.
const MEMCACHED_OP_TIME_US: f64 = 80.0;
const MEMCACHED_CAPACITY_OPS: f64 = 1.0e9;

/// A workload with its endpoints resolved to container addresses and its
/// activity window pinned to the scenario timeline.
pub(crate) struct ResolvedWorkload {
    pub workload: Workload,
    pub kind: ResolvedKind,
    pub start: SimTime,
    pub end: SimTime,
}

/// Address-level mirror of [`crate::workload::WorkloadKind`].
pub(crate) enum ResolvedKind {
    IperfTcp {
        client: Addr,
        server: Addr,
        algorithm: kollaps_transport::tcp::CongestionAlgorithm,
    },
    IperfUdp {
        client: Addr,
        server: Addr,
        rate: Bandwidth,
    },
    Ping {
        src: Addr,
        dst: Addr,
        count: u64,
        interval: SimDuration,
    },
    Wrk2 {
        server: Addr,
        client: Addr,
        connections: usize,
        request: DataSize,
    },
    Curl {
        server: Addr,
        clients: Vec<Addr>,
        request: DataSize,
    },
    Memcached {
        server: Addr,
        clients: Vec<Addr>,
        connections: usize,
    },
}

/// Live state of one workload while the scenario runs.
pub(crate) enum State {
    IperfTcp {
        flow: FlowId,
    },
    IperfUdp {
        flow: FlowId,
    },
    Ping {
        flow: FlowId,
    },
    Wrk2 {
        flows: Vec<FlowId>,
        request: DataSize,
        requests: u64,
        bytes_per_client: Vec<u64>,
        latencies_ms: Summary,
        last_start: HashMap<FlowId, SimTime>,
        per_second: HashMap<u64, u64>,
    },
    Curl {
        server: Addr,
        clients: Vec<Addr>,
        request: DataSize,
        owner_client: BTreeMap<FlowId, usize>,
        started_at: HashMap<FlowId, SimTime>,
        requests: u64,
        bytes_per_client: Vec<u64>,
        latencies_ms: Summary,
        per_second: HashMap<u64, u64>,
    },
    Memcached {
        probes: Vec<FlowId>,
        connections: usize,
    },
    Done,
}

/// Endpoints a finalized flow moved bulk data between, for link accounting.
pub(crate) struct LinkDemand {
    src: Addr,
    dst: Addr,
    mbps: f64,
}

/// Registers one resolved workload with the runtime at slot `idx` and
/// returns its live state. The runtime honours future start times, so
/// nothing moves before the window opens — which makes this the single
/// registration path for both up-front declaration and mid-run injection.
pub(crate) fn register_workload(
    rt: &mut Runtime<AnyDataplane>,
    owner: &mut HashMap<FlowId, usize>,
    idx: usize,
    w: &ResolvedWorkload,
) -> State {
    match &w.kind {
        ResolvedKind::IperfTcp {
            client,
            server,
            algorithm,
        } => {
            let flow = rt.add_tcp_flow(
                *client,
                *server,
                TransferSize::Unbounded,
                TcpSenderConfig::with_algorithm(*algorithm),
                w.start,
            );
            State::IperfTcp { flow }
        }
        ResolvedKind::IperfUdp {
            client,
            server,
            rate,
        } => {
            let flow = rt.add_udp_flow(*client, *server, *rate, w.start, Some(w.end));
            State::IperfUdp { flow }
        }
        ResolvedKind::Ping {
            src,
            dst,
            count,
            interval,
        } => {
            let flow = rt.add_ping(*src, *dst, *interval, *count, w.start);
            State::Ping { flow }
        }
        ResolvedKind::Wrk2 {
            server,
            client,
            connections,
            request,
        } => {
            let mut flows = Vec::with_capacity(*connections);
            let mut last_start = HashMap::new();
            for _ in 0..*connections {
                let flow = rt.add_tcp_flow(
                    *server,
                    *client,
                    TransferSize::Bytes(request.as_bytes()),
                    TcpSenderConfig::default(),
                    w.start,
                );
                owner.insert(flow, idx);
                last_start.insert(flow, w.start);
                flows.push(flow);
            }
            State::Wrk2 {
                flows,
                request: *request,
                requests: 0,
                bytes_per_client: vec![0],
                latencies_ms: Summary::new(),
                last_start,
                per_second: HashMap::new(),
            }
        }
        ResolvedKind::Curl {
            server,
            clients,
            request,
        } => {
            let mut owner_client = BTreeMap::new();
            let mut started_at = HashMap::new();
            for (ci, client) in clients.iter().enumerate() {
                let flow = rt.add_tcp_flow(
                    *server,
                    *client,
                    TransferSize::Bytes(request.as_bytes()),
                    TcpSenderConfig::default(),
                    w.start,
                );
                owner.insert(flow, idx);
                owner_client.insert(flow, ci);
                started_at.insert(flow, w.start);
            }
            State::Curl {
                server: *server,
                clients: clients.clone(),
                request: *request,
                owner_client,
                started_at,
                requests: 0,
                bytes_per_client: vec![0; clients.len()],
                latencies_ms: Summary::new(),
                per_second: HashMap::new(),
            }
        }
        ResolvedKind::Memcached {
            server,
            clients,
            connections,
        } => {
            let interval = SimDuration::from_millis(100);
            let window = w.end.saturating_since(w.start);
            let count = (window.as_secs_f64() / interval.as_secs_f64()).floor() as u64;
            let probes = clients
                .iter()
                .map(|c| rt.add_ping(*c, *server, interval, count.max(1), w.start))
                .collect();
            State::Memcached {
                probes,
                connections: *connections,
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_completion(
    rt: &mut Runtime<AnyDataplane>,
    owner: &mut HashMap<FlowId, usize>,
    state: &mut State,
    idx: usize,
    flow: FlowId,
    at: SimTime,
    workloads: &[ResolvedWorkload],
) {
    let end = workloads[idx].end;
    match state {
        State::Wrk2 {
            request,
            requests,
            bytes_per_client,
            latencies_ms,
            last_start,
            per_second,
            ..
        } => {
            *requests += 1;
            bytes_per_client[0] += request.as_bytes();
            *per_second.entry(at.as_secs_f64() as u64).or_default() += request.as_bytes();
            if let Some(t0) = last_start.get(&flow) {
                latencies_ms.record(at.saturating_since(*t0).as_millis_f64());
            }
            if at < end {
                // Keep the connection busy with the next response.
                rt.push_tcp_bytes(flow, request.as_bytes());
                last_start.insert(flow, at);
            }
        }
        State::Curl {
            server,
            clients,
            request,
            owner_client,
            started_at,
            requests,
            bytes_per_client,
            latencies_ms,
            per_second,
        } => {
            let Some(ci) = owner_client.remove(&flow) else {
                return;
            };
            *requests += 1;
            bytes_per_client[ci] += request.as_bytes();
            *per_second.entry(at.as_secs_f64() as u64).or_default() += request.as_bytes();
            if let Some(t0) = started_at.remove(&flow) {
                latencies_ms.record(at.saturating_since(t0).as_millis_f64());
            }
            rt.stop_tcp_flow(flow);
            owner.remove(&flow);
            if at < end {
                // A new connection for the next request (connection-per-
                // request behaviour: the transfer restarts in slow start).
                let next = rt.add_tcp_flow(
                    *server,
                    clients[ci],
                    TransferSize::Bytes(request.as_bytes()),
                    TcpSenderConfig::default(),
                    at,
                );
                owner.insert(next, idx);
                owner_client.insert(next, ci);
                started_at.insert(next, at);
            }
        }
        _ => {}
    }
}

fn window_series(
    rt: &Runtime<AnyDataplane>,
    flow: FlowId,
    start: SimTime,
    end: SimTime,
) -> Vec<f64> {
    rt.throughput_series(flow)
        .map(|s| {
            s.points()
                .iter()
                .filter(|p| p.time > start && p.time <= end)
                .map(|p| p.value)
                .collect()
        })
        .unwrap_or_default()
}

fn per_second_vec(per_second: &HashMap<u64, u64>, start: SimTime, end: SimTime) -> Vec<f64> {
    let first = start.as_secs_f64().floor() as u64;
    let last = end.as_secs_f64().ceil() as u64;
    (first..last)
        .map(|s| {
            DataSize::from_bytes(per_second.get(&s).copied().unwrap_or(0))
                .rate_over(SimDuration::from_secs(1))
                .as_mbps()
        })
        .collect()
}

pub(crate) fn finalize(
    rt: &mut Runtime<AnyDataplane>,
    w: &ResolvedWorkload,
    state: State,
) -> (FlowReport, Vec<LinkDemand>) {
    let window = w.end.saturating_since(w.start);
    // A window truncated to nothing by a duration cap measured nothing.
    let window = if window.is_zero() {
        SimDuration::from_nanos(1)
    } else {
        window
    };
    let secs = window.as_secs_f64().max(f64::EPSILON);
    let mut report = FlowReport {
        workload: w.workload.label().to_string(),
        start_s: w.start.as_secs_f64(),
        end_s: w.end.as_secs_f64(),
        ..FlowReport::default()
    };
    let (client_name, server_name) = endpoint_names(&w.workload);
    report.client = client_name;
    report.server = server_name;
    let mut demands = Vec::new();
    match state {
        State::IperfTcp { flow } => {
            let bytes = rt.tcp_received_bytes(flow);
            let mbps = DataSize::from_bytes(bytes).rate_over(window).as_mbps();
            report.goodput_mbps = Some(mbps);
            report.per_second_mbps = window_series(rt, flow, w.start, w.end);
            report.retransmissions = rt.tcp_sender(flow).map(|s| s.stats().retransmissions);
            rt.stop_tcp_flow(flow);
            if let ResolvedKind::IperfTcp { client, server, .. } = &w.kind {
                demands.push(LinkDemand {
                    src: *client,
                    dst: *server,
                    mbps,
                });
            }
        }
        State::IperfUdp { flow } => {
            let bytes = rt.udp_delivered_bytes(flow);
            let mbps = DataSize::from_bytes(bytes).rate_over(window).as_mbps();
            report.goodput_mbps = Some(mbps);
            report.per_second_mbps = window_series(rt, flow, w.start, w.end);
            if let ResolvedKind::IperfUdp { client, server, .. } = &w.kind {
                demands.push(LinkDemand {
                    src: *client,
                    dst: *server,
                    mbps,
                });
            }
        }
        State::Ping { flow } => {
            let stats = rt.ping_rtts(flow).cloned().unwrap_or_default();
            // The activity window is over: probes past it must not keep
            // contending with other workloads (or skew their link shares).
            rt.stop_ping(flow);
            report.rtt = Some(RttStats {
                mean_ms: stats.mean(),
                jitter_ms: stats.std_dev(),
                min_ms: stats.min(),
                max_ms: stats.max(),
                replies: stats.len(),
                samples_ms: stats.samples().to_vec(),
            });
        }
        State::Wrk2 {
            flows,
            requests,
            bytes_per_client,
            latencies_ms,
            per_second,
            ..
        } => {
            for flow in flows {
                rt.stop_tcp_flow(flow);
            }
            let bytes: u64 = bytes_per_client.iter().sum();
            let mbps = DataSize::from_bytes(bytes).rate_over(window).as_mbps();
            report.goodput_mbps = Some(mbps);
            report.per_second_mbps = per_second_vec(&per_second, w.start, w.end);
            report.http = Some(http_stats(requests, &latencies_ms));
            if let ResolvedKind::Wrk2 { server, client, .. } = &w.kind {
                demands.push(LinkDemand {
                    src: *server,
                    dst: *client,
                    mbps,
                });
            }
        }
        State::Curl {
            server,
            clients,
            owner_client,
            requests,
            bytes_per_client,
            latencies_ms,
            per_second,
            ..
        } => {
            for flow in owner_client.keys() {
                rt.stop_tcp_flow(*flow);
            }
            let bytes: u64 = bytes_per_client.iter().sum();
            report.goodput_mbps = Some(DataSize::from_bytes(bytes).rate_over(window).as_mbps());
            report.per_second_mbps = per_second_vec(&per_second, w.start, w.end);
            report.http = Some(http_stats(requests, &latencies_ms));
            for (ci, client) in clients.iter().enumerate() {
                let mbps = (bytes_per_client[ci] as f64 * 8.0) / secs / 1.0e6;
                demands.push(LinkDemand {
                    src: server,
                    dst: *client,
                    mbps,
                });
            }
        }
        State::Memcached {
            probes,
            connections,
        } => {
            for &probe in &probes {
                rt.stop_ping(probe);
            }
            let rtts: Vec<f64> = probes
                .iter()
                .map(|&p| {
                    rt.ping_rtts(p)
                        .map(|s| s.mean())
                        .filter(|m| m.is_finite() && *m > 0.0)
                        .unwrap_or(1.0)
                })
                .collect();
            report.ops_per_second = Some(memcached_throughput(
                &rtts,
                connections,
                MEMCACHED_OP_TIME_US,
                MEMCACHED_CAPACITY_OPS,
            ));
        }
        State::Done => {}
    }
    (report, demands)
}

fn http_stats(requests: u64, latencies_ms: &Summary) -> HttpStats {
    HttpStats {
        requests,
        latency_p50_ms: latencies_ms.percentile(50.0),
        latency_p90_ms: latencies_ms.percentile(90.0),
        latency_p99_ms: latencies_ms.percentile(99.0),
        samples_ms: latencies_ms.samples().to_vec(),
    }
}

pub(crate) fn endpoint_names(workload: &Workload) -> (String, String) {
    use crate::workload::WorkloadKind::*;
    match &workload.kind {
        IperfTcp { client, server, .. } | IperfUdp { client, server, .. } => {
            (client.clone(), server.clone())
        }
        Ping { src, dst, .. } => (src.clone(), dst.clone()),
        Wrk2 { server, client, .. } => (client.clone(), server.clone()),
        Curl {
            server, clients, ..
        } => (clients.join(","), server.clone()),
        Memcached {
            server, clients, ..
        } => (clients.join(","), server.clone()),
    }
}

pub(crate) fn link_reports(rt: &Runtime<AnyDataplane>, demands: &[LinkDemand]) -> Vec<LinkReport> {
    let collapsed = rt.dataplane.collapsed();
    let mut offered: BTreeMap<u32, f64> = BTreeMap::new();
    for demand in demands {
        if demand.mbps <= 0.0 {
            continue;
        }
        let Some(path) = collapsed.path_by_addr(demand.src, demand.dst) else {
            continue;
        };
        for link in &path.links {
            *offered.entry(link.0).or_default() += demand.mbps;
        }
    }
    let mut links: Vec<LinkReport> = offered
        .into_iter()
        .map(|(link, offered_mbps)| {
            let capacity_mbps = collapsed
                .link_capacity(kollaps_topology::model::LinkId(link))
                .map(|b| b.as_mbps())
                .unwrap_or(f64::INFINITY);
            let utilization = if capacity_mbps.is_finite() && capacity_mbps > 0.0 {
                offered_mbps / capacity_mbps
            } else {
                0.0
            };
            LinkReport {
                link,
                capacity_mbps,
                offered_mbps,
                utilization,
            }
        })
        .collect();
    links.sort_by_key(|l| l.link);
    links
}
