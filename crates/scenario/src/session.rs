//! The live, resumable execution engine behind [`crate::Scenario`].
//!
//! A [`Session`] is a running experiment you can hold in your hand:
//! [`Session::step`] and [`Session::run_until`] advance the virtual clock
//! in increments, [`Session::pause`]/[`Session::resume`] gate it, live
//! accessors ([`Session::clock`], [`Session::flow_progress`],
//! [`Session::link_loads`], [`Session::convergence`]) expose the running
//! state, attached [`Sink`]s stream typed [`TelemetryEvent`]s and periodic
//! [`crate::Sample`]s, and the steering calls
//! ([`Session::inject_workload`], [`Session::inject_event`],
//! [`Session::inject_churn`]) change the experiment *while it runs* —
//! extending the precomputed snapshot timeline incrementally instead of
//! rebuilding it.
//!
//! The one-shot [`crate::Scenario::run`] is a thin wrapper:
//! `scenario.session()?.finish()`. The engine dispatches workload events
//! (completion re-arming, window finalization) at exactly the same
//! instants whether the clock is driven in one go or in arbitrary user
//! steps: runtime events that fall between dispatch points are buffered
//! and handled at the next dispatch point, so a stepped session is
//! **byte-identical** to the one-shot path (pinned by a property test).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use kollaps_core::runtime::{Runtime, RuntimeEvent};
use kollaps_netmodel::packet::FlowId;
use kollaps_sim::prelude::*;
use kollaps_topology::events::{DynamicAction, DynamicEvent, EventSchedule};
use kollaps_topology::model::Topology;

use crate::backend::AnyDataplane;
use crate::report::{
    ConvergenceReport, DynamicsReport, FlowReport, HostMetadata, PhaseTimingReport, Report,
};
use crate::runner::{self, LinkDemand, ResolvedWorkload, State};
use crate::telemetry::{
    Aggregator, FlowProgress, FlowStatus, LinkLoad, Sample, Sink, TelemetryEvent,
};
use crate::workload::Workload;
use crate::{Churn, ScenarioError};

/// Everything that can go wrong while driving or steering a live session.
///
/// Scenario *composition* problems keep their typed [`ScenarioError`]
/// (wrapped in [`SessionError::Invalid`]); the variants here are the
/// session-lifecycle failures that cannot exist in the one-shot world.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The session is paused; call [`Session::resume`] first.
    Paused,
    /// An injected event or churn spec targets a time the session clock
    /// has already passed — the emulated past cannot be rewritten.
    PastInjection {
        /// Requested effect time, seconds since scenario start.
        at_s: f64,
        /// The session clock at injection, seconds since scenario start.
        now_s: f64,
    },
    /// The injected workload, event or churn spec failed validation
    /// against the running scenario (unknown node, unsupported backend,
    /// invalid spec, ...).
    Invalid(ScenarioError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Paused => write!(f, "session is paused; resume() before stepping"),
            SessionError::PastInjection { at_s, now_s } => write!(
                f,
                "cannot inject at t={at_s}s: the session clock is already at {now_s}s"
            ),
            SessionError::Invalid(e) => write!(f, "invalid injection: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ScenarioError> for SessionError {
    fn from(e: ScenarioError) -> Self {
        SessionError::Invalid(e)
    }
}

/// Construction bundle handed from the scenario builder to the session
/// (the builder validated everything; the session only runs it).
pub(crate) struct SessionInit {
    pub scenario_name: String,
    pub backend_name: String,
    pub hosts: usize,
    pub topology: Topology,
    pub dataplane: AnyDataplane,
    pub workloads: Vec<ResolvedWorkload>,
    pub total_end: SimTime,
    pub duration_capped: bool,
    pub step: SimDuration,
    pub sample_interval: Option<SimDuration>,
    pub recorder: kollaps_trace::Recorder,
}

/// A live experiment: the resumable state the one-shot runner used to keep
/// on its stack; the module-level docs above state the stepping contract.
pub struct Session {
    rt: Runtime<AnyDataplane>,
    scenario_name: String,
    backend_name: String,
    hosts: usize,
    /// The declared (base) topology — the universe workload endpoints are
    /// validated and resolved against, injected ones included.
    topology: Topology,
    workloads: Vec<ResolvedWorkload>,
    states: Vec<State>,
    owner: HashMap<FlowId, usize>,
    reports: Vec<Option<FlowReport>>,
    /// Last live progress of finalized workloads (their runtime state is
    /// consumed by finalization, so the final view is snapshotted).
    final_progress: Vec<Option<FlowProgress>>,
    started_emitted: Vec<bool>,
    demands: Vec<LinkDemand>,
    /// Times the clock must land on exactly: workload window edges.
    boundaries: Vec<SimTime>,
    /// The last event-dispatch point (the one-shot loop's `now`).
    dispatched: SimTime,
    /// The session clock; `>= dispatched` (strictly greater when a user
    /// step stopped between dispatch points).
    cursor: SimTime,
    total_end: SimTime,
    /// `true` when an explicit `Scenario::duration` cap fixed `total_end`
    /// (injected workloads are then clipped instead of extending it).
    duration_capped: bool,
    step: SimDuration,
    sample_interval: Option<SimDuration>,
    next_sample: SimTime,
    paused: bool,
    sinks: Vec<Box<dyn Sink>>,
    /// The built-in flow-class aggregator: every finalized flow folds into
    /// it, and [`Session::finish`] exports it as `Report::flow_classes`.
    aggregator: Aggregator,
    /// Runtime events collected between dispatch points; handled at the
    /// next dispatch point so stepping granularity cannot change outcomes.
    pending: Vec<RuntimeEvent>,
    /// Telemetry watermarks (what has already been reported to sinks).
    seen_snapshots: usize,
    seen_metadata_bytes: u64,
    oversubscribed: BTreeSet<u32>,
    /// The flight recorder (disabled unless the scenario enabled tracing);
    /// the same handle the Kollaps dataplane and its managers write to.
    recorder: kollaps_trace::Recorder,
}

impl Session {
    pub(crate) fn new(init: SessionInit) -> Self {
        let SessionInit {
            scenario_name,
            backend_name,
            hosts,
            topology,
            dataplane,
            workloads,
            total_end,
            duration_capped,
            step,
            sample_interval,
            recorder,
        } = init;
        recorder.instant(
            0,
            "session_created",
            &[("workloads", workloads.len() as f64)],
        );
        let mut rt = Runtime::new(dataplane);
        let mut owner = HashMap::new();
        let mut states = Vec::with_capacity(workloads.len());
        for (idx, w) in workloads.iter().enumerate() {
            states.push(runner::register_workload(&mut rt, &mut owner, idx, w));
        }
        let mut boundaries: Vec<SimTime> = workloads
            .iter()
            .flat_map(|w| [w.start, w.end])
            .chain(std::iter::once(total_end))
            .collect();
        boundaries.sort();
        boundaries.dedup();
        let n = workloads.len();
        Session {
            rt,
            scenario_name,
            backend_name,
            hosts,
            topology,
            workloads,
            states,
            owner,
            reports: (0..n).map(|_| None).collect(),
            final_progress: (0..n).map(|_| None).collect(),
            started_emitted: vec![false; n],
            demands: Vec::new(),
            boundaries,
            dispatched: SimTime::ZERO,
            cursor: SimTime::ZERO,
            total_end,
            duration_capped,
            step,
            sample_interval,
            next_sample: sample_interval
                .map(|i| SimTime::ZERO + i)
                .unwrap_or(SimTime::MAX),
            paused: false,
            sinks: Vec::new(),
            aggregator: Aggregator::new(),
            pending: Vec::new(),
            seen_snapshots: 0,
            seen_metadata_bytes: 0,
            oversubscribed: BTreeSet::new(),
            recorder,
        }
    }

    // ------------------------------------------------------------------
    // Clock driving
    // ------------------------------------------------------------------

    /// Current virtual time of the session.
    pub fn clock(&self) -> SimTime {
        self.cursor
    }

    /// When the experiment timeline ends (grows if an injected workload
    /// outlives every declared one and no duration cap was set).
    pub fn end(&self) -> SimTime {
        self.total_end
    }

    /// Pauses the session: [`Session::step`] and [`Session::run_until`]
    /// fail with [`SessionError::Paused`] until [`Session::resume`].
    /// Steering and the live accessors keep working while paused.
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Clears a [`Session::pause`].
    pub fn resume(&mut self) {
        self.paused = false;
    }

    /// `true` while the session is paused.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Advances the clock by `dt` (clipped to the end of the experiment)
    /// and returns the new clock.
    pub fn step(&mut self, dt: SimDuration) -> Result<SimTime, SessionError> {
        let target = (self.cursor + dt).min(self.total_end);
        self.advance(target)?;
        Ok(self.cursor)
    }

    /// Advances the clock to `deadline` (clipped to the end of the
    /// experiment) and returns the new clock.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<SimTime, SessionError> {
        self.advance(deadline.min(self.total_end))?;
        Ok(self.cursor)
    }

    /// Runs whatever remains of the timeline, finalizes every workload and
    /// returns the structured [`Report`] — exactly what the one-shot
    /// [`crate::Scenario::run`] returns. An active pause is released (finishing
    /// *is* the resume).
    pub fn finish(mut self) -> Report {
        self.paused = false;
        let span = self.recorder.span(0, "session_finish");
        self.advance(self.total_end)
            .expect("an unpaused session always advances");
        drop(span);
        // Safety net: windows clipped exactly to the end are finalized by
        // the last dispatch; anything left (zero-length timeline) ends
        // here.
        for idx in 0..self.workloads.len() {
            if !matches!(self.states[idx], State::Done) {
                self.finalize_workload(idx);
            }
        }
        self.build_report()
    }

    /// The clock-driving core. Dispatch points are computed exactly like
    /// the pre-session one-shot loop computed its slice ends (step
    /// interval, clipped to the next window boundary and the experiment
    /// end), independent of how callers slice their steps: a step that
    /// stops between dispatch points buffers runtime events and handles
    /// them when the dispatch point is eventually reached. Sampling
    /// instants pause the clock the same way a user step does — the sample
    /// is taken **without** dispatching, so enabling observability cannot
    /// perturb the experiment's results.
    fn advance(&mut self, target: SimTime) -> Result<(), SessionError> {
        if self.paused {
            return Err(SessionError::Paused);
        }
        while self.cursor < target {
            let next = self.next_dispatch();
            // A due sampling instant strictly before the next dispatch
            // point: stop there exactly like a user step would, observe,
            // and continue. Coinciding instants sample right after the
            // dispatch (the `<` keeps dispatch first).
            if let Some(interval) = self.sample_interval {
                if self.next_sample <= target && self.next_sample < next {
                    let at = self.next_sample;
                    if at > self.cursor {
                        let events = self.rt.run_until(at);
                        self.pending.extend(events);
                        self.cursor = at;
                    }
                    self.take_sample(at);
                    while self.next_sample <= at {
                        self.next_sample += interval;
                    }
                    continue;
                }
            }
            if next <= target {
                let events = self.rt.run_until(next);
                self.pending.extend(events);
                self.dispatch(next);
                if let Some(interval) = self.sample_interval {
                    if self.next_sample == next {
                        self.take_sample(next);
                        while self.next_sample <= next {
                            self.next_sample += interval;
                        }
                    }
                }
            } else {
                let events = self.rt.run_until(target);
                self.pending.extend(events);
                self.cursor = target;
                break;
            }
        }
        Ok(())
    }

    /// The next event-dispatch instant after the last one.
    fn next_dispatch(&self) -> SimTime {
        let mut next = self.dispatched + self.step;
        if let Some(&b) = self.boundaries.iter().find(|&&b| b > self.dispatched) {
            next = next.min(b);
        }
        next.min(self.total_end)
    }

    /// One event-dispatch round at `now`: handle buffered completions,
    /// finalize windows that closed, emit telemetry and samples.
    fn dispatch(&mut self, now: SimTime) {
        for event in std::mem::take(&mut self.pending) {
            if let RuntimeEvent::TcpCompleted { flow, at } = event {
                let Some(&idx) = self.owner.get(&flow) else {
                    continue;
                };
                runner::handle_completion(
                    &mut self.rt,
                    &mut self.owner,
                    &mut self.states[idx],
                    idx,
                    flow,
                    at,
                    &self.workloads,
                );
            }
        }
        self.dispatched = now;
        self.cursor = now;
        for idx in 0..self.workloads.len() {
            if !self.started_emitted[idx] && self.workloads[idx].start <= now {
                self.started_emitted[idx] = true;
                if !self.sinks.is_empty() {
                    let w = &self.workloads[idx];
                    let (client, server) = runner::endpoint_names(&w.workload);
                    let event = TelemetryEvent::FlowStarted {
                        at_s: w.start.as_secs_f64(),
                        workload: w.workload.label().to_string(),
                        client,
                        server,
                    };
                    self.emit(&event);
                }
            }
        }
        for idx in 0..self.workloads.len() {
            if self.workloads[idx].end == now && !matches!(self.states[idx], State::Done) {
                self.finalize_workload(idx);
            }
        }
        self.dataplane_telemetry();
    }

    /// Finalizes workload `idx` into its [`FlowReport`], snapshotting the
    /// live progress first (finalization consumes the runtime state).
    fn finalize_workload(&mut self, idx: usize) {
        let progress = FlowProgress {
            status: FlowStatus::Finished,
            ..self.progress_of(idx)
        };
        let state = std::mem::replace(&mut self.states[idx], State::Done);
        let (report, flow_demands) = runner::finalize(&mut self.rt, &self.workloads[idx], state);
        self.demands.extend(flow_demands);
        self.aggregator.observe_flow(&report);
        if !self.sinks.is_empty() {
            let event = TelemetryEvent::FlowFinished {
                at_s: self.workloads[idx].end.as_secs_f64(),
                report: Box::new(report.clone()),
            };
            self.emit(&event);
        }
        self.reports[idx] = Some(report);
        self.final_progress[idx] = Some(progress);
    }

    /// Detects and reports dataplane-side occurrences since the last
    /// dispatch: applied topology changes, oversubscription transitions
    /// and metadata put on the physical network.
    fn dataplane_telemetry(&mut self) {
        let want = !self.sinks.is_empty();
        let mut events: Vec<TelemetryEvent> = Vec::new();
        if let Some(dp) = self.rt.dataplane.kollaps() {
            let applied = dp.dynamics().snapshots_applied;
            if applied > self.seen_snapshots {
                if want {
                    for delta in &dp.timeline().deltas()[self.seen_snapshots..applied] {
                        events.push(TelemetryEvent::DynamicEventApplied {
                            at_s: delta.at.as_secs_f64(),
                            events: delta.events,
                            changed_paths: delta.swap_cost(),
                        });
                    }
                }
                self.seen_snapshots = applied;
            }
            let at_s = self.cursor.as_secs_f64();
            let current: BTreeSet<u32> = dp.oversubscribed_links().iter().map(|l| l.0).collect();
            if current != self.oversubscribed {
                if want {
                    // BTreeSet differences iterate in ascending link order.
                    let onset: Vec<u32> =
                        current.difference(&self.oversubscribed).copied().collect();
                    let cleared: Vec<u32> =
                        self.oversubscribed.difference(&current).copied().collect();
                    for link in onset {
                        events.push(TelemetryEvent::OversubscriptionOnset { at_s, link });
                    }
                    for link in cleared {
                        events.push(TelemetryEvent::OversubscriptionCleared { at_s, link });
                    }
                }
                self.oversubscribed = current;
            }
            let total = dp.metadata_accounting().total_network_bytes();
            if total > self.seen_metadata_bytes {
                if want {
                    events.push(TelemetryEvent::MetadataDelivered {
                        at_s,
                        bytes: total - self.seen_metadata_bytes,
                    });
                }
                self.seen_metadata_bytes = total;
            }
        }
        for event in &events {
            self.emit(event);
        }
    }

    /// Delivers one periodic sample at `now` (a non-dispatching
    /// observation stop inserted by [`Session::advance`]).
    fn take_sample(&mut self, now: SimTime) {
        if self.sinks.is_empty() {
            return;
        }
        let allocation = self.allocation_telemetry();
        let sample = Sample {
            at_s: now.as_secs_f64(),
            flows: self.flow_progress(),
            links: self.link_loads(),
            convergence_gap: self.rt.dataplane.convergence().map(|c| c.last_gap),
            allocation_micros: allocation.map(|(micros, _)| micros),
            allocator_fast_hit_rate: allocation.map(|(_, stats)| stats.fast_hit_rate()),
        };
        for sink in &mut self.sinks {
            sink.on_sample(&sample);
        }
    }

    fn emit(&mut self, event: &TelemetryEvent) {
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
    }

    // ------------------------------------------------------------------
    // Live accessors
    // ------------------------------------------------------------------

    /// Attaches a telemetry sink. Sinks receive every subsequent
    /// [`TelemetryEvent`] (and periodic samples, when the scenario set a
    /// sample interval) synchronously, in attachment order.
    pub fn attach_sink(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    /// Point-in-time progress of every workload, in declaration order
    /// (injected workloads append).
    pub fn flow_progress(&self) -> Vec<FlowProgress> {
        (0..self.workloads.len())
            .map(|idx| self.progress_of(idx))
            .collect()
    }

    fn progress_of(&self, idx: usize) -> FlowProgress {
        if let Some(done) = &self.final_progress[idx] {
            return done.clone();
        }
        let w = &self.workloads[idx];
        let (client, server) = runner::endpoint_names(&w.workload);
        let status = if self.cursor < w.start {
            FlowStatus::Pending
        } else {
            FlowStatus::Running
        };
        let (bytes, replies, requests) = match &self.states[idx] {
            State::IperfTcp { flow } => (self.rt.tcp_received_bytes(*flow), 0, 0),
            State::IperfUdp { flow } => (self.rt.udp_delivered_bytes(*flow), 0, 0),
            State::Ping { flow } => (0, self.rt.ping_rtts(*flow).map(|s| s.len()).unwrap_or(0), 0),
            State::Wrk2 {
                requests,
                bytes_per_client,
                ..
            }
            | State::Curl {
                requests,
                bytes_per_client,
                ..
            } => (bytes_per_client.iter().sum(), 0, *requests),
            State::Memcached { probes, .. } => (
                0,
                probes
                    .iter()
                    .map(|&p| self.rt.ping_rtts(p).map(|s| s.len()).unwrap_or(0))
                    .sum(),
                0,
            ),
            State::Done => (0, 0, 0),
        };
        FlowProgress {
            workload: w.workload.label().to_string(),
            client,
            server,
            status,
            start_s: w.start.as_secs_f64(),
            end_s: w.end.as_secs_f64(),
            bytes,
            replies,
            requests,
        }
    }

    /// Live offered load per original-topology link, from the emulation
    /// managers' most recent loop iteration (Kollaps backend only; empty
    /// otherwise).
    pub fn link_loads(&self) -> Vec<LinkLoad> {
        self.rt
            .dataplane
            .live_link_usage()
            .into_iter()
            .map(|(link, offered_mbps, capacity_mbps)| LinkLoad {
                link,
                capacity_mbps,
                offered_mbps,
                utilization: if capacity_mbps.is_finite() && capacity_mbps > 0.0 {
                    offered_mbps / capacity_mbps
                } else {
                    0.0
                },
            })
            .collect()
    }

    /// The session's flight recorder — disabled (a no-op handle) unless
    /// the scenario enabled [`crate::Scenario::trace`]. The handle is
    /// reference-counted and shared with the emulation core: clone it
    /// before [`Session::finish`] to read the recorded events afterwards,
    /// and export them with [`kollaps_trace::chrome_trace_string`] or
    /// [`kollaps_trace::structured_json`].
    pub fn tracer(&self) -> &kollaps_trace::Recorder {
        &self.recorder
    }

    /// Per-flow-class percentile telemetry aggregated over the flows
    /// finalized *so far* (live view of what [`Session::finish`] exports
    /// as [`Report::flow_classes`]).
    pub fn flow_classes(&self) -> Vec<crate::report::FlowClassReport> {
        self.aggregator.flow_classes()
    }

    /// Cumulative bandwidth-allocation telemetry across every emulation
    /// manager so far: wall-clock microseconds spent inside the min-max
    /// allocator and the incremental allocator's cache counters (fast-path
    /// hits, components reused vs recomputed). Kollaps backend only — the
    /// scaling bench reads this to report allocation µs per loop.
    pub fn allocation_telemetry(&self) -> Option<(u64, kollaps_core::AllocatorStats)> {
        self.rt
            .dataplane
            .kollaps()
            .map(|dp| (dp.allocation_micros(), dp.allocator_stats()))
    }

    /// Metadata bytes put on the physical network so far, per host — the
    /// live view of what the final report exports as
    /// [`Report`]`::metadata_per_host`. Distributed agents read this
    /// mid-run to stream health frames to the coordinator.
    pub fn metadata_per_host(&self) -> Vec<HostMetadata> {
        self.rt
            .dataplane
            .metadata_per_host()
            .into_iter()
            .map(|(host, sent_bytes, received_bytes)| HostMetadata {
                host,
                sent_bytes,
                received_bytes,
            })
            .collect()
    }

    /// How close the decentralized enforcement has tracked the omniscient
    /// allocation so far (Kollaps backend only).
    pub fn convergence(&self) -> Option<ConvergenceReport> {
        self.rt.dataplane.convergence().map(|c| ConvergenceReport {
            last_gap: c.last_gap,
            max_gap: c.max_gap,
            mean_gap: c.mean_gap(),
        })
    }

    // ------------------------------------------------------------------
    // Distributed execution hooks
    // ------------------------------------------------------------------

    /// Replaces the Kollaps dataplane's dissemination transport — the
    /// distributed runtime injects its socket-backed bus here so metadata
    /// rides real datagrams instead of the modeled delay queue. Only valid
    /// on the Kollaps backend and before the clock has advanced (swapping
    /// transports mid-run would lose in-flight metadata, reported as
    /// [`SessionError::PastInjection`]).
    pub fn install_metadata_bus(
        &mut self,
        bus: Box<dyn kollaps_metadata::bus::Bus>,
    ) -> Result<(), SessionError> {
        self.kollaps_or_unsupported("metadata bus replacement")?;
        if self.cursor > SimTime::ZERO {
            return Err(SessionError::PastInjection {
                at_s: 0.0,
                now_s: self.cursor.as_secs_f64(),
            });
        }
        let dp = self.rt.dataplane.kollaps_mut().expect("checked above");
        dp.set_bus(bus);
        Ok(())
    }

    /// Enables per-host convergence recording (Kollaps backend only): every
    /// scored loop iteration appends each host's own worst gap to a series
    /// readable through [`Session::host_gap_series`]. Distributed agents
    /// ship their host's series to the coordinator, which reconstructs the
    /// global convergence metric as the per-iteration max across hosts.
    pub fn record_host_gaps(&mut self) -> Result<(), SessionError> {
        self.kollaps_or_unsupported("per-host convergence recording")?;
        self.rt
            .dataplane
            .kollaps_mut()
            .expect("checked above")
            .record_host_gaps();
        Ok(())
    }

    /// The recorded per-host convergence gap series, one per host in
    /// host-id order. Empty unless [`Session::record_host_gaps`] enabled
    /// recording (or on a non-Kollaps backend).
    pub fn host_gap_series(&self) -> Vec<Vec<f64>> {
        self.rt
            .dataplane
            .kollaps()
            .map(|dp| dp.host_gap_series().to_vec())
            .unwrap_or_default()
    }

    /// Number of containers placed on physical host `host` (Kollaps
    /// backend only).
    pub fn containers_on_host(&self, host: u32) -> Option<usize> {
        let dp = self.rt.dataplane.kollaps()?;
        dp.managers()
            .get(host as usize)
            .map(|m| m.container_count())
    }

    // ------------------------------------------------------------------
    // Live steering
    // ------------------------------------------------------------------

    /// Injects a workload into the running session. The workload is
    /// validated against the scenario topology exactly like a declared
    /// one; its start is clamped forward to the current clock (an injected
    /// workload cannot start in the past), and — unless the scenario set
    /// an explicit duration cap — the experiment end grows to cover its
    /// window.
    pub fn inject_workload(&mut self, workload: Workload) -> Result<(), SessionError> {
        let unknown =
            crate::unknown_workload_names(&self.topology, std::slice::from_ref(&workload));
        if !unknown.is_empty() {
            return Err(SessionError::Invalid(ScenarioError::UnknownNodes {
                names: unknown,
            }));
        }
        crate::validate_workload(&self.topology, &workload)?;
        let mut resolved =
            crate::resolve_workload(&self.topology, &self.rt.dataplane, workload, SimTime::MAX)?;
        resolved.start = resolved.start.max(self.cursor);
        resolved.end = resolved.start + resolved.workload.effective_duration();
        if self.duration_capped {
            // A capped timeline clips the window; a window clipped to
            // nothing would register a phantom flow that can never run.
            if resolved.start >= self.total_end {
                return Err(SessionError::Invalid(ScenarioError::InvalidWorkload {
                    reason: format!(
                        "injected workload window starts at {:.3}s, at or beyond the \
                         scenario duration cap of {:.3}s",
                        resolved.start.as_secs_f64(),
                        self.total_end.as_secs_f64()
                    ),
                }));
            }
            resolved.end = resolved.end.min(self.total_end);
        } else if resolved.end > self.total_end {
            self.total_end = resolved.end;
            self.add_boundary(resolved.end);
        }
        let idx = self.workloads.len();
        let state = runner::register_workload(&mut self.rt, &mut self.owner, idx, &resolved);
        self.add_boundary(resolved.start);
        self.add_boundary(resolved.end);
        self.recorder.instant(
            0,
            "inject_workload",
            &[("start_s", resolved.start.as_secs_f64())],
        );
        if !self.sinks.is_empty() {
            let event = TelemetryEvent::WorkloadInjected {
                at_s: self.cursor.as_secs_f64(),
                workload: resolved.workload.label().to_string(),
                start_s: resolved.start.as_secs_f64(),
            };
            self.emit(&event);
        }
        self.workloads.push(resolved);
        self.states.push(state);
        self.reports.push(None);
        self.final_progress.push(None);
        self.started_emitted.push(false);
        Ok(())
    }

    /// Injects a dynamic topology event into the running session. The
    /// event must lie strictly in the future of the clock, its node names
    /// are validated against the topology *as evolved* at that time, and
    /// the precomputed snapshot timeline is extended **incrementally** —
    /// an injected event produces exactly the snapshots (and therefore
    /// exactly the emulation) the same event declared up front would have.
    pub fn inject_event(&mut self, event: DynamicEvent) -> Result<(), SessionError> {
        let mut schedule = EventSchedule::new();
        schedule.push(event);
        self.inject_schedule(schedule, true)?;
        Ok(())
    }

    /// Expands a churn generator against the topology as evolved at the
    /// current clock and injects the resulting events. **Every** generated
    /// event must lie in the clock's future (give the spec a
    /// [`Churn::start`] at or after the clock): a generator's events are
    /// causally paired (partition/heal, link down/up), so silently
    /// dropping a past half would corrupt the topology — a half-past
    /// schedule is rejected whole with [`SessionError::PastInjection`].
    /// Returns how many events were injected.
    pub fn inject_churn(&mut self, churn: Churn) -> Result<usize, SessionError> {
        let now = self.cursor.saturating_since(SimTime::ZERO);
        let evolved = self
            .kollaps_or_unsupported("churn injection")?
            .timeline()
            .topology_at(now);
        let generated = churn
            .generate(&evolved)
            .map_err(|e| SessionError::Invalid(e.into()))?;
        if generated.is_empty() {
            return Ok(0);
        }
        let injected = generated.len();
        // The generator already validated names; `inject_schedule` rejects
        // the whole batch if any event lies at or before the clock.
        self.inject_schedule(generated, false)?;
        Ok(injected)
    }

    /// Shared injection path: checks the backend, rejects past times,
    /// optionally validates node names, extends the timeline.
    fn inject_schedule(
        &mut self,
        schedule: EventSchedule,
        validate_names: bool,
    ) -> Result<(), SessionError> {
        self.kollaps_or_unsupported("dynamic event injection")?;
        for event in schedule.events() {
            if SimTime::ZERO + event.at <= self.cursor {
                return Err(SessionError::PastInjection {
                    at_s: event.at.as_secs_f64(),
                    now_s: self.cursor.as_secs_f64(),
                });
            }
        }
        if validate_names {
            let dp = self.rt.dataplane.kollaps().expect("checked above");
            for event in schedule.events() {
                let topo = dp.timeline().topology_at(event.at);
                validate_action(&topo, &event.action)?;
            }
        }
        let now = self.cursor;
        let dp = self.rt.dataplane.kollaps_mut().expect("checked above");
        let derived = dp.extend_timeline(now, &schedule);
        self.recorder.instant(
            0,
            "inject_events",
            &[
                ("events", schedule.len() as f64),
                ("deltas_derived", derived as f64),
            ],
        );
        if !self.sinks.is_empty() {
            let event = TelemetryEvent::EventsInjected {
                at_s: now.as_secs_f64(),
                events: schedule.len(),
                deltas_derived: derived,
            };
            self.emit(&event);
        }
        Ok(())
    }

    fn kollaps_or_unsupported(
        &self,
        what: &str,
    ) -> Result<&kollaps_core::emulation::KollapsDataplane, SessionError> {
        self.rt.dataplane.kollaps().ok_or_else(|| {
            SessionError::Invalid(ScenarioError::UnsupportedBackend {
                backend: self.backend_name.clone(),
                reason: format!("{what} requires the Kollaps emulation manager"),
            })
        })
    }

    fn add_boundary(&mut self, t: SimTime) {
        if let Err(i) = self.boundaries.binary_search(&t) {
            self.boundaries.insert(i, t);
        }
    }

    /// Assembles the final [`Report`] (the tail of the old one-shot
    /// runner, verbatim).
    fn build_report(&mut self) -> Report {
        let links = runner::link_reports(&self.rt, &self.demands);
        let metadata_bytes = self.rt.dataplane.metadata_network_bytes();
        let metadata_per_host = self.metadata_per_host();
        let convergence = self.rt.dataplane.convergence().map(|c| ConvergenceReport {
            last_gap: c.last_gap,
            max_gap: c.max_gap,
            mean_gap: c.mean_gap(),
        });
        let phase_timing = self
            .rt
            .dataplane
            .kollaps()
            .and_then(|dp| dp.phase_timing())
            .map(|phases| {
                phases
                    .into_iter()
                    .map(|(phase, stats)| PhaseTimingReport {
                        phase: phase.to_string(),
                        total_micros: stats.total_micros,
                        mean_micros: stats.mean_micros(),
                        max_micros: stats.max_micros,
                        count: stats.count,
                    })
                    .collect()
            });
        let dynamics = self.rt.dataplane.dynamics().map(|d| DynamicsReport {
            precompute_micros: d.precompute_micros,
            snapshots_precomputed: d.snapshots_precomputed,
            snapshots_applied: d.snapshots_applied,
            events_applied: d.events_applied,
            mean_swap_cost: d.mean_swap_cost(),
            max_swap_cost: d.changed_paths_max,
            chains_touched: d.chains_touched_total,
            pair_count: d.pair_count,
        });
        Report {
            scenario: std::mem::take(&mut self.scenario_name),
            backend: std::mem::take(&mut self.backend_name),
            hosts: self.hosts,
            duration_s: self.total_end.as_secs_f64(),
            flows: std::mem::take(&mut self.reports)
                .into_iter()
                .flatten()
                .collect(),
            links,
            metadata_bytes,
            metadata_per_host,
            convergence,
            dynamics,
            flow_classes: self.aggregator.flow_classes(),
            phase_timing,
        }
    }
}

/// Validates the node names a dynamic action references against a concrete
/// topology ([`DynamicAction::NodeJoin`] legitimately names an absent
/// node, so it is exempt).
fn validate_action(topology: &Topology, action: &DynamicAction) -> Result<(), SessionError> {
    let check = |name: &String| -> Result<(), SessionError> {
        if topology.node_by_name(name).is_none() {
            return Err(SessionError::Invalid(ScenarioError::UnknownNode {
                name: name.clone(),
            }));
        }
        Ok(())
    };
    match action {
        DynamicAction::SetLinkProperties { orig, dest, .. }
        | DynamicAction::LinkJoin { orig, dest, .. }
        | DynamicAction::LinkLeave { orig, dest } => {
            check(orig)?;
            check(dest)
        }
        DynamicAction::NodeLeave { name } => check(name),
        DynamicAction::NodeJoin { .. } => Ok(()),
    }
}

// The session's own behavioural tests live here; the equivalence property
// (stepped session == one-shot run, churn included) is pinned in
// `tests/properties.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Scenario, Workload};
    use kollaps_topology::events::LinkChange;
    use kollaps_topology::generators;

    fn p2p(mbps: u64) -> Topology {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(mbps),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
        );
        topo
    }

    fn base(mbps: u64) -> Scenario {
        Scenario::from_topology(p2p(mbps)).workload(
            Workload::iperf_udp("client", "server", Bandwidth::from_mbps(10))
                .duration(SimDuration::from_secs(4)),
        )
    }

    #[test]
    fn stepping_advances_the_clock_and_finish_reports() {
        let mut session = base(50).session().expect("valid scenario");
        assert_eq!(session.clock(), SimTime::ZERO);
        assert_eq!(session.end(), SimTime::from_secs(4));
        let at = session.step(SimDuration::from_millis(1500)).unwrap();
        assert_eq!(at, SimTime::from_millis(1500));
        // Stepping past the end clips to it.
        let at = session.step(SimDuration::from_secs(60)).unwrap();
        assert_eq!(at, SimTime::from_secs(4));
        let report = session.finish();
        assert_eq!(report.flows.len(), 1);
        assert!(report.flows[0].goodput_mbps.unwrap() > 8.0);
    }

    #[test]
    fn pause_gates_the_clock_but_not_the_accessors() {
        let mut session = base(50).session().unwrap();
        session.run_until(SimTime::from_secs(1)).unwrap();
        session.pause();
        assert!(session.is_paused());
        assert_eq!(
            session.step(SimDuration::from_secs(1)).unwrap_err(),
            SessionError::Paused
        );
        // The live view still works while paused.
        let progress = session.flow_progress();
        assert_eq!(progress.len(), 1);
        assert_eq!(progress[0].status, FlowStatus::Running);
        assert!(progress[0].bytes > 0);
        session.resume();
        assert_eq!(
            session.step(SimDuration::from_secs(1)).unwrap(),
            SimTime::from_secs(2)
        );
    }

    #[test]
    fn live_accessors_track_the_run() {
        let mut session = base(20).session().unwrap();
        session.run_until(SimTime::from_secs(2)).unwrap();
        let loads = session.link_loads();
        assert!(!loads.is_empty(), "live link loads while traffic flows");
        assert!(loads.iter().any(|l| l.offered_mbps > 5.0), "{loads:?}");
        assert!(session.convergence().is_some());
        let report = session.finish();
        assert!(report.flows[0].goodput_mbps.is_some());
    }

    #[test]
    fn injected_workload_runs_and_extends_the_timeline_end() {
        let mut session = base(50).session().unwrap();
        session.run_until(SimTime::from_secs(2)).unwrap();
        session
            .inject_workload(
                Workload::ping("client", "server")
                    .count(10)
                    .interval(SimDuration::from_millis(100))
                    .duration(SimDuration::from_secs(3)),
            )
            .expect("valid injection");
        // The injected window starts at the clock (2 s) and runs 3 s; the
        // experiment end grows from 4 s to 5 s.
        assert_eq!(session.end(), SimTime::from_secs(5));
        let report = session.finish();
        assert_eq!(report.flows.len(), 2);
        let ping = report.flows_of("ping").next().unwrap();
        assert!((ping.start_s - 2.0).abs() < 1e-9, "{}", ping.start_s);
        assert_eq!(ping.rtt.as_ref().unwrap().replies, 10);
        assert!((report.duration_s - 5.0).abs() < 1e-9);
    }

    /// A sample interval finer than the dispatch step must still deliver
    /// every sample at its exact nominal time — and because samples are
    /// non-dispatching observation stops, enabling them must not change
    /// the experiment's results at all.
    #[test]
    fn fine_grained_sampling_delivers_every_sample_without_perturbing() {
        struct Counter(std::rc::Rc<std::cell::RefCell<Vec<f64>>>);
        impl Sink for Counter {
            fn on_sample(&mut self, sample: &Sample) {
                self.0.borrow_mut().push(sample.at_s);
            }
        }
        let times = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut session = base(50)
            .sample_interval(SimDuration::from_millis(25))
            .session()
            .unwrap();
        session.attach_sink(Box::new(Counter(std::rc::Rc::clone(&times))));
        let sampled = session.finish();
        let times = times.borrow();
        // 4 s at 25 ms: samples at 0.025, 0.050, ..., 4.000.
        assert_eq!(times.len(), 160, "{times:?}");
        assert!((times[0] - 0.025).abs() < 1e-9);
        assert!((times[159] - 4.0).abs() < 1e-9);
        // Observability is free: the sampled run reports exactly what the
        // unsampled one does. (Normalize the one wall-clock field in case
        // the base scenario ever grows a dynamics block.)
        let plain = base(50).run().unwrap();
        let normalized = |mut r: Report| {
            if let Some(d) = r.dynamics.as_mut() {
                d.precompute_micros = 0;
            }
            r.to_json_string()
        };
        assert_eq!(normalized(sampled), normalized(plain));
    }

    #[test]
    fn injection_beyond_a_duration_cap_is_rejected() {
        let mut session = base(50)
            .duration(SimDuration::from_secs(2))
            .session()
            .unwrap();
        session.run_until(SimTime::from_secs(2)).unwrap();
        let err = session
            .inject_workload(Workload::ping("client", "server"))
            .unwrap_err();
        assert!(
            matches!(
                err,
                SessionError::Invalid(ScenarioError::InvalidWorkload { .. })
            ),
            "{err}"
        );
        let report = session.finish();
        assert_eq!(report.flows.len(), 1, "no phantom flow was registered");
    }

    #[test]
    fn injected_workloads_are_validated() {
        let mut session = base(50).session().unwrap();
        let err = session
            .inject_workload(Workload::ping("client", "ghost"))
            .unwrap_err();
        assert!(
            matches!(
                &err,
                SessionError::Invalid(ScenarioError::UnknownNodes { names })
                    if names == &["ghost".to_string()]
            ),
            "{err}"
        );
        let err = session
            .inject_workload(Workload::iperf_tcp("client", "client"))
            .unwrap_err();
        assert!(
            matches!(
                err,
                SessionError::Invalid(ScenarioError::InvalidWorkload { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn injected_events_are_validated_and_change_the_emulation() {
        let scenario = Scenario::from_topology(p2p(100)).workload(
            Workload::ping("client", "server")
                .count(40)
                .interval(SimDuration::from_millis(100))
                .duration(SimDuration::from_secs(4)),
        );
        let mut session = scenario.session().unwrap();
        session.run_until(SimTime::from_secs(1)).unwrap();
        // Past times are rejected.
        let past = DynamicEvent {
            at: SimDuration::from_millis(500),
            action: DynamicAction::SetLinkProperties {
                orig: "client".into(),
                dest: "server".into(),
                change: LinkChange::default(),
            },
        };
        assert!(matches!(
            session.inject_event(past).unwrap_err(),
            SessionError::PastInjection { .. }
        ));
        // Unknown names are rejected.
        let ghost = DynamicEvent {
            at: SimDuration::from_secs(2),
            action: DynamicAction::LinkLeave {
                orig: "ghost".into(),
                dest: "server".into(),
            },
        };
        assert!(matches!(
            session.inject_event(ghost).unwrap_err(),
            SessionError::Invalid(ScenarioError::UnknownNode { .. })
        ));
        // A valid latency change applies mid-run.
        session
            .inject_event(DynamicEvent {
                at: SimDuration::from_secs(2),
                action: DynamicAction::SetLinkProperties {
                    orig: "client".into(),
                    dest: "server".into(),
                    change: LinkChange {
                        latency: Some(SimDuration::from_millis(60)),
                        ..LinkChange::default()
                    },
                },
            })
            .expect("valid injection");
        let report = session.finish();
        let rtt = report.flows[0].rtt.as_ref().unwrap();
        assert!(rtt.min_ms < 25.0, "pre-change RTT: {}", rtt.min_ms);
        assert!(rtt.max_ms > 100.0, "post-change RTT: {}", rtt.max_ms);
        assert_eq!(report.dynamics.unwrap().events_applied, 1);
    }

    #[test]
    fn injected_churn_expands_against_the_evolved_topology() {
        let (topo, _, _) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let scenario = Scenario::from_topology(topo).workload(
            Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(20))
                .duration(SimDuration::from_secs(8)),
        );
        let mut session = scenario.session().unwrap();
        session.run_until(SimTime::from_secs(1)).unwrap();
        let injected = session
            .inject_churn(
                Churn::partition(&["bridge-left"], &["bridge-right"])
                    .start(SimDuration::from_secs(3))
                    .heal_after(Some(SimDuration::from_secs(2))),
            )
            .expect("valid churn");
        assert_eq!(injected, 2, "partition + heal");
        // A spec whose schedule reaches into the past is rejected whole:
        // injecting only the future half (the heal without the partition)
        // would corrupt the topology.
        let err = session
            .inject_churn(
                Churn::partition(&["bridge-left"], &["bridge-right"])
                    .start(SimDuration::from_millis(500))
                    .heal_after(Some(SimDuration::from_secs(2))),
            )
            .unwrap_err();
        assert!(matches!(err, SessionError::PastInjection { .. }), "{err}");
        // A bogus spec is a typed error.
        let err = session
            .inject_churn(Churn::poisson_flaps(&[("ghost", "server-0")]))
            .unwrap_err();
        assert!(
            matches!(
                err,
                SessionError::Invalid(ScenarioError::InvalidChurn { .. })
            ),
            "{err}"
        );
        let report = session.finish();
        let dynamics = report.dynamics.expect("injected churn reports dynamics");
        assert_eq!(dynamics.events_applied, 2);
        // The partition bites: goodput lands well below the uninterrupted
        // 20 Mb/s.
        let mbps = report.flows[0].goodput_mbps.unwrap();
        assert!((12.0..=17.5).contains(&mbps), "goodput {mbps}");
    }

    #[test]
    fn baselines_reject_steering() {
        let mut session = Scenario::from_topology(p2p(50))
            .backend(Backend::ground_truth())
            .workload(Workload::ping("client", "server").count(3))
            .session()
            .unwrap();
        let err = session
            .inject_event(DynamicEvent {
                at: SimDuration::from_secs(1),
                action: DynamicAction::LinkLeave {
                    orig: "client".into(),
                    dest: "server".into(),
                },
            })
            .unwrap_err();
        assert!(
            matches!(
                err,
                SessionError::Invalid(ScenarioError::UnsupportedBackend { .. })
            ),
            "{err}"
        );
    }

    /// A sink recording everything, for the telemetry tests.
    #[derive(Default)]
    struct Recorder {
        events: std::rc::Rc<std::cell::RefCell<Vec<TelemetryEvent>>>,
        samples: std::rc::Rc<std::cell::RefCell<usize>>,
    }

    impl Sink for Recorder {
        fn on_event(&mut self, event: &TelemetryEvent) {
            self.events.borrow_mut().push(event.clone());
        }
        fn on_sample(&mut self, sample: &Sample) {
            assert!(!sample.flows.is_empty());
            *self.samples.borrow_mut() += 1;
        }
    }

    #[test]
    fn sinks_stream_typed_telemetry_and_samples() {
        let (topo, _, _) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let scenario = Scenario::from_topology(topo)
            .hosts(2)
            .sample_interval(SimDuration::from_secs(1))
            .churn(
                Churn::partition(&["bridge-left"], &["bridge-right"])
                    .start(SimDuration::from_secs(2))
                    .heal_after(Some(SimDuration::from_secs(1))),
            )
            .workload(
                Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(40))
                    .duration(SimDuration::from_secs(4)),
            )
            .workload(
                Workload::iperf_udp("client-1", "server-1", Bandwidth::from_mbps(40))
                    .duration(SimDuration::from_secs(4)),
            );
        let recorder = Recorder::default();
        let events = std::rc::Rc::clone(&recorder.events);
        let samples = std::rc::Rc::clone(&recorder.samples);
        let mut session = scenario.session().unwrap();
        session.attach_sink(Box::new(recorder));
        let report = session.finish();
        assert_eq!(report.flows.len(), 2);

        let events = events.borrow();
        let count = |pred: fn(&TelemetryEvent) -> bool| events.iter().filter(|e| pred(e)).count();
        assert_eq!(
            count(|e| matches!(e, TelemetryEvent::FlowStarted { .. })),
            2
        );
        assert_eq!(
            count(|e| matches!(e, TelemetryEvent::FlowFinished { .. })),
            2
        );
        assert_eq!(
            count(|e| matches!(e, TelemetryEvent::DynamicEventApplied { .. })),
            2,
            "partition + heal swaps: {events:?}"
        );
        // Two 40 Mb/s flows over a 50 Mb/s trunk: oversubscription onset
        // must be reported.
        assert!(
            count(|e| matches!(e, TelemetryEvent::OversubscriptionOnset { .. })) >= 1,
            "{events:?}"
        );
        // Two hosts exchange metadata over the physical network.
        assert!(
            count(|e| matches!(e, TelemetryEvent::MetadataDelivered { .. })) >= 1,
            "{events:?}"
        );
        assert_eq!(*samples.borrow(), 4, "one sample per second of a 4 s run");
    }
}
