//! Data-driven workload specifications.
//!
//! Workloads reference services by *name* (as declared in the experiment
//! description or by a generator), never by raw container address: the
//! scenario layer resolves names against the topology and rejects unknown
//! or non-service endpoints with a typed [`crate::ScenarioError`] before
//! anything runs.

use kollaps_sim::prelude::*;
use kollaps_transport::tcp::CongestionAlgorithm;

/// Default measurement window when a workload does not set one.
pub const DEFAULT_DURATION: SimDuration = SimDuration::from_secs(10);

/// What a single workload does, by service name.
#[derive(Debug, Clone)]
pub(crate) enum WorkloadKind {
    /// Long-lived bulk TCP flow, like `iperf3 -c`.
    IperfTcp {
        client: String,
        server: String,
        algorithm: CongestionAlgorithm,
    },
    /// Constant-bit-rate UDP flow, like `iperf3 -u -b <rate>`.
    IperfUdp {
        client: String,
        server: String,
        rate: Bandwidth,
    },
    /// ICMP echo probes, like `ping -c <count> -i <interval>`.
    Ping {
        src: String,
        dst: String,
        count: u64,
        interval: SimDuration,
    },
    /// wrk2-like persistent-connection HTTP load: the server streams
    /// `request` bytes per response over `connections` connections.
    Wrk2 {
        server: String,
        client: String,
        connections: usize,
        request: DataSize,
    },
    /// curl-like connection-per-request clients, each repeatedly fetching
    /// `request` bytes over a fresh connection.
    Curl {
        server: String,
        clients: Vec<String>,
        request: DataSize,
    },
    /// Closed-loop memcached/memtier clients: RTTs to the server are
    /// measured in-band with echo probes and fed to the closed-loop
    /// throughput model (paper Figure 4).
    Memcached {
        server: String,
        clients: Vec<String>,
        connections: usize,
    },
}

/// One workload of a scenario: a kind plus its activity window.
///
/// Construct with the named constructors ([`Workload::iperf_tcp`],
/// [`Workload::ping`], ...) and refine with the fluent setters. Setters that
/// do not apply to the constructed kind (e.g. [`Workload::count`] on an
/// iPerf flow) are ignored.
#[derive(Debug, Clone)]
pub struct Workload {
    pub(crate) kind: WorkloadKind,
    pub(crate) start: SimDuration,
    pub(crate) duration: Option<SimDuration>,
}

impl Workload {
    fn new(kind: WorkloadKind) -> Self {
        Workload {
            kind,
            start: SimDuration::ZERO,
            duration: None,
        }
    }

    /// A long-lived bulk TCP flow from `client` to `server` (CUBIC by
    /// default; see [`Workload::algorithm`]).
    pub fn iperf_tcp(client: &str, server: &str) -> Self {
        Workload::new(WorkloadKind::IperfTcp {
            client: client.to_string(),
            server: server.to_string(),
            algorithm: CongestionAlgorithm::Cubic,
        })
    }

    /// A constant-bit-rate UDP flow from `client` to `server`.
    pub fn iperf_udp(client: &str, server: &str, rate: Bandwidth) -> Self {
        Workload::new(WorkloadKind::IperfUdp {
            client: client.to_string(),
            server: server.to_string(),
            rate,
        })
    }

    /// Echo probes from `src` to `dst` (10 probes, 100 ms apart by
    /// default; see [`Workload::count`] and [`Workload::interval`]).
    pub fn ping(src: &str, dst: &str) -> Self {
        Workload::new(WorkloadKind::Ping {
            src: src.to_string(),
            dst: dst.to_string(),
            count: 10,
            interval: SimDuration::from_millis(100),
        })
    }

    /// A wrk2-like constant load of 64 KiB responses streamed from `server`
    /// to `client` over 20 persistent connections (see
    /// [`Workload::connections`] and [`Workload::request_size`]).
    pub fn wrk2(server: &str, client: &str) -> Self {
        Workload::new(WorkloadKind::Wrk2 {
            server: server.to_string(),
            client: client.to_string(),
            connections: 20,
            request: DataSize::from_kib(64),
        })
    }

    /// curl-like clients, each repeatedly fetching a 64 KiB response from
    /// `server` over a fresh connection per request.
    pub fn curl(server: &str, clients: &[&str]) -> Self {
        Workload::new(WorkloadKind::Curl {
            server: server.to_string(),
            clients: clients.iter().map(|c| c.to_string()).collect(),
            request: DataSize::from_kib(64),
        })
    }

    /// Closed-loop memcached clients against `server` (1 connection per
    /// client by default; see [`Workload::connections`]).
    pub fn memcached(server: &str, clients: &[&str]) -> Self {
        Workload::new(WorkloadKind::Memcached {
            server: server.to_string(),
            clients: clients.iter().map(|c| c.to_string()).collect(),
            connections: 1,
        })
    }

    /// Congestion-control algorithm for an iPerf TCP flow.
    pub fn algorithm(mut self, algorithm: CongestionAlgorithm) -> Self {
        if let WorkloadKind::IperfTcp { algorithm: a, .. } = &mut self.kind {
            *a = algorithm;
        }
        self
    }

    /// Number of echo probes for a ping workload.
    pub fn count(mut self, count: u64) -> Self {
        if let WorkloadKind::Ping { count: c, .. } = &mut self.kind {
            *c = count;
        }
        self
    }

    /// Interval between echo probes for a ping workload.
    pub fn interval(mut self, interval: SimDuration) -> Self {
        if let WorkloadKind::Ping { interval: i, .. } = &mut self.kind {
            *i = interval;
        }
        self
    }

    /// Number of connections for wrk2 / memcached workloads.
    pub fn connections(mut self, connections: usize) -> Self {
        match &mut self.kind {
            WorkloadKind::Wrk2 { connections: c, .. }
            | WorkloadKind::Memcached { connections: c, .. } => *c = connections,
            _ => {}
        }
        self
    }

    /// Response size for wrk2 / curl workloads.
    pub fn request_size(mut self, request: DataSize) -> Self {
        match &mut self.kind {
            WorkloadKind::Wrk2 { request: r, .. } | WorkloadKind::Curl { request: r, .. } => {
                *r = request
            }
            _ => {}
        }
        self
    }

    /// When the workload starts, relative to the scenario start.
    pub fn start(mut self, start: SimDuration) -> Self {
        self.start = start;
        self
    }

    /// How long the workload runs. Defaults to [`DEFAULT_DURATION`], except
    /// for pings, which default to `count × interval` plus a grace period
    /// for the last replies.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Stable label used in reports ("iperf-tcp", "ping", ...).
    pub fn label(&self) -> &'static str {
        match &self.kind {
            WorkloadKind::IperfTcp { .. } => "iperf-tcp",
            WorkloadKind::IperfUdp { .. } => "iperf-udp",
            WorkloadKind::Ping { .. } => "ping",
            WorkloadKind::Wrk2 { .. } => "wrk2",
            WorkloadKind::Curl { .. } => "curl",
            WorkloadKind::Memcached { .. } => "memcached",
        }
    }

    /// The effective measurement window of this workload.
    pub(crate) fn effective_duration(&self) -> SimDuration {
        if let Some(d) = self.duration {
            return d;
        }
        match &self.kind {
            WorkloadKind::Ping {
                count, interval, ..
            } => interval.mul_f64(*count as f64) + SimDuration::from_secs(5),
            _ => DEFAULT_DURATION,
        }
    }
}
