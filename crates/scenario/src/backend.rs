//! The unified backend selection: one construction-and-addressing
//! abstraction over the Kollaps collapsed emulation and every full-state
//! baseline.
//!
//! Before this layer existed each caller hand-wired the backend-specific
//! constructor (`KollapsDataplane::new`, `GroundTruthDataplane::new`, ...)
//! and the duplicated `address_of_index` helpers. A [`Backend`] value now
//! captures the *choice* of network under test, and [`AnyDataplane`] lets
//! the scenario runner drive whichever one was chosen through the common
//! [`Dataplane`] + [`Addressable`] traits.

use kollaps_baselines::maxinet::MaxinetConfig;
use kollaps_baselines::mininet::MininetConfig;
use kollaps_baselines::{
    GroundTruthDataplane, MaxinetDataplane, MininetDataplane, TrickleConfig, TrickleDataplane,
};
use kollaps_core::collapse::{Addressable, CollapsedTopology};
use kollaps_core::emulation::{EmulationConfig, KollapsDataplane};
use kollaps_core::runtime::{Dataplane, SendOutcome};
use kollaps_core::timeline::SnapshotTimeline;
use kollaps_netmodel::packet::Packet;
use kollaps_sim::prelude::*;
use kollaps_topology::events::EventSchedule;
use kollaps_topology::model::Topology;

use crate::error::ScenarioError;

/// Which network-under-test a scenario runs against.
#[derive(Debug, Clone)]
pub enum Backend {
    /// The Kollaps collapsed emulation (paper §3-4).
    Kollaps {
        /// Number of physical hosts containers are spread over.
        hosts: usize,
        /// Emulation tuning knobs.
        config: EmulationConfig,
    },
    /// Hop-by-hop simulation of the target topology ("bare metal").
    GroundTruth,
    /// Mininet-like single-host full-state emulator.
    Mininet(MininetConfig),
    /// Maxinet-like distributed emulator with an external controller.
    Maxinet(MaxinetConfig),
    /// Trickle-like userspace bandwidth shaper.
    Trickle(TrickleConfig),
}

impl Backend {
    /// The Kollaps emulation on a single physical host with the default
    /// configuration.
    pub fn kollaps() -> Self {
        Backend::kollaps_on(1)
    }

    /// The Kollaps emulation over `hosts` physical hosts.
    pub fn kollaps_on(hosts: usize) -> Self {
        Backend::Kollaps {
            hosts,
            config: EmulationConfig::default(),
        }
    }

    /// The Kollaps emulation with explicit tuning.
    pub fn kollaps_with(hosts: usize, config: EmulationConfig) -> Self {
        Backend::Kollaps { hosts, config }
    }

    /// The hop-by-hop ground-truth simulation.
    pub fn ground_truth() -> Self {
        Backend::GroundTruth
    }

    /// The Mininet model with default parameters.
    pub fn mininet() -> Self {
        Backend::Mininet(MininetConfig::default())
    }

    /// The Maxinet model with default parameters.
    pub fn maxinet() -> Self {
        Backend::Maxinet(MaxinetConfig::default())
    }

    /// The Maxinet model with explicit parameters.
    pub fn maxinet_with(config: MaxinetConfig) -> Self {
        Backend::Maxinet(config)
    }

    /// The Trickle model shaping to `config.target`.
    pub fn trickle(config: TrickleConfig) -> Self {
        Backend::Trickle(config)
    }

    /// Stable name used in reports and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Kollaps { .. } => "kollaps",
            Backend::GroundTruth => "ground-truth",
            Backend::Mininet(_) => "mininet",
            Backend::Maxinet(_) => "maxinet",
            Backend::Trickle(_) => "trickle",
        }
    }

    /// Number of physical hosts this backend models.
    pub fn hosts(&self) -> usize {
        match self {
            Backend::Kollaps { hosts, .. } => (*hosts).max(1),
            _ => 1,
        }
    }

    /// Checks that this backend can emulate `topology` with `schedule`.
    pub(crate) fn validate(
        &self,
        topology: &Topology,
        schedule: &EventSchedule,
    ) -> Result<(), ScenarioError> {
        if !matches!(self, Backend::Kollaps { .. }) && !schedule.is_empty() {
            return Err(ScenarioError::UnsupportedBackend {
                backend: self.name().to_string(),
                reason: "dynamic topology events require the Kollaps emulation manager".to_string(),
            });
        }
        if let Backend::Mininet(config) = self {
            if let Some(link) = topology
                .links()
                .iter()
                .find(|l| l.properties.bandwidth > config.max_shaped_bandwidth)
            {
                return Err(ScenarioError::UnsupportedBackend {
                    backend: self.name().to_string(),
                    reason: format!(
                        "link rate {} exceeds the {} shaping ceiling",
                        link.properties.bandwidth, config.max_shaped_bandwidth
                    ),
                });
            }
        }
        Ok(())
    }

    /// Builds the dataplane. `validate` must have passed. `placement` pins
    /// services to host indices (Kollaps only; the other backends model a
    /// single host). A `prepared` snapshot timeline — precomputed from the
    /// *same* topology and schedule, typically by a [`crate::Campaign`]
    /// sharing one precompute across variants — is cloned instead of
    /// re-deriving everything; the clone shares all snapshot and path data
    /// structurally behind `Arc`s.
    pub(crate) fn build(
        &self,
        topology: Topology,
        schedule: EventSchedule,
        placement: &std::collections::HashMap<kollaps_topology::model::NodeId, u32>,
        prepared: Option<&SnapshotTimeline>,
    ) -> AnyDataplane {
        match self {
            Backend::Kollaps { hosts, config } => {
                let timeline = match prepared {
                    Some(timeline) => timeline.clone(),
                    None => SnapshotTimeline::precompute_with(&topology, &schedule, config.threads),
                };
                AnyDataplane::Kollaps(Box::new(KollapsDataplane::with_prepared(
                    timeline,
                    (*hosts).max(1),
                    placement,
                    *config,
                )))
            }
            Backend::GroundTruth => {
                AnyDataplane::GroundTruth(Box::new(GroundTruthDataplane::new(&topology)))
            }
            Backend::Mininet(config) => {
                AnyDataplane::Mininet(Box::new(MininetDataplane::with_config(&topology, *config)))
            }
            Backend::Maxinet(config) => {
                AnyDataplane::Maxinet(Box::new(MaxinetDataplane::with_config(&topology, *config)))
            }
            Backend::Trickle(config) => {
                AnyDataplane::Trickle(Box::new(TrickleDataplane::new(&topology, *config)))
            }
        }
    }
}

/// Runtime-dispatched dataplane: whichever backend the scenario selected,
/// driven through the shared [`Dataplane`] and [`Addressable`] traits.
pub enum AnyDataplane {
    /// The Kollaps collapsed emulation.
    Kollaps(Box<KollapsDataplane>),
    /// The hop-by-hop ground truth.
    GroundTruth(Box<GroundTruthDataplane>),
    /// The Mininet model.
    Mininet(Box<MininetDataplane>),
    /// The Maxinet model.
    Maxinet(Box<MaxinetDataplane>),
    /// The Trickle model.
    Trickle(Box<TrickleDataplane>),
}

macro_rules! dispatch {
    ($self:expr, $dp:ident => $body:expr) => {
        match $self {
            AnyDataplane::Kollaps($dp) => $body,
            AnyDataplane::GroundTruth($dp) => $body,
            AnyDataplane::Mininet($dp) => $body,
            AnyDataplane::Maxinet($dp) => $body,
            AnyDataplane::Trickle($dp) => $body,
        }
    };
}

impl AnyDataplane {
    /// The Kollaps dataplane, when that is the selected backend (the live
    /// session's steering and telemetry taps are Kollaps-specific).
    pub(crate) fn kollaps(&self) -> Option<&KollapsDataplane> {
        match self {
            AnyDataplane::Kollaps(dp) => Some(dp),
            _ => None,
        }
    }

    /// Mutable access to the Kollaps dataplane, for timeline extension.
    pub(crate) fn kollaps_mut(&mut self) -> Option<&mut KollapsDataplane> {
        match self {
            AnyDataplane::Kollaps(dp) => Some(dp),
            _ => None,
        }
    }

    /// Live offered load per original link as `(link, offered Mb/s,
    /// capacity Mb/s)`, from the managers' most recent loop iteration
    /// (Kollaps only; empty otherwise).
    pub(crate) fn live_link_usage(&self) -> Vec<(u32, f64, f64)> {
        let AnyDataplane::Kollaps(dp) = self else {
            return Vec::new();
        };
        dp.link_usage()
            .into_iter()
            .map(|(link, offered)| {
                let capacity = dp
                    .collapsed()
                    .link_capacity(link)
                    .map(|b| b.as_mbps())
                    .unwrap_or(f64::INFINITY);
                (link.0, offered.as_mbps(), capacity)
            })
            .collect()
    }

    /// Total metadata bytes put on the physical network, when the backend
    /// has an emulation manager exchanging metadata (Kollaps only).
    pub fn metadata_network_bytes(&self) -> Option<u64> {
        match self {
            AnyDataplane::Kollaps(dp) => Some(dp.metadata_accounting().total_network_bytes()),
            _ => None,
        }
    }

    /// Per-host metadata traffic `(host, sent, received)` in bytes on the
    /// physical network, in host-id order (Kollaps only; empty otherwise).
    pub fn metadata_per_host(&self) -> Vec<(u32, u64, u64)> {
        let AnyDataplane::Kollaps(dp) = self else {
            return Vec::new();
        };
        let accounting = dp.metadata_accounting();
        (0..dp.host_count() as u32)
            .map(|h| {
                let host = kollaps_metadata::bus::HostId(h);
                (
                    h,
                    accounting.sent_bytes.get(&host).copied().unwrap_or(0),
                    accounting.received_bytes.get(&host).copied().unwrap_or(0),
                )
            })
            .collect()
    }

    /// How close the per-host Emulation Managers tracked the omniscient
    /// allocation (Kollaps only).
    pub fn convergence(&self) -> Option<kollaps_core::emulation::ConvergenceStats> {
        match self {
            AnyDataplane::Kollaps(dp) => Some(dp.convergence()),
            _ => None,
        }
    }

    /// Dynamics-engine accounting (Kollaps only; `None` when the scenario
    /// had no dynamic events to precompute).
    pub fn dynamics(&self) -> Option<kollaps_core::emulation::DynamicsStats> {
        match self {
            AnyDataplane::Kollaps(dp) if !dp.timeline().is_empty() => Some(dp.dynamics()),
            _ => None,
        }
    }
}

impl Addressable for AnyDataplane {
    fn collapsed(&self) -> &CollapsedTopology {
        dispatch!(self, dp => dp.collapsed())
    }
}

impl Dataplane for AnyDataplane {
    fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome {
        dispatch!(self, dp => dp.send(now, packet))
    }

    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        dispatch!(self, dp => dp.next_wakeup(now))
    }

    fn deliver(&mut self, now: SimTime) -> Vec<Packet> {
        dispatch!(self, dp => dp.deliver(now))
    }

    fn tick(&mut self, now: SimTime) -> Option<SimTime> {
        dispatch!(self, dp => dp.tick(now))
    }
}
