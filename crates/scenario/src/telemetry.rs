//! Streaming telemetry of a live [`crate::Session`].
//!
//! A running session narrates itself through two channels: discrete
//! [`TelemetryEvent`]s (a flow opened its window, a precomputed topology
//! change was swapped in, a link went oversubscribed, metadata hit the
//! physical network) and periodic [`Sample`]s (a point-in-time view of
//! every flow's progress, the live link loads and the convergence gap).
//! Both are delivered to every attached [`Sink`] as they happen — at the
//! session's event-dispatch granularity, not after the run.

use crate::report::FlowReport;

/// Where a workload is in its lifecycle, as seen by a live session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStatus {
    /// The activity window has not opened yet.
    Pending,
    /// The window is open; traffic is (potentially) flowing.
    Running,
    /// The window closed and the workload was finalized into its
    /// [`FlowReport`].
    Finished,
}

/// Point-in-time progress of one workload of a live session.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowProgress {
    /// Workload label ("iperf-tcp", "ping", ...).
    pub workload: String,
    /// Name of the initiating node (traffic sink for HTTP-style workloads).
    pub client: String,
    /// Name of the serving node.
    pub server: String,
    /// Lifecycle phase.
    pub status: FlowStatus,
    /// Window start, seconds since scenario start.
    pub start_s: f64,
    /// Window end, seconds since scenario start.
    pub end_s: f64,
    /// Receiver-side payload bytes delivered so far (bulk workloads).
    pub bytes: u64,
    /// Echo replies received so far (ping and memcached probes).
    pub replies: usize,
    /// Requests completed so far (wrk2/curl workloads).
    pub requests: u64,
}

/// Live offered load on one original-topology link, as measured by the
/// emulation managers in their most recent loop iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoad {
    /// The link id in the original (pre-collapse) topology.
    pub link: u32,
    /// Configured capacity.
    pub capacity_mbps: f64,
    /// Offered load measured in the last emulation loop.
    pub offered_mbps: f64,
    /// `offered / capacity` (0 when the capacity is unlimited).
    pub utilization: f64,
}

/// A periodic point-in-time view of the whole session, delivered to
/// [`Sink::on_sample`] every `sample_interval`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Virtual time of the sample, seconds since scenario start.
    pub at_s: f64,
    /// Progress of every workload, in declaration order.
    pub flows: Vec<FlowProgress>,
    /// Live link loads (Kollaps backend only; empty otherwise).
    pub links: Vec<LinkLoad>,
    /// The decentralized enforcement's most recent convergence gap
    /// (Kollaps backend only).
    pub convergence_gap: Option<f64>,
}

/// A discrete, typed occurrence inside a running session.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A workload's activity window opened.
    FlowStarted {
        /// When the window opened, seconds since scenario start.
        at_s: f64,
        /// Workload label.
        workload: String,
        /// Initiating node name.
        client: String,
        /// Serving node name.
        server: String,
    },
    /// A workload's window closed and it was finalized.
    FlowFinished {
        /// When the window closed, seconds since scenario start.
        at_s: f64,
        /// The finalized per-flow report.
        report: FlowReport,
    },
    /// A precomputed dynamic topology change was swapped in.
    DynamicEventApplied {
        /// Scheduled change time, seconds since scenario start.
        at_s: f64,
        /// Schedule events the swap covered.
        events: usize,
        /// Swap cost: collapsed paths the change touched.
        changed_paths: usize,
    },
    /// A link entered oversubscription: the managers measured more offered
    /// load than its capacity in their last loop iteration.
    OversubscriptionOnset {
        /// Detection time, seconds since scenario start.
        at_s: f64,
        /// The oversubscribed link's id in the original topology.
        link: u32,
    },
    /// A previously oversubscribed link dropped back under its capacity.
    OversubscriptionCleared {
        /// Detection time, seconds since scenario start.
        at_s: f64,
        /// The recovered link's id.
        link: u32,
    },
    /// Emulation managers put metadata on the physical network since the
    /// last dispatch round.
    MetadataDelivered {
        /// Detection time, seconds since scenario start.
        at_s: f64,
        /// Metadata bytes added to the physical network.
        bytes: u64,
    },
    /// A workload was injected into the running session.
    WorkloadInjected {
        /// Injection time, seconds since scenario start.
        at_s: f64,
        /// Workload label.
        workload: String,
        /// Effective window start, seconds since scenario start.
        start_s: f64,
    },
    /// Dynamic events were injected into the running session (directly or
    /// through a churn generator) and the snapshot timeline was extended.
    EventsInjected {
        /// Injection time, seconds since scenario start.
        at_s: f64,
        /// Number of schedule events injected.
        events: usize,
        /// Number of timeline deltas derived by the incremental extension.
        deltas_derived: usize,
    },
}

/// A consumer of live session telemetry. Implement whichever callbacks you
/// care about; both default to no-ops. Sinks are attached with
/// [`crate::Session::attach_sink`] and are invoked synchronously at the
/// session's event-dispatch points, in attachment order.
pub trait Sink {
    /// A discrete occurrence (flow lifecycle, topology change,
    /// oversubscription, metadata traffic, injection).
    fn on_event(&mut self, event: &TelemetryEvent) {
        let _ = event;
    }

    /// A periodic full-session sample (only delivered when the scenario
    /// set a [`crate::Scenario::sample_interval`]).
    fn on_sample(&mut self, sample: &Sample) {
        let _ = sample;
    }
}
