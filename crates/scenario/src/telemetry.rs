//! Streaming telemetry of a live [`crate::Session`].
//!
//! A running session narrates itself through two channels: discrete
//! [`TelemetryEvent`]s (a flow opened its window, a precomputed topology
//! change was swapped in, a link went oversubscribed, metadata hit the
//! physical network) and periodic [`Sample`]s (a point-in-time view of
//! every flow's progress, the live link loads and the convergence gap).
//! Both are delivered to every attached [`Sink`] as they happen — at the
//! session's event-dispatch granularity, not after the run.
//!
//! The [`Aggregator`] is the production-shape consumer of that stream: it
//! folds every finalized flow into bounded per-flow-class accumulators
//! (ring-buffer samples + percentile histograms) and exports
//! latency/goodput p50/p90/p99 per class. Every [`crate::Session`] owns
//! one and surfaces its output as [`crate::Report::flow_classes`]; attach
//! your own instance as a [`Sink`] to aggregate a custom window.

use std::collections::BTreeMap;

use kollaps_sim::stats::{Histogram, SampleSet};

use crate::report::{FlowClassReport, FlowReport, PercentileStats};

/// Where a workload is in its lifecycle, as seen by a live session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowStatus {
    /// The activity window has not opened yet.
    Pending,
    /// The window is open; traffic is (potentially) flowing.
    Running,
    /// The window closed and the workload was finalized into its
    /// [`FlowReport`].
    Finished,
}

/// Point-in-time progress of one workload of a live session.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowProgress {
    /// Workload label ("iperf-tcp", "ping", ...).
    pub workload: String,
    /// Name of the initiating node (traffic sink for HTTP-style workloads).
    pub client: String,
    /// Name of the serving node.
    pub server: String,
    /// Lifecycle phase.
    pub status: FlowStatus,
    /// Window start, seconds since scenario start.
    pub start_s: f64,
    /// Window end, seconds since scenario start.
    pub end_s: f64,
    /// Receiver-side payload bytes delivered so far (bulk workloads).
    pub bytes: u64,
    /// Echo replies received so far (ping and memcached probes).
    pub replies: usize,
    /// Requests completed so far (wrk2/curl workloads).
    pub requests: u64,
}

/// Live offered load on one original-topology link, as measured by the
/// emulation managers in their most recent loop iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLoad {
    /// The link id in the original (pre-collapse) topology.
    pub link: u32,
    /// Configured capacity.
    pub capacity_mbps: f64,
    /// Offered load measured in the last emulation loop.
    pub offered_mbps: f64,
    /// `offered / capacity` (0 when the capacity is unlimited).
    pub utilization: f64,
}

/// A periodic point-in-time view of the whole session, delivered to
/// [`Sink::on_sample`] every `sample_interval`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Virtual time of the sample, seconds since scenario start.
    pub at_s: f64,
    /// Progress of every workload, in declaration order.
    pub flows: Vec<FlowProgress>,
    /// Live link loads (Kollaps backend only; empty otherwise).
    pub links: Vec<LinkLoad>,
    /// The decentralized enforcement's most recent convergence gap
    /// (Kollaps backend only).
    pub convergence_gap: Option<f64>,
    /// Cumulative wall-clock microseconds the emulation managers have
    /// spent inside the bandwidth-sharing solver so far (Kollaps backend
    /// only; diagnostic — never fed back into the simulation).
    pub allocation_micros: Option<u64>,
    /// Fraction of allocator calls answered entirely from the cached
    /// previous result so far (Kollaps backend only).
    pub allocator_fast_hit_rate: Option<f64>,
}

/// A discrete, typed occurrence inside a running session.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A workload's activity window opened.
    FlowStarted {
        /// When the window opened, seconds since scenario start.
        at_s: f64,
        /// Workload label.
        workload: String,
        /// Initiating node name.
        client: String,
        /// Serving node name.
        server: String,
    },
    /// A workload's window closed and it was finalized.
    FlowFinished {
        /// When the window closed, seconds since scenario start.
        at_s: f64,
        /// The finalized per-flow report (boxed: it dwarfs every other
        /// variant).
        report: Box<FlowReport>,
    },
    /// A precomputed dynamic topology change was swapped in.
    DynamicEventApplied {
        /// Scheduled change time, seconds since scenario start.
        at_s: f64,
        /// Schedule events the swap covered.
        events: usize,
        /// Swap cost: collapsed paths the change touched.
        changed_paths: usize,
    },
    /// A link entered oversubscription: the managers measured more offered
    /// load than its capacity in their last loop iteration.
    OversubscriptionOnset {
        /// Detection time, seconds since scenario start.
        at_s: f64,
        /// The oversubscribed link's id in the original topology.
        link: u32,
    },
    /// A previously oversubscribed link dropped back under its capacity.
    OversubscriptionCleared {
        /// Detection time, seconds since scenario start.
        at_s: f64,
        /// The recovered link's id.
        link: u32,
    },
    /// Emulation managers put metadata on the physical network since the
    /// last dispatch round.
    MetadataDelivered {
        /// Detection time, seconds since scenario start.
        at_s: f64,
        /// Metadata bytes added to the physical network.
        bytes: u64,
    },
    /// A workload was injected into the running session.
    WorkloadInjected {
        /// Injection time, seconds since scenario start.
        at_s: f64,
        /// Workload label.
        workload: String,
        /// Effective window start, seconds since scenario start.
        start_s: f64,
    },
    /// Dynamic events were injected into the running session (directly or
    /// through a churn generator) and the snapshot timeline was extended.
    EventsInjected {
        /// Injection time, seconds since scenario start.
        at_s: f64,
        /// Number of schedule events injected.
        events: usize,
        /// Number of timeline deltas derived by the incremental extension.
        deltas_derived: usize,
    },
}

/// Retained samples per aggregated metric before the ring wraps (beyond
/// it, percentiles fall back to the histogram approximation).
const RING_CAPACITY: usize = 4096;

/// Histogram shape for latency samples: 0.25 ms buckets up to 2.5 s.
const LATENCY_BUCKET_MS: f64 = 0.25;
const LATENCY_UPPER_MS: f64 = 2_500.0;

/// Histogram shape for goodput samples: 1 Mb/s buckets up to 20 Gb/s.
const GOODPUT_BUCKET_MBPS: f64 = 1.0;
const GOODPUT_UPPER_MBPS: f64 = 20_000.0;

/// One aggregated metric: a ring buffer of recent samples (exact
/// percentiles until it wraps) backed by a fixed-bucket histogram (bounded
/// approximation afterwards). Mean/min/max/count stay exact over the whole
/// lifetime either way.
#[derive(Debug, Clone)]
struct MetricAccumulator {
    ring: SampleSet,
    histogram: Histogram,
}

impl MetricAccumulator {
    fn new(bucket_width: f64, upper_bound: f64) -> Self {
        MetricAccumulator {
            ring: SampleSet::new(RING_CAPACITY),
            histogram: Histogram::new(bucket_width, upper_bound),
        }
    }

    fn record(&mut self, value: f64) {
        self.ring.record(value);
        self.histogram.record(value);
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.ring.dropped() == 0 {
            self.ring.percentile(p)
        } else {
            self.histogram.percentile(p)
        }
    }

    fn stats(&self) -> Option<PercentileStats> {
        if self.ring.is_empty() {
            return None;
        }
        Some(PercentileStats {
            mean: self.ring.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            min: self.ring.min(),
            max: self.ring.max(),
            samples: self.ring.total_count(),
        })
    }
}

/// Accumulated telemetry of one flow class (one workload label).
#[derive(Debug, Clone)]
struct ClassAccumulator {
    flows: usize,
    latency_ms: MetricAccumulator,
    goodput_mbps: MetricAccumulator,
}

impl ClassAccumulator {
    fn new() -> Self {
        ClassAccumulator {
            flows: 0,
            latency_ms: MetricAccumulator::new(LATENCY_BUCKET_MS, LATENCY_UPPER_MS),
            goodput_mbps: MetricAccumulator::new(GOODPUT_BUCKET_MBPS, GOODPUT_UPPER_MBPS),
        }
    }
}

/// The aggregating sink: folds finalized flows into bounded per-flow-class
/// accumulators and exports latency/goodput percentiles.
///
/// Flows are classed by workload label, so memory scales with the number
/// of *workload kinds*, not the number of flows — the aggregation contract
/// that keeps reports bounded when a scenario models millions of logical
/// users. Latency samples come from every RTT reply (ping, memcached
/// probes) and every per-request completion latency (wrk2, curl); goodput
/// samples are each bulk flow's per-second delivery windows.
///
/// Every [`crate::Session`] owns one internally and exports it as
/// [`crate::Report::flow_classes`]; the type is public so custom tooling
/// can attach an independent instance via [`crate::Session::attach_sink`]
/// (it observes [`TelemetryEvent::FlowFinished`] only, so its output is
/// independent of whether periodic sampling is enabled).
#[derive(Debug, Clone, Default)]
pub struct Aggregator {
    classes: BTreeMap<String, ClassAccumulator>,
}

impl Aggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Aggregator::default()
    }

    /// Folds one finalized flow into its class accumulator.
    pub fn observe_flow(&mut self, report: &FlowReport) {
        let class = self
            .classes
            .entry(report.workload.clone())
            .or_insert_with(ClassAccumulator::new);
        class.flows += 1;
        if let Some(rtt) = &report.rtt {
            for &sample in &rtt.samples_ms {
                class.latency_ms.record(sample);
            }
        }
        if let Some(http) = &report.http {
            for &sample in &http.samples_ms {
                class.latency_ms.record(sample);
            }
        }
        if !report.per_second_mbps.is_empty() {
            for &mbps in &report.per_second_mbps {
                class.goodput_mbps.record(mbps);
            }
        } else if let Some(mbps) = report.goodput_mbps {
            // Sub-second windows produce no per-second series; the
            // window-average goodput is the one sample there is.
            class.goodput_mbps.record(mbps);
        }
    }

    /// Flows folded in so far, across all classes.
    pub fn flows_observed(&self) -> usize {
        self.classes.values().map(|c| c.flows).sum()
    }

    /// Exports the per-class percentile reports, sorted by class label.
    pub fn flow_classes(&self) -> Vec<FlowClassReport> {
        self.classes
            .iter()
            .map(|(class, acc)| FlowClassReport {
                class: class.clone(),
                flows: acc.flows,
                latency_ms: acc.latency_ms.stats(),
                goodput_mbps: acc.goodput_mbps.stats(),
            })
            .collect()
    }
}

impl Sink for Aggregator {
    fn on_event(&mut self, event: &TelemetryEvent) {
        if let TelemetryEvent::FlowFinished { report, .. } = event {
            self.observe_flow(report);
        }
    }
}

/// A consumer of live session telemetry. Implement whichever callbacks you
/// care about; both default to no-ops. Sinks are attached with
/// [`crate::Session::attach_sink`] and are invoked synchronously at the
/// session's event-dispatch points, in attachment order.
pub trait Sink {
    /// A discrete occurrence (flow lifecycle, topology change,
    /// oversubscription, metadata traffic, injection).
    fn on_event(&mut self, event: &TelemetryEvent) {
        let _ = event;
    }

    /// A periodic full-session sample (only delivered when the scenario
    /// set a [`crate::Scenario::sample_interval`]).
    fn on_sample(&mut self, sample: &Sample) {
        let _ = sample;
    }
}
