//! The scenario **wire spec**: a self-contained JSON form of a scenario
//! that the distributed runtime ships to its agent processes.
//!
//! Agents must rebuild a byte-identical deterministic session from the
//! spec alone, so [`Scenario::to_spec`] serializes the *expanded*
//! composition: the topology source is resolved, churn generators are
//! folded into the sorted event schedule (their seeds already consumed),
//! and the `hosts`/`metadata_delay` deployment overrides are applied onto
//! the embedded [`EmulationConfig`]. Decoding replays the topology
//! builders in node/link-id order — ids are dense and monotonic, so the
//! rebuilt [`Topology`] is equal to the expanded one — and reconstructs a
//! plain [`Scenario`] whose `run()` is indistinguishable from the
//! original's. The snapshot timeline is *not* shipped: agents recompute it
//! deterministically from the same topology and schedule.

use serde_json::{self, Value};

use kollaps_core::emulation::EmulationConfig;
use kollaps_sim::time::SimDuration;
use kollaps_sim::units::{Bandwidth, DataSize};
use kollaps_topology::events::{DynamicAction, DynamicEvent, EventSchedule, LinkChange};
use kollaps_topology::model::{LinkProperties, NodeId, NodeKind, Topology};
use kollaps_transport::tcp::CongestionAlgorithm;

use crate::workload::{Workload, WorkloadKind};
use crate::{Backend, Scenario, ScenarioError, TopologySource};

/// Version tag carried by every spec; decoding rejects anything else.
pub const SPEC_VERSION: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn spec_err(reason: impl Into<String>) -> ScenarioError {
    ScenarioError::Spec {
        reason: reason.into(),
    }
}

fn field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, ScenarioError> {
    value
        .get(key)
        .ok_or_else(|| spec_err(format!("missing field `{key}`")))
}

fn req_u64(value: &Value, key: &str) -> Result<u64, ScenarioError> {
    field(value, key)?
        .as_u64()
        .ok_or_else(|| spec_err(format!("field `{key}` must be an unsigned integer")))
}

fn req_f64(value: &Value, key: &str) -> Result<f64, ScenarioError> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| spec_err(format!("field `{key}` must be a number")))
}

fn req_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, ScenarioError> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| spec_err(format!("field `{key}` must be a string")))
}

fn req_bool(value: &Value, key: &str) -> Result<bool, ScenarioError> {
    match field(value, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(spec_err(format!("field `{key}` must be a boolean"))),
    }
}

fn req_array<'a>(value: &'a Value, key: &str) -> Result<&'a [Value], ScenarioError> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| spec_err(format!("field `{key}` must be an array")))
}

/// `null` (or a missing key) reads as `None`.
fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, ScenarioError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| spec_err(format!("field `{key}` must be an unsigned integer or null"))),
    }
}

fn opt_bool(value: &Value, key: &str) -> Result<Option<bool>, ScenarioError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(spec_err(format!("field `{key}` must be a boolean or null"))),
    }
}

fn opt_f64(value: &Value, key: &str) -> Result<Option<f64>, ScenarioError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| spec_err(format!("field `{key}` must be a number or null"))),
    }
}

fn encode_change(change: &LinkChange) -> Value {
    obj(vec![
        ("latency_ns", change.latency.map(|d| d.as_nanos()).into()),
        ("jitter_ns", change.jitter.map(|d| d.as_nanos()).into()),
        ("up_bps", change.up.map(|b| b.as_bps()).into()),
        ("down_bps", change.down.map(|b| b.as_bps()).into()),
        ("loss", change.loss.into()),
    ])
}

fn decode_change(value: &Value) -> Result<LinkChange, ScenarioError> {
    Ok(LinkChange {
        latency: opt_u64(value, "latency_ns")?.map(SimDuration::from_nanos),
        jitter: opt_u64(value, "jitter_ns")?.map(SimDuration::from_nanos),
        up: opt_u64(value, "up_bps")?.map(Bandwidth::from_bps),
        down: opt_u64(value, "down_bps")?.map(Bandwidth::from_bps),
        loss: opt_f64(value, "loss")?,
    })
}

fn encode_event(event: &DynamicEvent) -> Value {
    let mut fields: Vec<(&str, Value)> = vec![("at_ns", event.at.as_nanos().into())];
    match &event.action {
        DynamicAction::SetLinkProperties { orig, dest, change } => {
            fields.push(("action", "set_link".into()));
            fields.push(("orig", orig.as_str().into()));
            fields.push(("dest", dest.as_str().into()));
            fields.push(("change", encode_change(change)));
        }
        DynamicAction::LinkJoin { orig, dest, change } => {
            fields.push(("action", "link_join".into()));
            fields.push(("orig", orig.as_str().into()));
            fields.push(("dest", dest.as_str().into()));
            fields.push(("change", encode_change(change)));
        }
        DynamicAction::LinkLeave { orig, dest } => {
            fields.push(("action", "link_leave".into()));
            fields.push(("orig", orig.as_str().into()));
            fields.push(("dest", dest.as_str().into()));
        }
        DynamicAction::NodeLeave { name } => {
            fields.push(("action", "node_leave".into()));
            fields.push(("name", name.as_str().into()));
        }
        DynamicAction::NodeJoin { name } => {
            fields.push(("action", "node_join".into()));
            fields.push(("name", name.as_str().into()));
        }
    }
    obj(fields)
}

fn decode_event(value: &Value) -> Result<DynamicEvent, ScenarioError> {
    let at = SimDuration::from_nanos(req_u64(value, "at_ns")?);
    let action = match req_str(value, "action")? {
        "set_link" => DynamicAction::SetLinkProperties {
            orig: req_str(value, "orig")?.to_string(),
            dest: req_str(value, "dest")?.to_string(),
            change: decode_change(field(value, "change")?)?,
        },
        "link_join" => DynamicAction::LinkJoin {
            orig: req_str(value, "orig")?.to_string(),
            dest: req_str(value, "dest")?.to_string(),
            change: decode_change(field(value, "change")?)?,
        },
        "link_leave" => DynamicAction::LinkLeave {
            orig: req_str(value, "orig")?.to_string(),
            dest: req_str(value, "dest")?.to_string(),
        },
        "node_leave" => DynamicAction::NodeLeave {
            name: req_str(value, "name")?.to_string(),
        },
        "node_join" => DynamicAction::NodeJoin {
            name: req_str(value, "name")?.to_string(),
        },
        other => return Err(spec_err(format!("unknown event action `{other}`"))),
    };
    Ok(DynamicEvent { at, action })
}

fn algorithm_name(algorithm: CongestionAlgorithm) -> &'static str {
    match algorithm {
        CongestionAlgorithm::Reno => "reno",
        CongestionAlgorithm::Cubic => "cubic",
    }
}

fn encode_workload(workload: &Workload) -> Value {
    let mut fields: Vec<(&str, Value)> = Vec::new();
    match &workload.kind {
        WorkloadKind::IperfTcp {
            client,
            server,
            algorithm,
        } => {
            fields.push(("kind", "iperf_tcp".into()));
            fields.push(("client", client.as_str().into()));
            fields.push(("server", server.as_str().into()));
            fields.push(("algorithm", algorithm_name(*algorithm).into()));
        }
        WorkloadKind::IperfUdp {
            client,
            server,
            rate,
        } => {
            fields.push(("kind", "iperf_udp".into()));
            fields.push(("client", client.as_str().into()));
            fields.push(("server", server.as_str().into()));
            fields.push(("rate_bps", rate.as_bps().into()));
        }
        WorkloadKind::Ping {
            src,
            dst,
            count,
            interval,
        } => {
            fields.push(("kind", "ping".into()));
            fields.push(("src", src.as_str().into()));
            fields.push(("dst", dst.as_str().into()));
            fields.push(("count", (*count).into()));
            fields.push(("interval_ns", interval.as_nanos().into()));
        }
        WorkloadKind::Wrk2 {
            server,
            client,
            connections,
            request,
        } => {
            fields.push(("kind", "wrk2".into()));
            fields.push(("server", server.as_str().into()));
            fields.push(("client", client.as_str().into()));
            fields.push(("connections", (*connections).into()));
            fields.push(("request_bytes", request.as_bytes().into()));
        }
        WorkloadKind::Curl {
            server,
            clients,
            request,
        } => {
            fields.push(("kind", "curl".into()));
            fields.push(("server", server.as_str().into()));
            fields.push((
                "clients",
                Value::Array(clients.iter().map(|c| c.as_str().into()).collect()),
            ));
            fields.push(("request_bytes", request.as_bytes().into()));
        }
        WorkloadKind::Memcached {
            server,
            clients,
            connections,
        } => {
            fields.push(("kind", "memcached".into()));
            fields.push(("server", server.as_str().into()));
            fields.push((
                "clients",
                Value::Array(clients.iter().map(|c| c.as_str().into()).collect()),
            ));
            fields.push(("connections", (*connections).into()));
        }
    }
    fields.push(("start_ns", workload.start.as_nanos().into()));
    fields.push((
        "duration_ns",
        workload.duration.map(|d| d.as_nanos()).into(),
    ));
    obj(fields)
}

fn decode_workload(value: &Value) -> Result<Workload, ScenarioError> {
    let string_list = |key: &str| -> Result<Vec<String>, ScenarioError> {
        req_array(value, key)?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| spec_err(format!("field `{key}` must hold strings")))
            })
            .collect()
    };
    let kind = match req_str(value, "kind")? {
        "iperf_tcp" => WorkloadKind::IperfTcp {
            client: req_str(value, "client")?.to_string(),
            server: req_str(value, "server")?.to_string(),
            algorithm: match req_str(value, "algorithm")? {
                "reno" => CongestionAlgorithm::Reno,
                "cubic" => CongestionAlgorithm::Cubic,
                other => return Err(spec_err(format!("unknown congestion algorithm `{other}`"))),
            },
        },
        "iperf_udp" => WorkloadKind::IperfUdp {
            client: req_str(value, "client")?.to_string(),
            server: req_str(value, "server")?.to_string(),
            rate: Bandwidth::from_bps(req_u64(value, "rate_bps")?),
        },
        "ping" => WorkloadKind::Ping {
            src: req_str(value, "src")?.to_string(),
            dst: req_str(value, "dst")?.to_string(),
            count: req_u64(value, "count")?,
            interval: SimDuration::from_nanos(req_u64(value, "interval_ns")?),
        },
        "wrk2" => WorkloadKind::Wrk2 {
            server: req_str(value, "server")?.to_string(),
            client: req_str(value, "client")?.to_string(),
            connections: req_u64(value, "connections")? as usize,
            request: DataSize::from_bytes(req_u64(value, "request_bytes")?),
        },
        "curl" => WorkloadKind::Curl {
            server: req_str(value, "server")?.to_string(),
            clients: string_list("clients")?,
            request: DataSize::from_bytes(req_u64(value, "request_bytes")?),
        },
        "memcached" => WorkloadKind::Memcached {
            server: req_str(value, "server")?.to_string(),
            clients: string_list("clients")?,
            connections: req_u64(value, "connections")? as usize,
        },
        other => return Err(spec_err(format!("unknown workload kind `{other}`"))),
    };
    Ok(Workload {
        kind,
        start: SimDuration::from_nanos(req_u64(value, "start_ns")?),
        duration: opt_u64(value, "duration_ns")?.map(SimDuration::from_nanos),
    })
}

fn decode_topology(spec: &Value) -> Result<Topology, ScenarioError> {
    let mut topology = Topology::new();
    let mut names = std::collections::HashSet::new();
    for node in req_array(spec, "nodes")? {
        match req_str(node, "kind")? {
            "service" => {
                let service = req_str(node, "service")?;
                let replica = req_u64(node, "replica")? as u32;
                if !names.insert(format!("{service}.{replica}")) {
                    return Err(spec_err(format!("duplicate node `{service}.{replica}`")));
                }
                topology.add_service(service, replica, req_str(node, "image")?);
            }
            "bridge" => {
                let name = req_str(node, "name")?;
                if !names.insert(name.to_string()) {
                    return Err(spec_err(format!("duplicate node `{name}`")));
                }
                topology.add_bridge(name);
            }
            other => return Err(spec_err(format!("unknown node kind `{other}`"))),
        }
    }
    let n_nodes = topology.nodes().len() as u64;
    for link in req_array(spec, "links")? {
        let from = req_u64(link, "from")?;
        let to = req_u64(link, "to")?;
        if from >= n_nodes || to >= n_nodes {
            return Err(spec_err(format!("link endpoint {from}->{to} out of range")));
        }
        let properties = LinkProperties {
            latency: SimDuration::from_nanos(req_u64(link, "latency_ns")?),
            jitter: SimDuration::from_nanos(req_u64(link, "jitter_ns")?),
            bandwidth: Bandwidth::from_bps(req_u64(link, "bandwidth_bps")?),
            loss: req_f64(link, "loss")?,
        };
        topology.add_link(
            NodeId(from as u32),
            NodeId(to as u32),
            properties,
            req_str(link, "network")?,
        );
    }
    Ok(topology)
}

impl Scenario {
    /// Serializes the scenario into its versioned wire spec. Only the
    /// Kollaps backend is serializable — the spec exists so distributed
    /// agents can rebuild emulation managers, which the baseline backends
    /// do not run.
    pub fn to_spec(&self) -> Result<Value, ScenarioError> {
        let (topology, schedule) = self.expand()?;
        let (hosts, config) = match &self.backend {
            Backend::Kollaps { hosts, config } => {
                let hosts = self.hosts.unwrap_or(*hosts).max(1);
                let mut config = *config;
                if let Some(delay) = self.metadata_delay {
                    config.metadata_delay = delay;
                }
                (hosts, config)
            }
            other => {
                return Err(ScenarioError::UnsupportedBackend {
                    backend: other.name().to_string(),
                    reason: "only the Kollaps backend can be serialized for \
                             distributed execution"
                        .to_string(),
                })
            }
        };
        let nodes: Vec<Value> = topology
            .nodes()
            .iter()
            .map(|node| match &node.kind {
                NodeKind::Service {
                    service,
                    replica,
                    image,
                } => obj(vec![
                    ("kind", "service".into()),
                    ("service", service.as_str().into()),
                    ("replica", (*replica).into()),
                    ("image", image.as_str().into()),
                ]),
                NodeKind::Bridge { name } => obj(vec![
                    ("kind", "bridge".into()),
                    ("name", name.as_str().into()),
                ]),
            })
            .collect();
        let links: Vec<Value> = topology
            .links()
            .iter()
            .map(|link| {
                obj(vec![
                    ("from", link.from.0.into()),
                    ("to", link.to.0.into()),
                    ("latency_ns", link.properties.latency.as_nanos().into()),
                    ("jitter_ns", link.properties.jitter.as_nanos().into()),
                    ("bandwidth_bps", link.properties.bandwidth.as_bps().into()),
                    ("loss", link.properties.loss.into()),
                    ("network", link.network.as_str().into()),
                ])
            })
            .collect();
        Ok(obj(vec![
            ("spec_version", SPEC_VERSION.into()),
            ("name", self.name.as_str().into()),
            ("distributed", self.distributed.into()),
            // Additive field: older decoders ignore it, older specs omit it
            // (tracing defaults off), and tracing only affects wall clock —
            // results are byte-identical — so no version bump.
            ("trace", self.trace.into()),
            ("hosts", hosts.into()),
            (
                "config",
                obj(vec![
                    ("loop_interval_ns", config.loop_interval.as_nanos().into()),
                    (
                        "cross_host_delay_ns",
                        config.cross_host_delay.as_nanos().into(),
                    ),
                    (
                        "container_overhead_ns",
                        config.container_overhead.as_nanos().into(),
                    ),
                    ("metadata_delay_ns", config.metadata_delay.as_nanos().into()),
                    ("bandwidth_sharing", config.bandwidth_sharing.into()),
                    ("congestion_loss", config.congestion_loss.into()),
                    ("seed", config.seed.into()),
                    ("threads", (config.threads as u64).into()),
                ]),
            ),
            ("nodes", Value::Array(nodes)),
            ("links", Value::Array(links)),
            (
                "schedule",
                Value::Array(schedule.events().iter().map(encode_event).collect()),
            ),
            (
                "placement",
                Value::Array(
                    self.placement
                        .iter()
                        .map(|(name, host)| {
                            Value::Array(vec![name.as_str().into(), (*host).into()])
                        })
                        .collect(),
                ),
            ),
            (
                "workloads",
                Value::Array(self.workloads.iter().map(encode_workload).collect()),
            ),
            ("duration_ns", self.duration.map(|d| d.as_nanos()).into()),
            (
                "step_interval_ns",
                self.step_interval.map(|d| d.as_nanos()).into(),
            ),
            (
                "sample_interval_ns",
                self.sample_interval.map(|d| d.as_nanos()).into(),
            ),
        ]))
    }

    /// [`Scenario::to_spec`] rendered to a JSON string.
    pub fn to_spec_string(&self) -> Result<String, ScenarioError> {
        Ok(serde_json::to_string(&self.to_spec()?))
    }

    /// Rebuilds a scenario from its wire spec. The result runs exactly
    /// like the scenario that produced the spec: same topology (node and
    /// link ids replay densely), same sorted schedule, same emulation
    /// config, workloads, placement and pacing knobs.
    pub fn from_spec(spec: &Value) -> Result<Scenario, ScenarioError> {
        let version = req_u64(spec, "spec_version")?;
        if version != SPEC_VERSION {
            return Err(spec_err(format!(
                "unsupported spec_version {version} (expected {SPEC_VERSION})"
            )));
        }
        let topology = decode_topology(spec)?;
        let config_value = field(spec, "config")?;
        let config = EmulationConfig {
            loop_interval: SimDuration::from_nanos(req_u64(config_value, "loop_interval_ns")?),
            cross_host_delay: SimDuration::from_nanos(req_u64(
                config_value,
                "cross_host_delay_ns",
            )?),
            container_overhead: SimDuration::from_nanos(req_u64(
                config_value,
                "container_overhead_ns",
            )?),
            metadata_delay: SimDuration::from_nanos(req_u64(config_value, "metadata_delay_ns")?),
            bandwidth_sharing: req_bool(config_value, "bandwidth_sharing")?,
            congestion_loss: req_bool(config_value, "congestion_loss")?,
            seed: req_u64(config_value, "seed")?,
            // Additive field: older specs omit it, and `threads` only affects
            // wall clock (results are byte-identical), so no version bump.
            threads: opt_u64(config_value, "threads")?
                .map(|n| (n as usize).max(1))
                .unwrap_or_else(|| EmulationConfig::default().threads),
        };
        let events = req_array(spec, "schedule")?
            .iter()
            .map(decode_event)
            .collect::<Result<Vec<_>, _>>()?;
        let mut scenario = Scenario::new(TopologySource::Topology(Box::new(topology)))
            .named(req_str(spec, "name")?)
            .backend(Backend::kollaps_with(
                req_u64(spec, "hosts")? as usize,
                config,
            ))
            .schedule(EventSchedule::from_events(events));
        scenario.distributed = req_bool(spec, "distributed")?;
        scenario.trace = opt_bool(spec, "trace")?.unwrap_or(false);
        for pin in req_array(spec, "placement")? {
            let pair = pin
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| spec_err("placement entries must be [name, host] pairs"))?;
            let name = pair[0]
                .as_str()
                .ok_or_else(|| spec_err("placement name must be a string"))?;
            let host = pair[1]
                .as_u64()
                .ok_or_else(|| spec_err("placement host must be an unsigned integer"))?;
            scenario = scenario.place(name, host as u32);
        }
        for workload in req_array(spec, "workloads")? {
            scenario = scenario.workload(decode_workload(workload)?);
        }
        if let Some(nanos) = opt_u64(spec, "duration_ns")? {
            scenario = scenario.duration(SimDuration::from_nanos(nanos));
        }
        if let Some(nanos) = opt_u64(spec, "step_interval_ns")? {
            scenario = scenario.step_interval(SimDuration::from_nanos(nanos));
        }
        if let Some(nanos) = opt_u64(spec, "sample_interval_ns")? {
            scenario = scenario.sample_interval(SimDuration::from_nanos(nanos));
        }
        Ok(scenario)
    }

    /// [`Scenario::from_spec`] over a JSON string.
    pub fn from_spec_str(text: &str) -> Result<Scenario, ScenarioError> {
        let value =
            serde_json::from_str(text).map_err(|e| spec_err(format!("malformed JSON: {e:?}")))?;
        Scenario::from_spec(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Churn;
    use kollaps_topology::generators;

    fn sample_scenario() -> Scenario {
        let (topo, _, _) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        Scenario::from_topology(topo)
            .named("spec-round-trip")
            .distributed(2)
            .place("client-0", 0)
            .place("server-0", 1)
            .place("client-1", 1)
            .place("server-1", 0)
            .metadata_delay(SimDuration::from_micros(200))
            .churn(
                Churn::poisson_flaps(&[("client-1", "bridge-left")])
                    .mean_uptime(SimDuration::from_secs(2))
                    .mean_downtime(SimDuration::from_millis(300))
                    .horizon(SimDuration::from_secs(5))
                    .seed(11),
            )
            .workload(
                Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(30))
                    .duration(SimDuration::from_secs(5)),
            )
            .workload(
                Workload::ping("client-1", "server-1")
                    .count(8)
                    .interval(SimDuration::from_millis(250))
                    .start(SimDuration::from_millis(700))
                    .duration(SimDuration::from_secs(4)),
            )
    }

    #[test]
    fn spec_round_trip_is_stable() {
        let scenario = sample_scenario();
        let text = scenario.to_spec_string().expect("serializable");
        let decoded = Scenario::from_spec_str(&text).expect("decodable");
        assert!(decoded.is_distributed());
        assert_eq!(decoded.host_count(), 2);
        // A second encode of the decoded scenario is byte-identical: the
        // spec is a fixed point (churn already folded, ids already dense).
        let text2 = decoded.to_spec_string().expect("re-serializable");
        assert_eq!(text, text2);
    }

    #[test]
    fn decoded_scenario_runs_identically() {
        // Neutralize the only wall-clock field the report carries.
        fn scrub(mut report: Value) -> String {
            if let Value::Object(fields) = &mut report {
                for (key, value) in fields.iter_mut() {
                    if key == "dynamics" {
                        if let Value::Object(dynamics) = value {
                            dynamics.retain(|(k, _)| k != "precompute_micros");
                        }
                    }
                }
            }
            serde_json::to_string(&report)
        }
        let original = sample_scenario().run().expect("original runs");
        let decoded = Scenario::from_spec_str(&sample_scenario().to_spec_string().unwrap())
            .expect("decodable")
            .run()
            .expect("decoded runs");
        assert_eq!(scrub(original.to_json()), scrub(decoded.to_json()));
    }

    fn expect_err(result: Result<Scenario, ScenarioError>) -> ScenarioError {
        match result {
            Err(e) => e,
            Ok(_) => panic!("expected a spec error"),
        }
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        let err = expect_err(Scenario::from_spec_str("{"));
        assert!(matches!(err, ScenarioError::Spec { .. }), "{err}");
        let err = expect_err(Scenario::from_spec_str("{\"spec_version\":99}"));
        assert!(
            matches!(&err, ScenarioError::Spec { reason } if reason.contains("spec_version")),
            "{err}"
        );
        // Non-Kollaps backends have no spec form.
        let err = sample_scenario()
            .backend(Backend::ground_truth())
            .to_spec()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnsupportedBackend { .. }),
            "{err}"
        );
    }
}
