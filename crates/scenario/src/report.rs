//! The machine-readable result of a scenario run.
//!
//! A [`Report`] is plain data: per-flow goodput/RTT/HTTP summaries and
//! per-link offered load, all in SI-ish units (`Mb/s`, `ms`, seconds). The
//! bench tables and `print_rows` views are thin projections over it, and
//! [`Report::to_json_string`] serializes the whole tree through the
//! vendored `serde_json` shim for downstream tooling.

use serde_json::Value;

/// Version stamp of the JSON layout emitted by [`Report::to_json`] and
/// [`crate::CampaignReport::to_json`], so downstream tooling can detect
/// format changes. Bumped whenever a field is added, removed or renamed:
///
/// * **1** — the implicit, unstamped layout up to the session redesign.
/// * **2** — adds the `schema_version` stamp itself and the
///   `CampaignReport` document.
/// * **3** — adds `flow_classes` (per-flow-class latency/goodput
///   p50/p90/p99 from the aggregating telemetry sink) and grows `http`
///   with `latency_p99_ms` + raw `samples_ms`.
/// * **4** — adds `phase_timing` (per-emulation-phase wall-clock breakdown
///   from the flight recorder; `null` unless the run was traced — tracing
///   is wall-clock-only, so untraced reports stay byte-identical to v3
///   modulo the stamp) and, in distributed merged reports, the per-host
///   `health` series and `socket_bus` counters.
pub const SCHEMA_VERSION: u64 = 4;

/// RTT statistics of a ping workload (milliseconds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RttStats {
    /// Mean RTT.
    pub mean_ms: f64,
    /// Jitter, reported like `ping`: standard deviation of the samples.
    pub jitter_ms: f64,
    /// Minimum observed RTT.
    pub min_ms: f64,
    /// Maximum observed RTT.
    pub max_ms: f64,
    /// Number of replies received.
    pub replies: usize,
    /// Every RTT sample, in arrival order.
    pub samples_ms: Vec<f64>,
}

/// Request statistics of an HTTP-style (wrk2/curl) workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HttpStats {
    /// Completed requests.
    pub requests: u64,
    /// Median per-request completion latency.
    pub latency_p50_ms: f64,
    /// 90th-percentile per-request completion latency.
    pub latency_p90_ms: f64,
    /// 99th-percentile per-request completion latency.
    pub latency_p99_ms: f64,
    /// Every per-request completion latency, in completion order (feeds
    /// the flow-class latency aggregation).
    pub samples_ms: Vec<f64>,
}

/// Percentile summary of one aggregated metric: the shape the telemetry
/// aggregator exports instead of a bare mean.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PercentileStats {
    /// Arithmetic mean over every sample ever recorded.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Number of samples aggregated.
    pub samples: u64,
}

/// Aggregated percentile telemetry for one *flow class* — every flow of
/// the same workload label ("iperf-udp", "ping", "wrk2", ...), the
/// aggregation unit that stays bounded when a scenario models millions of
/// logical users.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowClassReport {
    /// The workload label the class aggregates.
    pub class: String,
    /// Finalized flows aggregated into the class.
    pub flows: usize,
    /// Latency percentiles (ms) over every RTT/request-latency sample of
    /// the class (`None` for classes without latency samples, e.g. bulk
    /// iperf).
    pub latency_ms: Option<PercentileStats>,
    /// Goodput percentiles (Mb/s) over the per-second delivery windows of
    /// every flow in the class (`None` for classes that move no bulk
    /// data, e.g. ping).
    pub goodput_mbps: Option<PercentileStats>,
}

/// The measured outcome of one workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowReport {
    /// Workload label ("iperf-tcp", "iperf-udp", "ping", "wrk2", "curl",
    /// "memcached").
    pub workload: String,
    /// Name of the node that initiated the workload (the traffic sink for
    /// HTTP-style workloads).
    pub client: String,
    /// Name of the serving node.
    pub server: String,
    /// Workload start, seconds since scenario start.
    pub start_s: f64,
    /// Workload end, seconds since scenario start.
    pub end_s: f64,
    /// Average delivered goodput over the activity window, for workloads
    /// that move bulk data.
    pub goodput_mbps: Option<f64>,
    /// Receiver-side throughput per one-second window (Mb/s).
    pub per_second_mbps: Vec<f64>,
    /// Sender retransmissions (TCP workloads).
    pub retransmissions: Option<u64>,
    /// RTT statistics (ping workloads).
    pub rtt: Option<RttStats>,
    /// Request statistics (wrk2/curl workloads).
    pub http: Option<HttpStats>,
    /// Aggregate operations per second (memcached workloads).
    pub ops_per_second: Option<f64>,
}

/// Offered load on one original-topology link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkReport {
    /// The link id in the original (pre-collapse) topology.
    pub link: u32,
    /// Configured capacity.
    pub capacity_mbps: f64,
    /// Sum of the average goodputs of all reported flows whose collapsed
    /// path crosses this link (each averaged over its own activity window).
    pub offered_mbps: f64,
    /// `offered / capacity`; above 1.0 the link was a contended bottleneck
    /// for at least part of the run.
    pub utilization: f64,
}

/// Metadata traffic one physical host put on (and took off) the network.
#[derive(Debug, Clone, PartialEq)]
pub struct HostMetadata {
    /// Host index.
    pub host: u32,
    /// Bytes this host's Emulation Manager sent over the physical network.
    pub sent_bytes: u64,
    /// Bytes delivered to this host's Emulation Manager from remote ones.
    pub received_bytes: u64,
}

/// How close the decentralized per-host enforcement tracked the omniscient
/// allocation over the run. The gap is the maximum relative difference
/// between any Emulation Manager's enforced rate and the rate a centralized
/// solver with instantaneous knowledge would have assigned the same flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceReport {
    /// Gap in the final loop iteration of the run.
    pub last_gap: f64,
    /// Worst gap over the whole run (spikes while stale metadata is in
    /// flight are expected — that is the accuracy-vs-staleness trade-off).
    pub max_gap: f64,
    /// Mean gap over all measured loop iterations — the time-averaged
    /// inaccuracy the metadata staleness costs.
    pub mean_gap: f64,
}

/// What the dynamics engine did during the run: the offline precompute the
/// snapshot timeline paid once, and the per-event swap work at runtime —
/// which scales with each event's delta (changed paths), not with the
/// topology's pair count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsReport {
    /// Wall-clock microseconds spent precomputing the snapshot timeline
    /// (before the experiment started).
    pub precompute_micros: u64,
    /// Change times precomputed offline.
    pub snapshots_precomputed: usize,
    /// Change times whose snapshot was swapped in during the run.
    pub snapshots_applied: usize,
    /// Schedule events those swaps covered.
    pub events_applied: usize,
    /// Mean per-event swap cost (changed + removed paths).
    pub mean_swap_cost: f64,
    /// Worst single-event swap cost.
    pub max_swap_cost: usize,
    /// Per-destination qdisc chains actually rewritten across all hosts.
    pub chains_touched: usize,
    /// Ordered service pairs in the collapsed topology — the all-pairs work
    /// an online re-collapse would redo per event.
    pub pair_count: usize,
}

/// Wall-clock cost of one emulation-loop phase over the whole run, from
/// the flight recorder's per-phase accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTimingReport {
    /// Phase name (`collect`, `publish`, `synchronize`, `drain`,
    /// `enforce`).
    pub phase: String,
    /// Total wall-clock microseconds across all loop iterations.
    pub total_micros: u64,
    /// Mean microseconds per iteration.
    pub mean_micros: f64,
    /// Worst single iteration, microseconds.
    pub max_micros: u64,
    /// Loop iterations measured.
    pub count: u64,
}

/// The structured result of [`crate::Scenario::run`].
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Scenario name (see [`crate::Scenario::named`]).
    pub scenario: String,
    /// Backend the scenario ran against.
    pub backend: String,
    /// Number of physical hosts the backend modelled.
    pub hosts: usize,
    /// Total emulated time, seconds.
    pub duration_s: f64,
    /// One entry per workload, in declaration order.
    pub flows: Vec<FlowReport>,
    /// Offered load per traversed link, sorted by link id.
    pub links: Vec<LinkReport>,
    /// Metadata bytes the emulation managers exchanged over the physical
    /// network (`None` for backends without an emulation manager).
    pub metadata_bytes: Option<u64>,
    /// Per-host metadata traffic, in host-id order (empty for backends
    /// without an emulation manager).
    pub metadata_per_host: Vec<HostMetadata>,
    /// Allocation-convergence metric of the decentralized enforcement
    /// (`None` for backends without per-host emulation managers).
    pub convergence: Option<ConvergenceReport>,
    /// Dynamics-engine accounting (`None` for static scenarios and for
    /// backends without the snapshot timeline).
    pub dynamics: Option<DynamicsReport>,
    /// Per-flow-class percentile telemetry from the aggregating sink,
    /// sorted by class label (empty when no flow was finalized).
    pub flow_classes: Vec<FlowClassReport>,
    /// Per-phase wall-clock breakdown of the emulation loop, in loop
    /// order. `None` unless the run was traced (the breakdown is
    /// wall-clock data; untraced reports must stay byte-identical across
    /// thread counts and tracing modes).
    pub phase_timing: Option<Vec<PhaseTimingReport>>,
}

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl RttStats {
    fn to_json(&self) -> Value {
        obj(vec![
            ("mean_ms", self.mean_ms.into()),
            ("jitter_ms", self.jitter_ms.into()),
            ("min_ms", self.min_ms.into()),
            ("max_ms", self.max_ms.into()),
            ("replies", self.replies.into()),
            ("samples_ms", self.samples_ms.clone().into()),
        ])
    }
}

impl HttpStats {
    fn to_json(&self) -> Value {
        obj(vec![
            ("requests", self.requests.into()),
            ("latency_p50_ms", self.latency_p50_ms.into()),
            ("latency_p90_ms", self.latency_p90_ms.into()),
            ("latency_p99_ms", self.latency_p99_ms.into()),
            ("samples_ms", self.samples_ms.clone().into()),
        ])
    }
}

impl PercentileStats {
    fn to_json(self) -> Value {
        obj(vec![
            ("mean", self.mean.into()),
            ("p50", self.p50.into()),
            ("p90", self.p90.into()),
            ("p99", self.p99.into()),
            ("min", self.min.into()),
            ("max", self.max.into()),
            ("samples", self.samples.into()),
        ])
    }
}

impl FlowClassReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("class", self.class.as_str().into()),
            ("flows", self.flows.into()),
            (
                "latency_ms",
                self.latency_ms
                    .map(PercentileStats::to_json)
                    .unwrap_or(Value::Null),
            ),
            (
                "goodput_mbps",
                self.goodput_mbps
                    .map(PercentileStats::to_json)
                    .unwrap_or(Value::Null),
            ),
        ])
    }
}

impl FlowReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("workload", self.workload.as_str().into()),
            ("client", self.client.as_str().into()),
            ("server", self.server.as_str().into()),
            ("start_s", self.start_s.into()),
            ("end_s", self.end_s.into()),
            ("goodput_mbps", self.goodput_mbps.into()),
            ("per_second_mbps", self.per_second_mbps.clone().into()),
            ("retransmissions", self.retransmissions.into()),
            (
                "rtt",
                self.rtt
                    .as_ref()
                    .map(RttStats::to_json)
                    .unwrap_or(Value::Null),
            ),
            (
                "http",
                self.http
                    .as_ref()
                    .map(HttpStats::to_json)
                    .unwrap_or(Value::Null),
            ),
            ("ops_per_second", self.ops_per_second.into()),
        ])
    }
}

impl LinkReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("link", self.link.into()),
            ("capacity_mbps", self.capacity_mbps.into()),
            ("offered_mbps", self.offered_mbps.into()),
            ("utilization", self.utilization.into()),
        ])
    }
}

impl HostMetadata {
    fn to_json(&self) -> Value {
        obj(vec![
            ("host", self.host.into()),
            ("sent_bytes", self.sent_bytes.into()),
            ("received_bytes", self.received_bytes.into()),
        ])
    }
}

impl ConvergenceReport {
    fn to_json(self) -> Value {
        obj(vec![
            ("last_gap", self.last_gap.into()),
            ("max_gap", self.max_gap.into()),
            ("mean_gap", self.mean_gap.into()),
        ])
    }
}

impl DynamicsReport {
    fn to_json(self) -> Value {
        obj(vec![
            ("precompute_micros", self.precompute_micros.into()),
            ("snapshots_precomputed", self.snapshots_precomputed.into()),
            ("snapshots_applied", self.snapshots_applied.into()),
            ("events_applied", self.events_applied.into()),
            ("mean_swap_cost", self.mean_swap_cost.into()),
            ("max_swap_cost", self.max_swap_cost.into()),
            ("chains_touched", self.chains_touched.into()),
            ("pair_count", self.pair_count.into()),
        ])
    }
}

impl PhaseTimingReport {
    fn to_json(&self) -> Value {
        obj(vec![
            ("phase", self.phase.as_str().into()),
            ("total_micros", self.total_micros.into()),
            ("mean_micros", self.mean_micros.into()),
            ("max_micros", self.max_micros.into()),
            ("count", self.count.into()),
        ])
    }
}

impl Report {
    /// The flows produced by workloads with the given label, in order.
    pub fn flows_of<'a>(&'a self, workload: &'a str) -> impl Iterator<Item = &'a FlowReport> {
        self.flows.iter().filter(move |f| f.workload == workload)
    }

    /// The whole report as a JSON value tree.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("schema_version", SCHEMA_VERSION.into()),
            ("scenario", self.scenario.as_str().into()),
            ("backend", self.backend.as_str().into()),
            ("hosts", self.hosts.into()),
            ("duration_s", self.duration_s.into()),
            (
                "flows",
                Value::Array(self.flows.iter().map(FlowReport::to_json).collect()),
            ),
            (
                "links",
                Value::Array(self.links.iter().map(LinkReport::to_json).collect()),
            ),
            ("metadata_bytes", self.metadata_bytes.into()),
            (
                "metadata_per_host",
                Value::Array(
                    self.metadata_per_host
                        .iter()
                        .map(HostMetadata::to_json)
                        .collect(),
                ),
            ),
            (
                "convergence",
                self.convergence
                    .map(ConvergenceReport::to_json)
                    .unwrap_or(Value::Null),
            ),
            (
                "dynamics",
                self.dynamics
                    .map(DynamicsReport::to_json)
                    .unwrap_or(Value::Null),
            ),
            (
                "flow_classes",
                Value::Array(
                    self.flow_classes
                        .iter()
                        .map(FlowClassReport::to_json)
                        .collect(),
                ),
            ),
            (
                "phase_timing",
                self.phase_timing
                    .as_ref()
                    .map(|phases| {
                        Value::Array(phases.iter().map(PhaseTimingReport::to_json).collect())
                    })
                    .unwrap_or(Value::Null),
            ),
        ])
    }

    /// The whole report as compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}
