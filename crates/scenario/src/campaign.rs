//! Concurrent parameter-sweep campaigns over a base scenario.
//!
//! A [`Campaign`] declares one base [`Scenario`] plus parameter **axes** —
//! metadata-delay values ([`Campaign::vary_metadata_delay`]), emulation
//! seeds ([`Campaign::vary_seed`]), churn-rate multipliers
//! ([`Campaign::vary_churn_rate`]) or arbitrary scenario transformations
//! ([`Campaign::vary`]) — and runs every variant to completion on a thread
//! pool. Variants that leave the topology and event schedule untouched
//! (every built-in axis except the churn one) **share one precomputed
//! snapshot timeline**: the base's `SnapshotTimeline` is precomputed once
//! and cloned per variant, which shares every collapsed snapshot and path
//! structurally behind `Arc`s — N variants pay the offline all-pairs work
//! once. The result is a [`CampaignReport`]: per-variant [`Report`]s plus
//! cross-variant aggregates, serializable to JSON like any report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use kollaps_core::timeline::SnapshotTimeline;
use kollaps_sim::prelude::*;
use serde_json::Value;

use crate::report::{obj, Report, SCHEMA_VERSION};
use crate::{Backend, Scenario, ScenarioError};

type Mutator = Box<dyn Fn(Scenario) -> Scenario + Send + Sync>;

struct Variant {
    name: String,
    mutate: Mutator,
}

/// A declarative parameter sweep: one base scenario, N variants, a thread
/// pool, one structured result (see the module-level docs above).
pub struct Campaign {
    name: String,
    base: Scenario,
    variants: Vec<Variant>,
    threads: Option<usize>,
}

impl Campaign {
    /// A campaign over `base`. Every axis call appends variants derived
    /// from a clone of it; with no axes, [`Campaign::run`] runs the base
    /// once as the single variant `"base"`.
    pub fn over(base: Scenario) -> Self {
        Campaign {
            name: "campaign".to_string(),
            base,
            variants: Vec::new(),
            threads: None,
        }
    }

    /// Names the campaign (appears in the [`CampaignReport`]).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// One variant per metadata delay: the accuracy-vs-staleness axis.
    /// Kollaps backend only (the knob is validated per variant, exactly
    /// like `Scenario::metadata_delay`).
    pub fn vary_metadata_delay(mut self, delays: &[SimDuration]) -> Self {
        for &delay in delays {
            self.variants.push(Variant {
                name: format!("metadata_delay={:.1}ms", delay.as_secs_f64() * 1e3),
                mutate: Box::new(move |s| s.metadata_delay(delay)),
            });
        }
        self
    }

    /// One variant per emulation seed (the per-destination jitter streams'
    /// RNG), for variance estimation across otherwise identical runs.
    pub fn vary_seed(mut self, seeds: &[u64]) -> Self {
        for &seed in seeds {
            self.variants.push(Variant {
                name: format!("seed={seed}"),
                mutate: Box::new(move |mut s| {
                    if let Backend::Kollaps { config, .. } = &mut s.backend {
                        config.seed = seed;
                    }
                    s
                }),
            });
        }
        self
    }

    /// One variant per churn-rate multiplier: every churn generator of the
    /// base is accelerated by the factor (see [`crate::Churn::scale_rate`]).
    /// These variants change the event schedule, so they precompute their
    /// own snapshot timelines.
    pub fn vary_churn_rate(mut self, factors: &[f64]) -> Self {
        for &factor in factors {
            self.variants.push(Variant {
                name: format!("churn_rate=x{factor}"),
                mutate: Box::new(move |mut s| {
                    s.churn = s.churn.into_iter().map(|c| c.scale_rate(factor)).collect();
                    s
                }),
            });
        }
        self
    }

    /// A custom axis: one named variant produced by an arbitrary
    /// transformation of the base scenario.
    pub fn vary(
        mut self,
        name: &str,
        mutate: impl Fn(Scenario) -> Scenario + Send + Sync + 'static,
    ) -> Self {
        self.variants.push(Variant {
            name: name.to_string(),
            mutate: Box::new(mutate),
        });
        self
    }

    /// Caps the worker thread count (default: the machine's available
    /// parallelism, capped at the variant count).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Runs every variant to completion on the thread pool and collects
    /// the [`CampaignReport`]. Per-variant simulations are deterministic —
    /// scheduling across threads cannot change any variant's result — and
    /// the first variant error (in declaration order) fails the campaign.
    pub fn run(mut self) -> Result<CampaignReport, ScenarioError> {
        if self.variants.is_empty() {
            self.variants.push(Variant {
                name: "base".to_string(),
                mutate: Box::new(|s| s),
            });
        }
        let Campaign {
            name,
            base,
            variants,
            threads,
        } = self;
        // The base expansion is the timeline every structure-preserving
        // variant shares. Expanding is also the earliest validation point,
        // so a broken base fails here, before any thread spawns. The
        // precompute itself is lazy: a sweep whose variants all change the
        // schedule (e.g. pure churn-rate axes) never pays for a base
        // timeline nobody uses.
        let (base_topology, base_schedule) = base.expand()?;
        let base_timeline: OnceLock<SnapshotTimeline> = OnceLock::new();
        let precomputes = AtomicUsize::new(0);
        let workers = threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(variants.len())
            .max(1);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<Report, ScenarioError>>>> =
            variants.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= variants.len() {
                        break;
                    }
                    let scenario = (variants[i].mutate)(base.clone());
                    let result = (|| -> Result<Report, ScenarioError> {
                        let (topology, schedule) = scenario.expand()?;
                        // Only the Kollaps backend consumes a timeline;
                        // baseline variants neither precompute nor count.
                        let kollaps = matches!(scenario.backend, Backend::Kollaps { .. });
                        let shared =
                            kollaps && topology == base_topology && schedule == base_schedule;
                        let prepared = if shared {
                            Some(base_timeline.get_or_init(|| {
                                precomputes.fetch_add(1, Ordering::Relaxed);
                                SnapshotTimeline::precompute(&base_topology, &base_schedule)
                            }))
                        } else {
                            if kollaps {
                                precomputes.fetch_add(1, Ordering::Relaxed);
                            }
                            None
                        };
                        let session = scenario.into_session(topology, schedule, prepared)?;
                        // A campaign-level span around the variant's whole
                        // run (no-op unless the base scenario enabled
                        // tracing; the handle outlives the session).
                        let tracer = session.tracer().clone();
                        let mut span = tracer.span(0, "campaign_variant");
                        span.arg("variant", i as f64);
                        Ok(session.finish())
                    })();
                    *slots[i].lock().expect("variant slot poisoned") = Some(result);
                });
            }
        });
        let mut reports = Vec::with_capacity(variants.len());
        for (variant, slot) in variants.iter().zip(slots) {
            let report = slot
                .into_inner()
                .expect("variant slot poisoned")
                .expect("every variant index was claimed by a worker")?;
            reports.push(VariantReport {
                name: variant.name.clone(),
                report,
            });
        }
        let aggregates = CampaignAggregates::compute(&reports);
        Ok(CampaignReport {
            campaign: name,
            variants: reports,
            timeline_precomputes: precomputes.into_inner(),
            threads: workers,
            aggregates,
        })
    }
}

/// One variant's outcome inside a [`CampaignReport`].
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// The variant's name (axis parameter rendered, or the
    /// [`Campaign::vary`] name).
    pub name: String,
    /// The full per-variant report, identical in shape to a one-shot
    /// [`Scenario::run`] result.
    pub report: Report,
}

/// Cross-variant aggregates of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignAggregates {
    /// Number of variants that ran.
    pub variants: usize,
    /// Flow reports across all variants.
    pub total_flows: usize,
    /// Mean goodput over every flow (of every variant) that measured one.
    pub goodput_mean_mbps: Option<f64>,
    /// Variant whose flows averaged the highest goodput.
    pub best_goodput_variant: Option<String>,
    /// Variant whose flows averaged the lowest goodput.
    pub worst_goodput_variant: Option<String>,
    /// Mean of the variants' mean convergence gaps (Kollaps backend only).
    pub mean_convergence_gap: Option<f64>,
}

impl CampaignAggregates {
    fn compute(variants: &[VariantReport]) -> Self {
        let mut all_goodputs: Vec<f64> = Vec::new();
        let mut per_variant: Vec<(&str, f64)> = Vec::new();
        let mut gaps: Vec<f64> = Vec::new();
        let mut total_flows = 0;
        for v in variants {
            total_flows += v.report.flows.len();
            let goodputs: Vec<f64> = v
                .report
                .flows
                .iter()
                .filter_map(|f| f.goodput_mbps)
                .collect();
            if !goodputs.is_empty() {
                per_variant.push((
                    &v.name,
                    goodputs.iter().sum::<f64>() / goodputs.len() as f64,
                ));
                all_goodputs.extend(goodputs);
            }
            if let Some(c) = &v.report.convergence {
                gaps.push(c.mean_gap);
            }
        }
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                None
            } else {
                Some(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        };
        let best = per_variant
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n.to_string());
        let worst = per_variant
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| n.to_string());
        CampaignAggregates {
            variants: variants.len(),
            total_flows,
            goodput_mean_mbps: mean(&all_goodputs),
            best_goodput_variant: best,
            worst_goodput_variant: worst,
            mean_convergence_gap: mean(&gaps),
        }
    }

    fn to_json(&self) -> Value {
        obj(vec![
            ("variants", self.variants.into()),
            ("total_flows", self.total_flows.into()),
            ("goodput_mean_mbps", self.goodput_mean_mbps.into()),
            (
                "best_goodput_variant",
                self.best_goodput_variant
                    .as_deref()
                    .map(Value::from)
                    .unwrap_or(Value::Null),
            ),
            (
                "worst_goodput_variant",
                self.worst_goodput_variant
                    .as_deref()
                    .map(Value::from)
                    .unwrap_or(Value::Null),
            ),
            ("mean_convergence_gap", self.mean_convergence_gap.into()),
        ])
    }
}

/// The structured result of [`Campaign::run`]: every variant's report plus
/// cross-variant aggregates.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign name (see [`Campaign::named`]).
    pub campaign: String,
    /// Per-variant outcomes, in declaration order.
    pub variants: Vec<VariantReport>,
    /// Snapshot-timeline precomputes actually performed: 1 when every
    /// variant shared the base's (lazily precomputed) timeline, up to
    /// `variants` when every variant changed the topology or schedule.
    pub timeline_precomputes: usize,
    /// Worker threads the pool used.
    pub threads: usize,
    /// Cross-variant aggregates.
    pub aggregates: CampaignAggregates,
}

impl CampaignReport {
    /// The report of the variant with the given name, if it exists.
    pub fn variant(&self, name: &str) -> Option<&Report> {
        self.variants
            .iter()
            .find(|v| v.name == name)
            .map(|v| &v.report)
    }

    /// The whole campaign as a JSON value tree.
    pub fn to_json(&self) -> Value {
        obj(vec![
            ("schema_version", SCHEMA_VERSION.into()),
            ("campaign", self.campaign.as_str().into()),
            (
                "variants",
                Value::Array(
                    self.variants
                        .iter()
                        .map(|v| {
                            obj(vec![
                                ("name", v.name.as_str().into()),
                                ("report", v.report.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("timeline_precomputes", self.timeline_precomputes.into()),
            ("threads", self.threads.into()),
            ("aggregates", self.aggregates.to_json()),
        ])
    }

    /// The whole campaign as compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Churn, Workload};
    use kollaps_topology::generators;
    use kollaps_topology::model::Topology;

    fn dumbbell() -> Topology {
        let (topo, _, _) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        topo
    }

    fn base() -> Scenario {
        Scenario::from_topology(dumbbell())
            .hosts(2)
            .churn(
                Churn::partition(&["bridge-left"], &["bridge-right"])
                    .start(SimDuration::from_secs(2))
                    .heal_after(Some(SimDuration::from_secs(1))),
            )
            .workload(
                Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(20))
                    .duration(SimDuration::from_secs(4)),
            )
    }

    #[test]
    fn metadata_delay_sweep_shares_one_timeline_precompute() {
        let report = Campaign::over(base())
            .named("staleness-sweep")
            .vary_metadata_delay(&[
                SimDuration::ZERO,
                SimDuration::from_millis(5),
                SimDuration::from_millis(20),
            ])
            .threads(3)
            .run()
            .expect("valid campaign");
        assert_eq!(report.campaign, "staleness-sweep");
        assert_eq!(report.variants.len(), 3);
        // The structural-sharing contract: all three variants reused the
        // base's precomputed timeline…
        assert_eq!(report.timeline_precomputes, 1);
        // …which is visible in the DynamicsStats precompute counters: all
        // variants carry the *same* precompute cost (the shared one), not
        // three independent measurements.
        let micros: Vec<u64> = report
            .variants
            .iter()
            .map(|v| v.report.dynamics.expect("churny variant").precompute_micros)
            .collect();
        assert!(micros.windows(2).all(|w| w[0] == w[1]), "{micros:?}");
        // Each variant is a full report of its own.
        for v in &report.variants {
            assert_eq!(v.report.flows.len(), 1);
            assert_eq!(v.report.dynamics.unwrap().events_applied, 2);
        }
        assert_eq!(report.aggregates.variants, 3);
        assert_eq!(report.aggregates.total_flows, 3);
        assert!(report.aggregates.goodput_mean_mbps.unwrap() > 5.0);
        assert!(report.variant("metadata_delay=5.0ms").is_some());
        let json = report.to_json();
        assert_eq!(
            json.get("schema_version").and_then(|v| v.as_u64()),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            json.get("timeline_precomputes").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            json.get("variants")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn churn_rate_axis_precomputes_per_variant() {
        let report = Campaign::over(base())
            .vary_churn_rate(&[1.0, 2.0])
            .run()
            .expect("valid campaign");
        assert_eq!(report.variants.len(), 2);
        // x1.0 leaves the schedule identical (shares the base timeline);
        // x2.0 changes event times and pays its own precompute.
        assert_eq!(report.timeline_precomputes, 2);
        let fast = report.variant("churn_rate=x2").expect("x2 variant");
        // Twice the churn rate halves the heal delay: both events apply.
        assert_eq!(fast.dynamics.unwrap().events_applied, 2);
    }

    #[test]
    fn seed_and_custom_axes_compose_and_results_are_deterministic() {
        let build = || {
            Campaign::over(base())
                .vary_seed(&[1, 2])
                .vary("udp-30mbps", |s| {
                    s.workload(
                        Workload::iperf_udp("client-1", "server-1", Bandwidth::from_mbps(30))
                            .duration(SimDuration::from_secs(4)),
                    )
                })
                .threads(2)
        };
        let a = build().run().expect("valid campaign");
        assert_eq!(a.variants.len(), 3);
        assert_eq!(a.variants[2].report.flows.len(), 2);
        // Deterministic: a second identical campaign produces identical
        // variant reports (modulo the wall-clock precompute stamp).
        let b = build().run().expect("valid campaign");
        for (x, y) in a.variants.iter().zip(&b.variants) {
            let mut dx = x.report.clone();
            let mut dy = y.report.clone();
            if let Some(d) = dx.dynamics.as_mut() {
                d.precompute_micros = 0;
            }
            if let Some(d) = dy.dynamics.as_mut() {
                d.precompute_micros = 0;
            }
            assert_eq!(dx.to_json_string(), dy.to_json_string(), "{}", x.name);
        }
    }

    #[test]
    fn variant_errors_fail_the_campaign() {
        let err = Campaign::over(base())
            .vary("broken", |s| {
                s.workload(Workload::ping("ghost", "also-ghost"))
            })
            .run()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownNodes { ref names } if names.len() == 2));
    }

    #[test]
    fn axis_free_campaign_runs_the_base_once() {
        let report = Campaign::over(base()).run().expect("valid campaign");
        assert_eq!(report.variants.len(), 1);
        assert_eq!(report.variants[0].name, "base");
        assert_eq!(report.timeline_precomputes, 1);
    }
}
