//! Typed errors of the scenario layer.
//!
//! Every way a scenario can be invalid is a dedicated variant, so callers
//! (and tests) can match on the exact failure instead of parsing a panic
//! message or unwrapping an anonymous `Option`.

use std::fmt;

use kollaps_topology::dsl::ParseError;
use kollaps_topology::xml::XmlError;

/// Everything that can go wrong between `Scenario::from_*` and the final
/// [`crate::Report`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The experiment-DSL text did not parse.
    Parse(ParseError),
    /// The ModelNet XML text did not parse.
    Xml(XmlError),
    /// A single referenced node name does not exist in the topology
    /// (placement pins, injected dynamic events).
    UnknownNode {
        /// The unknown name.
        name: String,
    },
    /// Workload endpoints reference node names the topology does not
    /// declare — **all** of them, collected across every workload of the
    /// scenario in one pass, so a misspelled scenario is fixed once, not
    /// one `run()` per typo.
    UnknownNodes {
        /// Every unknown name, deduplicated, in first-reference order.
        names: Vec<String>,
    },
    /// A workload endpoint names a bridge; traffic can only originate at or
    /// target service (container) nodes.
    NotAService {
        /// The bridge name.
        name: String,
    },
    /// The topology declares a link that can never carry traffic.
    ZeroBandwidthLink {
        /// Display name of the link's origin node.
        orig: String,
        /// Display name of the link's destination node.
        dest: String,
    },
    /// The selected backend cannot emulate this scenario (e.g. Mininet's
    /// 1 Gb/s shaping ceiling, or dynamic events on a baseline that has no
    /// emulation manager to apply them).
    UnsupportedBackend {
        /// The backend's name.
        backend: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An explicit container placement is inconsistent: the pinned host
    /// index does not exist, or the same service is pinned to two different
    /// hosts.
    InvalidPlacement {
        /// The service being placed.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A churn spec is invalid for this topology (unknown node, no link to
    /// flap, out-of-range parameter, malformed trace).
    InvalidChurn {
        /// Human-readable reason (the churn generator's typed error,
        /// rendered).
        reason: String,
    },
    /// The scenario has no workloads; running it would measure nothing.
    EmptyWorkload,
    /// A session pacing knob ([`crate::Scenario::step_interval`] or
    /// [`crate::Scenario::sample_interval`]) is zero.
    InvalidStepInterval {
        /// Which knob ("step_interval" or "sample_interval").
        knob: &'static str,
    },
    /// A workload is self-contradictory (same endpoints, zero rate, zero
    /// probe count, no clients, ...).
    InvalidWorkload {
        /// Human-readable reason.
        reason: String,
    },
    /// A serialized scenario spec (the wire form the distributed runtime
    /// ships to its agents) is malformed or has an unsupported version.
    Spec {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(e) => write!(f, "experiment description: {e}"),
            ScenarioError::Xml(e) => write!(f, "ModelNet XML: {e}"),
            ScenarioError::UnknownNode { name } => {
                write!(f, "scenario references unknown node `{name}`")
            }
            ScenarioError::UnknownNodes { names } => {
                write!(f, "workloads reference unknown nodes: ")?;
                for (i, name) in names.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{name}`")?;
                }
                Ok(())
            }
            ScenarioError::NotAService { name } => {
                write!(f, "workload endpoint `{name}` is a bridge, not a service")
            }
            ScenarioError::ZeroBandwidthLink { orig, dest } => {
                write!(f, "link {orig} -> {dest} has zero bandwidth")
            }
            ScenarioError::UnsupportedBackend { backend, reason } => {
                write!(f, "backend `{backend}` cannot run this scenario: {reason}")
            }
            ScenarioError::InvalidPlacement { name, reason } => {
                write!(f, "invalid placement of `{name}`: {reason}")
            }
            ScenarioError::InvalidChurn { reason } => {
                write!(f, "invalid churn: {reason}")
            }
            ScenarioError::EmptyWorkload => {
                write!(f, "scenario declares no workloads")
            }
            ScenarioError::InvalidStepInterval { knob } => {
                write!(f, "session {knob} must be positive")
            }
            ScenarioError::InvalidWorkload { reason } => {
                write!(f, "invalid workload: {reason}")
            }
            ScenarioError::Spec { reason } => {
                write!(f, "invalid scenario spec: {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParseError> for ScenarioError {
    fn from(e: ParseError) -> Self {
        ScenarioError::Parse(e)
    }
}

impl From<XmlError> for ScenarioError {
    fn from(e: XmlError) -> Self {
        ScenarioError::Xml(e)
    }
}

impl From<kollaps_dynamics::ChurnError> for ScenarioError {
    fn from(e: kollaps_dynamics::ChurnError) -> Self {
        ScenarioError::InvalidChurn {
            reason: e.to_string(),
        }
    }
}
