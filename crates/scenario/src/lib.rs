//! # kollaps-scenario
//!
//! The unified scenario API: **one builder from topology to
//! machine-readable report**.
//!
//! The paper's central usability claim (§3) is that an experimenter writes a
//! single declarative description — topology + deployment + dynamic events —
//! and Kollaps does the rest. This crate is that entry point for the
//! reproduction: a [`Scenario`] composes
//!
//! * a **topology source** — experiment-DSL text
//!   ([`Scenario::from_dsl`]), ModelNet XML ([`Scenario::from_xml`]), or a
//!   programmatic [`Topology`] from `kollaps_topology::generators`
//!   ([`Scenario::from_topology`]);
//! * a **backend** — the Kollaps collapsed emulation or any of the
//!   full-state baselines, behind one [`Backend`] selection;
//! * **workloads** — data-driven [`Workload`] specs (iPerf TCP/UDP, ping,
//!   wrk2, curl, memcached) that reference services *by name* and carry
//!   their own start/stop times;
//! * **dynamic events** — an [`EventSchedule`] applied mid-run by the
//!   emulation manager;
//!
//! validates the whole composition into a typed [`ScenarioError`] (unknown
//! node names — all of them, collected in one pass — zero-bandwidth links,
//! unsupported backend/topology combinations, ...) and, on
//! [`Scenario::run`], returns a structured [`Report`] — per-flow
//! goodput/RTT/request summaries plus per-link offered load — serializable
//! to JSON via the vendored `serde_json` shim.
//!
//! Execution itself is **session-based**: [`Scenario::session`] returns a
//! live [`Session`] with a steppable clock ([`Session::step`],
//! [`Session::run_until`], [`Session::pause`]), live accessors
//! ([`Session::flow_progress`], [`Session::link_loads`],
//! [`Session::convergence`]), streaming telemetry ([`Sink`],
//! [`TelemetryEvent`], [`Sample`]) and mid-run steering
//! ([`Session::inject_workload`], [`Session::inject_event`],
//! [`Session::inject_churn`] — the precomputed snapshot timeline is
//! extended incrementally). [`Scenario::run`] is a thin wrapper:
//! `session()?.finish()`, byte-identical by property test. [`Campaign`]
//! runs parameter sweeps (metadata delay, seeds, churn rate, custom axes)
//! concurrently with structurally shared timeline precompute and collects
//! a [`CampaignReport`].
//!
//! ```
//! use kollaps_scenario::{Backend, Scenario, Workload};
//! use kollaps_sim::prelude::*;
//!
//! let description = r#"
//! experiment:
//!   services:
//!     name: client
//!     name: server
//!   links:
//!     orig: client
//!     dest: server
//!     latency: 10
//!     up: 20Mbps
//!     down: 20Mbps
//! "#;
//! let report = Scenario::from_dsl(description)
//!     .backend(Backend::kollaps())
//!     .workload(Workload::ping("client", "server").count(5))
//!     .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(2)))
//!     .run()
//!     .expect("valid scenario");
//! assert_eq!(report.flows.len(), 2);
//! println!("{}", report.to_json_string());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod campaign;
mod error;
mod report;
mod runner;
mod session;
mod spec;
mod telemetry;
mod workload;

pub use backend::{AnyDataplane, Backend};
pub use campaign::{Campaign, CampaignAggregates, CampaignReport, VariantReport};
pub use error::ScenarioError;
pub use kollaps_dynamics::Churn;
pub use kollaps_trace::Recorder;
pub use report::{
    ConvergenceReport, DynamicsReport, FlowClassReport, FlowReport, HostMetadata, HttpStats,
    LinkReport, PercentileStats, PhaseTimingReport, Report, RttStats, SCHEMA_VERSION,
};
pub use session::{Session, SessionError};
pub use spec::SPEC_VERSION;
pub use telemetry::{Aggregator, FlowProgress, FlowStatus, LinkLoad, Sample, Sink, TelemetryEvent};
pub use workload::{Workload, DEFAULT_DURATION};

use kollaps_core::collapse::Addressable;
use kollaps_core::timeline::SnapshotTimeline;
use kollaps_netmodel::packet::Addr;
use kollaps_sim::prelude::*;
use kollaps_topology::dsl::{parse_experiment, Experiment};
use kollaps_topology::events::{DynamicEvent, EventSchedule};
use kollaps_topology::model::{NodeId, Topology};
use kollaps_topology::xml::parse_modelnet_xml;

use runner::{ResolvedKind, ResolvedWorkload};
use session::SessionInit;
use workload::WorkloadKind;

#[derive(Clone)]
enum TopologySource {
    Dsl(String),
    Xml(String),
    Topology(Box<Topology>),
}

/// The scenario builder. See the [crate-level documentation](crate) for an
/// end-to-end example.
///
/// A scenario is plain data and `Clone`: a [`Campaign`] clones one base
/// scenario per parameter variant.
#[derive(Clone)]
pub struct Scenario {
    name: String,
    source: TopologySource,
    backend: Backend,
    schedule: EventSchedule,
    churn: Vec<Churn>,
    workloads: Vec<Workload>,
    duration: Option<SimDuration>,
    hosts: Option<usize>,
    metadata_delay: Option<SimDuration>,
    threads: Option<usize>,
    placement: Vec<(String, u32)>,
    step_interval: Option<SimDuration>,
    sample_interval: Option<SimDuration>,
    distributed: bool,
    trace: bool,
}

impl Scenario {
    fn new(source: TopologySource) -> Self {
        Scenario {
            name: "scenario".to_string(),
            source,
            backend: Backend::kollaps(),
            schedule: EventSchedule::new(),
            churn: Vec::new(),
            workloads: Vec::new(),
            duration: None,
            hosts: None,
            metadata_delay: None,
            threads: None,
            placement: Vec::new(),
            step_interval: None,
            sample_interval: None,
            distributed: false,
            trace: false,
        }
    }

    /// A scenario whose topology (and dynamic schedule) come from
    /// experiment-DSL text (the paper's Listing 1/2 syntax). Parse errors
    /// surface as [`ScenarioError::Parse`] from [`Scenario::run`].
    pub fn from_dsl(text: &str) -> Self {
        Scenario::new(TopologySource::Dsl(text.to_string()))
    }

    /// A scenario whose topology comes from ModelNet XML. Parse errors
    /// surface as [`ScenarioError::Xml`] from [`Scenario::run`].
    pub fn from_xml(text: &str) -> Self {
        Scenario::new(TopologySource::Xml(text.to_string()))
    }

    /// A scenario over a programmatic topology (e.g. one of
    /// `kollaps_topology::generators`).
    pub fn from_topology(topology: Topology) -> Self {
        Scenario::new(TopologySource::Topology(Box::new(topology)))
    }

    /// A scenario over an already-parsed [`Experiment`]; its dynamic
    /// schedule is adopted.
    pub fn from_experiment(experiment: Experiment) -> Self {
        let mut scenario = Scenario::new(TopologySource::Topology(Box::new(experiment.topology)));
        scenario.schedule = experiment.schedule;
        scenario
    }

    /// Names the scenario (appears in the report).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Selects the network under test. Defaults to the Kollaps emulation on
    /// a single host.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Spreads the containers over `n` physical hosts (Kollaps backend
    /// only). Each host runs its own Emulation Manager, so with more than
    /// one host the enforcement depends on the metadata actually received
    /// over the (delayed) physical network.
    ///
    /// ```
    /// use kollaps_scenario::{Scenario, Workload};
    /// use kollaps_topology::generators;
    /// use kollaps_sim::prelude::*;
    ///
    /// let (topo, _, _) = generators::dumbbell(
    ///     2,
    ///     Bandwidth::from_mbps(100),
    ///     Bandwidth::from_mbps(50),
    ///     SimDuration::from_millis(1),
    ///     SimDuration::from_millis(10),
    /// );
    /// let report = Scenario::from_topology(topo)
    ///     .hosts(2)
    ///     .place("client-0", 0)
    ///     .place("server-0", 1)
    ///     .metadata_delay(SimDuration::from_millis(5))
    ///     .workload(Workload::ping("client-0", "server-0").count(3))
    ///     .run()
    ///     .expect("valid scenario");
    /// assert_eq!(report.hosts, 2);
    /// assert_eq!(report.metadata_per_host.len(), 2);
    /// assert!(report.convergence.is_some());
    /// ```
    pub fn hosts(mut self, n: usize) -> Self {
        self.hosts = Some(n);
        self
    }

    /// Marks the scenario for **distributed execution** over `n_agents`
    /// real agent processes — the entry point of the `kollaps_runtime`
    /// crate's coordinator. Implies [`Scenario::hosts`]`(n_agents)`: each
    /// agent hosts one Emulation Manager. Running the scenario in-process
    /// (via [`Scenario::run`]) stays valid and produces the run the
    /// distributed one must match at zero injected delay/loss.
    pub fn distributed(mut self, n_agents: usize) -> Self {
        self.distributed = true;
        self.hosts = Some(n_agents.max(1));
        self
    }

    /// `true` when [`Scenario::distributed`] marked this scenario for
    /// execution by real agent processes.
    pub fn is_distributed(&self) -> bool {
        self.distributed
    }

    /// The fully expanded topology (source resolved, churn folded into the
    /// schedule). The distributed runtime's coordinator feeds this to the
    /// orchestrator's deployment generator.
    pub fn topology(&self) -> Result<Topology, ScenarioError> {
        Ok(self.expand()?.0)
    }

    /// Number of physical hosts (= distributed agents) the scenario
    /// deploys onto.
    pub fn host_count(&self) -> usize {
        self.hosts.unwrap_or_else(|| self.backend.hosts()).max(1)
    }

    /// Pins a service's container to a physical host index (`0..hosts`);
    /// services not pinned are placed round-robin. Kollaps backend only.
    /// Unknown names, out-of-range host indices and conflicting pins are
    /// reported as typed errors by [`Scenario::run`].
    pub fn place(mut self, service: &str, host: u32) -> Self {
        self.placement.push((service.to_string(), host));
        self
    }

    /// Sets the one-way delay of metadata messages on the physical network
    /// (Kollaps backend only). Together with multiple [`Scenario::hosts`]
    /// this is the accuracy-vs-staleness knob: managers enforce from what
    /// they have received, so a larger delay means a later reaction to
    /// remote flows.
    pub fn metadata_delay(mut self, delay: SimDuration) -> Self {
        self.metadata_delay = Some(delay);
        self
    }

    /// Sets how many worker threads the emulation core uses to step its
    /// per-host managers and precompute snapshot timelines (Kollaps backend
    /// only). Threads change wall-clock time, never results: reports are
    /// byte-identical across any thread count. Defaults to the
    /// `KOLLAPS_THREADS` environment variable, else 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Adds one dynamic event to the schedule.
    pub fn event(mut self, event: DynamicEvent) -> Self {
        self.schedule.push(event);
        self
    }

    /// Merges a whole event schedule (on top of any events already present,
    /// e.g. from a `dynamic:` section of the DSL source).
    pub fn schedule(mut self, schedule: EventSchedule) -> Self {
        self.schedule.merge(&schedule);
        self
    }

    /// Adds a churn generator: a declarative source of dynamic events
    /// (Poisson link flapping, staggered node churn, partition/heal,
    /// bandwidth ramps, trace replay — see [`Churn`]). The spec is
    /// validated against the topology when the scenario runs; its events
    /// merge into the schedule like hand-written ones, flow through the
    /// same offline snapshot precompute, and surface in
    /// [`Report::dynamics`].
    ///
    /// ```
    /// use kollaps_scenario::{Churn, Scenario, Workload};
    /// use kollaps_sim::prelude::*;
    /// use kollaps_topology::generators;
    ///
    /// let (topo, _, _) = generators::dumbbell(
    ///     2,
    ///     Bandwidth::from_mbps(100),
    ///     Bandwidth::from_mbps(50),
    ///     SimDuration::from_millis(1),
    ///     SimDuration::from_millis(10),
    /// );
    /// let report = Scenario::from_topology(topo)
    ///     .churn(
    ///         Churn::poisson_flaps(&[("client-1", "bridge-left")])
    ///             .mean_uptime(SimDuration::from_secs(2))
    ///             .mean_downtime(SimDuration::from_millis(300))
    ///             .horizon(SimDuration::from_secs(8))
    ///             .seed(7),
    ///     )
    ///     .workload(
    ///         Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(20))
    ///             .duration(SimDuration::from_secs(8)),
    ///     )
    ///     .run()
    ///     .expect("valid scenario");
    /// let dynamics = report.dynamics.expect("churn ran");
    /// assert!(dynamics.events_applied > 0);
    /// ```
    pub fn churn(mut self, churn: Churn) -> Self {
        self.churn.push(churn);
        self
    }

    /// Adds a workload.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Adds several workloads.
    pub fn workloads(mut self, workloads: impl IntoIterator<Item = Workload>) -> Self {
        self.workloads.extend(workloads);
        self
    }

    /// Caps the total emulated time. Without a cap the scenario runs until
    /// the last workload window closes; with one, later windows are
    /// truncated.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Sets the wall-clock slice between the session's event-dispatch
    /// rounds (completion re-arming, window finalization, telemetry).
    /// Defaults to 100 ms; a zero interval is rejected with
    /// [`ScenarioError::InvalidStepInterval`].
    pub fn step_interval(mut self, interval: SimDuration) -> Self {
        self.step_interval = Some(interval);
        self
    }

    /// Enables periodic telemetry samples: every `interval` of virtual
    /// time, attached [`Sink`]s receive a [`Sample`] of the whole session.
    /// Off by default; a zero interval is rejected with
    /// [`ScenarioError::InvalidStepInterval`].
    pub fn sample_interval(mut self, interval: SimDuration) -> Self {
        self.sample_interval = Some(interval);
        self
    }

    /// Enables the flight recorder (Kollaps backend only): the emulation
    /// core records per-tick phase spans, per-worker spans, allocation
    /// spans and counters into bounded in-memory ring buffers, readable
    /// through [`Session::tracer`] and exportable as Chrome trace-event
    /// JSON (`kollaps_trace::chrome_trace_string`). Tracing is wall-clock
    /// observability only: the emulated results are byte-identical with it
    /// on or off (pinned by a property test), and the report additionally
    /// carries a [`Report::phase_timing`] breakdown. Off by default.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// `true` when [`Scenario::trace`] enabled the flight recorder.
    pub fn is_traced(&self) -> bool {
        self.trace
    }

    /// Expands the topology source and folds the declared schedule and
    /// churn generators into one sorted event schedule — the first phase
    /// of building a session, shared with [`Campaign`] (which compares
    /// expansions across variants to share one timeline precompute).
    pub(crate) fn expand(&self) -> Result<(Topology, EventSchedule), ScenarioError> {
        let (topology, mut schedule) = match &self.source {
            TopologySource::Dsl(text) => {
                let experiment = parse_experiment(text)?;
                (experiment.topology, experiment.schedule)
            }
            TopologySource::Xml(text) => (parse_modelnet_xml(text)?, EventSchedule::new()),
            TopologySource::Topology(topology) => ((**topology).clone(), EventSchedule::new()),
        };
        schedule.merge(&self.schedule);
        // Churn generators expand against the concrete topology; their
        // events merge into the same schedule as hand-written ones.
        for churn in &self.churn {
            schedule.merge(&churn.generate(&topology)?);
        }
        Ok((topology, schedule))
    }

    /// Validates the composition, builds the selected backend and returns
    /// a live [`Session`] over it — paused at `t = 0`, nothing run yet.
    /// Drive it with [`Session::step`]/[`Session::run_until`], observe it
    /// through accessors and [`Sink`]s, steer it with the `inject_*`
    /// calls, and close it with [`Session::finish`].
    pub fn session(self) -> Result<Session, ScenarioError> {
        let (topology, schedule) = self.expand()?;
        self.into_session(topology, schedule, None)
    }

    /// Validates the composition, runs the whole timeline and returns the
    /// structured [`Report`]. A thin wrapper over the session engine:
    /// `self.session()?.finish()`.
    pub fn run(self) -> Result<Report, ScenarioError> {
        Ok(self.session()?.finish())
    }

    /// The shared tail of [`Scenario::session`]: validation and
    /// construction over an already-expanded topology and schedule, with
    /// an optional pre-precomputed snapshot timeline (campaign variants
    /// share one).
    pub(crate) fn into_session(
        self,
        topology: Topology,
        schedule: EventSchedule,
        prepared: Option<&SnapshotTimeline>,
    ) -> Result<Session, ScenarioError> {
        validate_topology(&topology)?;
        if self.workloads.is_empty() {
            return Err(ScenarioError::EmptyWorkload);
        }
        // Every unknown endpoint name across every workload, in one error.
        let unknown = unknown_workload_names(&topology, &self.workloads);
        if !unknown.is_empty() {
            return Err(ScenarioError::UnknownNodes { names: unknown });
        }
        for workload in &self.workloads {
            validate_workload(&topology, workload)?;
        }
        let step = match self.step_interval {
            Some(interval) if interval.is_zero() => {
                return Err(ScenarioError::InvalidStepInterval {
                    knob: "step_interval",
                })
            }
            Some(interval) => interval,
            None => runner::DEFAULT_STEP,
        };
        if self.sample_interval.is_some_and(|i| i.is_zero()) {
            return Err(ScenarioError::InvalidStepInterval {
                knob: "sample_interval",
            });
        }

        // Apply the deployment knobs (hosts / placement / metadata delay).
        // They configure the per-host Emulation Managers, so they only mean
        // something on the Kollaps backend.
        let mut backend = self.backend;
        let knobs_used = self.hosts.is_some()
            || self.metadata_delay.is_some()
            || self.threads.is_some()
            || self.trace
            || !self.placement.is_empty();
        match &mut backend {
            Backend::Kollaps { hosts, config } => {
                if let Some(n) = self.hosts {
                    *hosts = n.max(1);
                }
                if let Some(delay) = self.metadata_delay {
                    config.metadata_delay = delay;
                }
                if let Some(threads) = self.threads {
                    config.threads = threads;
                }
            }
            other => {
                if knobs_used {
                    return Err(ScenarioError::UnsupportedBackend {
                        backend: other.name().to_string(),
                        reason: "hosts/placement/metadata_delay/threads/trace configure \
                                 per-host emulation managers, which only the Kollaps backend \
                                 runs"
                            .to_string(),
                    });
                }
            }
        }
        let mut placement_by_node: std::collections::HashMap<NodeId, u32> =
            std::collections::HashMap::new();
        for (name, host) in &self.placement {
            let node = service_node(&topology, name)?;
            if *host as usize >= backend.hosts() {
                return Err(ScenarioError::InvalidPlacement {
                    name: name.clone(),
                    reason: format!(
                        "host index {host} out of range for a {}-host deployment",
                        backend.hosts()
                    ),
                });
            }
            if let Some(previous) = placement_by_node.insert(node, *host) {
                if previous != *host {
                    return Err(ScenarioError::InvalidPlacement {
                        name: name.clone(),
                        reason: format!("pinned to both host {previous} and host {host}"),
                    });
                }
            }
        }
        backend.validate(&topology, &schedule)?;

        // Total timeline: the last workload window, unless capped.
        let natural_end = self
            .workloads
            .iter()
            .map(|w| SimTime::ZERO + w.start + w.effective_duration())
            .max()
            .unwrap_or(SimTime::ZERO);
        let total_end = match self.duration {
            Some(cap) => SimTime::ZERO + cap,
            None => natural_end,
        };

        let backend_name = backend.name().to_string();
        let hosts = backend.hosts();
        let mut dataplane = backend.build(topology.clone(), schedule, &placement_by_node, prepared);
        // The flight recorder: lane 0 for the dataplane/session control
        // path, one lane per host's emulation manager workers.
        let recorder = if self.trace {
            kollaps_trace::Recorder::new(1 + hosts)
        } else {
            kollaps_trace::Recorder::disabled()
        };
        if recorder.is_enabled() {
            if let Some(dp) = dataplane.kollaps_mut() {
                dp.set_recorder(recorder.clone());
            }
        }
        let resolved = self
            .workloads
            .into_iter()
            .map(|w| resolve_workload(&topology, &dataplane, w, total_end))
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Session::new(SessionInit {
            scenario_name: self.name,
            backend_name,
            hosts,
            topology,
            dataplane,
            workloads: resolved,
            total_end,
            duration_capped: self.duration.is_some(),
            step,
            sample_interval: self.sample_interval,
            recorder,
        }))
    }
}

/// Every workload endpoint name the topology does not declare, collected
/// across the whole workload set: deduplicated, in first-reference order.
pub(crate) fn unknown_workload_names(topology: &Topology, workloads: &[Workload]) -> Vec<String> {
    let mut unknown: Vec<String> = Vec::new();
    let mut check = |name: &str| {
        if topology.node_by_name(name).is_none() && !unknown.iter().any(|n| n == name) {
            unknown.push(name.to_string());
        }
    };
    for workload in workloads {
        match &workload.kind {
            WorkloadKind::IperfTcp { client, server, .. }
            | WorkloadKind::IperfUdp { client, server, .. } => {
                check(client);
                check(server);
            }
            WorkloadKind::Ping { src, dst, .. } => {
                check(src);
                check(dst);
            }
            WorkloadKind::Wrk2 { server, client, .. } => {
                check(server);
                check(client);
            }
            WorkloadKind::Curl {
                server, clients, ..
            }
            | WorkloadKind::Memcached {
                server, clients, ..
            } => {
                check(server);
                for client in clients {
                    check(client);
                }
            }
        }
    }
    unknown
}

fn validate_topology(topology: &Topology) -> Result<(), ScenarioError> {
    for link in topology.links() {
        if link.properties.bandwidth.is_zero() {
            let name = |id: NodeId| {
                topology
                    .node(id)
                    .map(|n| n.kind.display_name())
                    .unwrap_or_else(|| format!("#{id}"))
            };
            return Err(ScenarioError::ZeroBandwidthLink {
                orig: name(link.from),
                dest: name(link.to),
            });
        }
    }
    Ok(())
}

fn service_node(topology: &Topology, name: &str) -> Result<NodeId, ScenarioError> {
    let node = topology
        .node_by_name(name)
        .ok_or_else(|| ScenarioError::UnknownNode {
            name: name.to_string(),
        })?;
    let is_service = topology
        .node(node)
        .map(|n| n.kind.is_service())
        .unwrap_or(false);
    if !is_service {
        return Err(ScenarioError::NotAService {
            name: name.to_string(),
        });
    }
    Ok(node)
}

fn validate_workload(topology: &Topology, workload: &Workload) -> Result<(), ScenarioError> {
    let invalid = |reason: &str| ScenarioError::InvalidWorkload {
        reason: reason.to_string(),
    };
    if workload.effective_duration().is_zero() {
        return Err(invalid("workload duration is zero"));
    }
    let check_pair = |a: &str, b: &str| -> Result<(), ScenarioError> {
        service_node(topology, a)?;
        service_node(topology, b)?;
        if a == b {
            return Err(invalid(&format!("both endpoints are `{a}`")));
        }
        Ok(())
    };
    match &workload.kind {
        WorkloadKind::IperfTcp { client, server, .. } => check_pair(client, server),
        WorkloadKind::IperfUdp {
            client,
            server,
            rate,
        } => {
            check_pair(client, server)?;
            if rate.is_zero() {
                return Err(invalid("UDP rate is zero"));
            }
            Ok(())
        }
        WorkloadKind::Ping {
            src, dst, count, ..
        } => {
            check_pair(src, dst)?;
            if *count == 0 {
                return Err(invalid("ping count is zero"));
            }
            Ok(())
        }
        WorkloadKind::Wrk2 {
            server,
            client,
            connections,
            ..
        } => {
            check_pair(server, client)?;
            if *connections == 0 {
                return Err(invalid("wrk2 needs at least one connection"));
            }
            Ok(())
        }
        WorkloadKind::Curl {
            server, clients, ..
        } => {
            if clients.is_empty() {
                return Err(invalid("curl needs at least one client"));
            }
            for client in clients {
                check_pair(server, client)?;
            }
            Ok(())
        }
        WorkloadKind::Memcached {
            server,
            clients,
            connections,
        } => {
            if clients.is_empty() {
                return Err(invalid("memcached needs at least one client"));
            }
            if *connections == 0 {
                return Err(invalid("memcached needs at least one connection"));
            }
            for client in clients {
                check_pair(server, client)?;
            }
            Ok(())
        }
    }
}

fn resolve_workload(
    topology: &Topology,
    dataplane: &AnyDataplane,
    workload: Workload,
    total_end: SimTime,
) -> Result<ResolvedWorkload, ScenarioError> {
    let addr_of = |name: &str| -> Result<Addr, ScenarioError> {
        let node = service_node(topology, name)?;
        dataplane
            .address_of_node(node)
            .ok_or_else(|| ScenarioError::UnknownNode {
                name: name.to_string(),
            })
    };
    let kind = match &workload.kind {
        WorkloadKind::IperfTcp {
            client,
            server,
            algorithm,
        } => ResolvedKind::IperfTcp {
            client: addr_of(client)?,
            server: addr_of(server)?,
            algorithm: *algorithm,
        },
        WorkloadKind::IperfUdp {
            client,
            server,
            rate,
        } => ResolvedKind::IperfUdp {
            client: addr_of(client)?,
            server: addr_of(server)?,
            rate: *rate,
        },
        WorkloadKind::Ping {
            src,
            dst,
            count,
            interval,
        } => ResolvedKind::Ping {
            src: addr_of(src)?,
            dst: addr_of(dst)?,
            count: *count,
            interval: *interval,
        },
        WorkloadKind::Wrk2 {
            server,
            client,
            connections,
            request,
        } => ResolvedKind::Wrk2 {
            server: addr_of(server)?,
            client: addr_of(client)?,
            connections: *connections,
            request: *request,
        },
        WorkloadKind::Curl {
            server,
            clients,
            request,
        } => ResolvedKind::Curl {
            server: addr_of(server)?,
            clients: clients
                .iter()
                .map(|c| addr_of(c))
                .collect::<Result<Vec<_>, _>>()?,
            request: *request,
        },
        WorkloadKind::Memcached {
            server,
            clients,
            connections,
        } => ResolvedKind::Memcached {
            server: addr_of(server)?,
            clients: clients
                .iter()
                .map(|c| addr_of(c))
                .collect::<Result<Vec<_>, _>>()?,
            connections: *connections,
        },
    };
    let start = (SimTime::ZERO + workload.start).min(total_end);
    let end = (SimTime::ZERO + workload.start + workload.effective_duration()).min(total_end);
    Ok(ResolvedWorkload {
        workload,
        kind,
        start,
        end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_topology::generators;

    fn p2p(mbps: u64) -> Topology {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(mbps),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
        );
        topo
    }

    #[test]
    fn iperf_scenario_measures_the_shaped_rate() {
        let report = Scenario::from_topology(p2p(20))
            .named("p2p-iperf")
            .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(10)))
            .run()
            .expect("valid scenario");
        assert_eq!(report.backend, "kollaps");
        assert_eq!(report.flows.len(), 1);
        let flow = &report.flows[0];
        assert_eq!(flow.workload, "iperf-tcp");
        assert_eq!(
            (flow.client.as_str(), flow.server.as_str()),
            ("client", "server")
        );
        let mbps = flow.goodput_mbps.unwrap();
        assert!((16.0..=20.5).contains(&mbps), "goodput {mbps}");
        assert!(flow.retransmissions.is_some());
        assert!(!flow.per_second_mbps.is_empty());
        // The p2p links carry the flow: offered load is reported against
        // their capacity.
        assert!(!report.links.is_empty());
        let max_util = report
            .links
            .iter()
            .map(|l| l.utilization)
            .fold(0.0, f64::max);
        assert!((0.5..=1.1).contains(&max_util), "utilization {max_util}");
    }

    #[test]
    fn overlapping_workloads_share_one_timeline() {
        let report = Scenario::from_topology(p2p(50))
            .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(6)))
            .workload(
                Workload::ping("client", "server")
                    .count(10)
                    .interval(SimDuration::from_millis(200))
                    .start(SimDuration::from_secs(1))
                    .duration(SimDuration::from_secs(4)),
            )
            .run()
            .expect("valid scenario");
        assert_eq!(report.flows.len(), 2);
        let ping = report.flows_of("ping").next().unwrap();
        let rtt = ping.rtt.as_ref().unwrap();
        // The probes share the saturated link with the bulk flow: some are
        // lost to egress backpressure, and the survivors see queueing delay
        // on top of the 20 ms propagation RTT.
        assert!(rtt.replies >= 3, "replies {}", rtt.replies);
        assert!(rtt.mean_ms >= 20.0, "rtt {}", rtt.mean_ms);
        assert!((report.duration_s - 6.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_starts_are_honoured() {
        let report = Scenario::from_topology(p2p(100))
            .workload(
                Workload::ping("client", "server")
                    .count(3)
                    .interval(SimDuration::from_millis(100))
                    .start(SimDuration::from_secs(2))
                    .duration(SimDuration::from_secs(2)),
            )
            .run()
            .unwrap();
        let flow = &report.flows[0];
        assert!((flow.start_s - 2.0).abs() < 1e-9);
        assert!((flow.end_s - 4.0).abs() < 1e-9);
        assert_eq!(flow.rtt.as_ref().unwrap().replies, 3);
    }

    #[test]
    fn wrk2_and_curl_report_requests() {
        let report = Scenario::from_topology(p2p(100))
            .workload(
                Workload::wrk2("server", "client")
                    .connections(4)
                    .duration(SimDuration::from_secs(5)),
            )
            .run()
            .unwrap();
        let wrk2 = &report.flows[0];
        let http = wrk2.http.as_ref().unwrap();
        assert!(http.requests > 10, "requests {}", http.requests);
        assert!(http.latency_p90_ms >= http.latency_p50_ms);
        assert!(wrk2.goodput_mbps.unwrap() > 10.0);

        let report = Scenario::from_topology(p2p(100))
            .workload(Workload::curl("server", &["client"]).duration(SimDuration::from_secs(5)))
            .run()
            .unwrap();
        let curl = &report.flows[0];
        assert!(curl.http.as_ref().unwrap().requests > 5);
    }

    #[test]
    fn memcached_reports_closed_loop_throughput() {
        let report = Scenario::from_topology(p2p(100))
            .workload(
                Workload::memcached("server", &["client"])
                    .connections(10)
                    .duration(SimDuration::from_secs(3)),
            )
            .run()
            .unwrap();
        let ops = report.flows[0].ops_per_second.unwrap();
        // RTT ≈ 20 ms → ≈ 10 / 0.02 ≈ 500 ops/s.
        assert!((300.0..=700.0).contains(&ops), "ops {ops}");
    }

    #[test]
    fn duration_cap_truncates_windows() {
        let report = Scenario::from_topology(p2p(100))
            .duration(SimDuration::from_secs(2))
            .workload(Workload::iperf_tcp("client", "server").duration(SimDuration::from_secs(30)))
            .run()
            .unwrap();
        assert!((report.duration_s - 2.0).abs() < 1e-9);
        assert!((report.flows[0].end_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = Scenario::from_topology(p2p(10))
            .named("json-smoke")
            .workload(
                Workload::ping("client", "server")
                    .count(2)
                    .duration(SimDuration::from_secs(1)),
            )
            .run()
            .unwrap();
        let json = report.to_json();
        assert_eq!(
            json.get("scenario").and_then(|v| v.as_str()),
            Some("json-smoke")
        );
        assert_eq!(
            json.get("backend").and_then(|v| v.as_str()),
            Some("kollaps")
        );
        let flows = json.get("flows").and_then(|v| v.as_array()).unwrap();
        assert_eq!(flows.len(), 1);
        let text = report.to_json_string();
        assert!(text.starts_with('{') && text.ends_with('}'), "{text}");
        assert!(text.contains("\"rtt\":{\"mean_ms\":"), "{text}");
    }

    #[test]
    fn dsl_source_round_trips() {
        let description = "experiment:\n  services:\n    name: a\n    name: b\n  links:\n    orig: a\n    dest: b\n    latency: 5\n    up: 10Mbps\n    down: 10Mbps\n";
        let report = Scenario::from_dsl(description)
            .workload(
                Workload::ping("a", "b")
                    .count(4)
                    .duration(SimDuration::from_secs(2)),
            )
            .run()
            .unwrap();
        let rtt = report.flows[0].rtt.as_ref().unwrap();
        assert!((rtt.mean_ms - 10.0).abs() < 1.0, "rtt {}", rtt.mean_ms);
    }

    #[test]
    fn deployment_knobs_shape_the_report() {
        let report = Scenario::from_topology(p2p(50))
            .hosts(2)
            .place("client", 0)
            .place("server", 1)
            .metadata_delay(SimDuration::from_millis(5))
            .workload(
                Workload::iperf_udp("client", "server", Bandwidth::from_mbps(20))
                    .duration(SimDuration::from_secs(3)),
            )
            .run()
            .expect("valid scenario");
        assert_eq!(report.hosts, 2);
        assert_eq!(report.metadata_per_host.len(), 2);
        // The client's host publishes flow entries, so it sends more than
        // the idle server host's heartbeats; both exchange something.
        assert!(report.metadata_per_host.iter().all(|h| h.sent_bytes > 0));
        assert!(
            report.metadata_per_host[0].sent_bytes > report.metadata_per_host[1].sent_bytes,
            "flow publisher must outweigh heartbeats: {:?}",
            report.metadata_per_host
        );
        let convergence = report.convergence.expect("kollaps reports convergence");
        assert!(convergence.max_gap >= convergence.last_gap);
        assert!(convergence.max_gap >= convergence.mean_gap);
        let json = report.to_json();
        assert!(json.get("metadata_per_host").is_some());
        assert!(json.get("convergence").is_some());
    }

    #[test]
    fn deployment_knobs_require_the_kollaps_backend() {
        let err = Scenario::from_topology(p2p(50))
            .backend(Backend::ground_truth())
            .hosts(2)
            .workload(Workload::ping("client", "server").count(1))
            .run()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnsupportedBackend { .. }),
            "{err}"
        );
    }

    #[test]
    fn placement_is_validated() {
        let base = || {
            Scenario::from_topology(p2p(50))
                .hosts(2)
                .workload(Workload::ping("client", "server").count(1))
        };
        let err = base().place("nonexistent", 0).run().unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownNode { .. }), "{err}");
        let err = base().place("client", 7).run().unwrap_err();
        assert!(
            matches!(err, ScenarioError::InvalidPlacement { .. }),
            "{err}"
        );
        let err = base()
            .place("client", 0)
            .place("client", 1)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::InvalidPlacement { .. }),
            "{err}"
        );
        // A consistent duplicate pin is fine.
        base()
            .place("client", 1)
            .place("client", 1)
            .run()
            .expect("consistent pins are valid");
    }

    #[test]
    fn churn_knob_generates_events_and_reports_dynamics() {
        let (topo, _, _) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let report = Scenario::from_topology(topo)
            .named("churn-smoke")
            .churn(
                Churn::partition(&["bridge-left"], &["bridge-right"])
                    .start(SimDuration::from_secs(2))
                    .heal_after(Some(SimDuration::from_secs(2))),
            )
            .workload(
                Workload::iperf_udp("client-0", "server-0", Bandwidth::from_mbps(20))
                    .duration(SimDuration::from_secs(6)),
            )
            .run()
            .expect("valid scenario");
        let dynamics = report.dynamics.expect("dynamic scenario reports dynamics");
        assert_eq!(dynamics.snapshots_precomputed, 2);
        assert_eq!(dynamics.snapshots_applied, 2);
        assert_eq!(dynamics.events_applied, 2);
        assert!(dynamics.max_swap_cost > 0);
        assert!(dynamics.mean_swap_cost <= dynamics.pair_count as f64);
        // The partition cuts goodput to ~2/3 of the uninterrupted run.
        let mbps = report.flows[0].goodput_mbps.unwrap();
        assert!((10.0..=16.0).contains(&mbps), "goodput {mbps}");
        let json = report.to_json();
        let dyn_json = json.get("dynamics").expect("dynamics in JSON");
        assert_eq!(
            dyn_json.get("events_applied").and_then(|v| v.as_u64()),
            Some(2)
        );
        // Static scenarios stay clean: no dynamics block.
        let static_report = Scenario::from_topology(p2p(20))
            .workload(Workload::ping("client", "server").count(2))
            .run()
            .unwrap();
        assert!(static_report.dynamics.is_none());
        assert!(static_report.to_json().get("dynamics").unwrap().is_null());
    }

    #[test]
    fn churn_specs_are_validated_as_typed_errors() {
        let err = Scenario::from_topology(p2p(20))
            .churn(Churn::poisson_flaps(&[("ghost", "server")]))
            .workload(Workload::ping("client", "server").count(1))
            .run()
            .unwrap_err();
        assert!(
            matches!(&err, ScenarioError::InvalidChurn { reason } if reason.contains("ghost")),
            "{err}"
        );
        let err = Scenario::from_topology(p2p(20))
            .churn(Churn::trace("not json"))
            .workload(Workload::ping("client", "server").count(1))
            .run()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidChurn { .. }), "{err}");
    }

    #[test]
    fn trace_churn_replays_through_the_scenario() {
        let trace = r#"{ "events": [
            { "at_ms": 4000, "action": "set_link", "orig": "client", "dest": "server",
              "latency_ms": 60 },
            { "at_ms": 2000, "action": "set_link", "orig": "client", "dest": "server",
              "latency_ms": 30 }
        ] }"#;
        let report = Scenario::from_topology(p2p(100))
            .churn(Churn::trace(trace))
            .workload(
                Workload::ping("client", "server")
                    .count(60)
                    .interval(SimDuration::from_millis(100))
                    .duration(SimDuration::from_secs(6)),
            )
            .run()
            .expect("valid scenario");
        let rtt = report.flows[0].rtt.as_ref().unwrap();
        // Phases: 20 ms → 60 ms → 120 ms RTT; the samples must span them.
        assert!(rtt.min_ms < 25.0, "min {}", rtt.min_ms);
        assert!(rtt.max_ms > 100.0, "max {}", rtt.max_ms);
        assert_eq!(report.dynamics.unwrap().snapshots_applied, 2);
    }

    #[test]
    fn backends_are_selectable() {
        for backend in [
            Backend::ground_truth(),
            Backend::mininet(),
            Backend::maxinet(),
        ] {
            let name = backend.name();
            let report = Scenario::from_topology(p2p(50))
                .backend(backend)
                .workload(
                    Workload::ping("client", "server")
                        .count(3)
                        .duration(SimDuration::from_secs(2)),
                )
                .run()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(report.backend, name);
            assert!(report.flows[0].rtt.as_ref().unwrap().replies > 0, "{name}");
        }
    }
}
