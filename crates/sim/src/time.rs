//! Virtual time for the discrete-event simulation.
//!
//! [`SimTime`] is an absolute instant measured in integer nanoseconds since
//! the start of the experiment; [`SimDuration`] is a length of virtual time.
//! Integer nanoseconds give us a deterministic, total order on events and
//! enough resolution to model sub-microsecond serialization delays on
//! multi-gigabit links.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Number of nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant of virtual time, in nanoseconds since experiment start.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every experiment starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// This instant expressed in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative or not finite.
    pub fn from_millis_f64(millis: f64) -> Self {
        assert!(
            millis.is_finite() && millis >= 0.0,
            "invalid duration: {millis}"
        );
        SimDuration((millis * NANOS_PER_MILLI as f64).round() as u64)
    }

    /// Raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// This duration expressed in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// This duration expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// This duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the duration by a non-negative factor, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// Adds a duration, saturating at [`SimDuration::MAX`].
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Subtracts a duration, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= NANOS_PER_MICRO {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(5).as_millis(), 5);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimDuration::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1500);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1500);
        let d = t - SimTime::from_millis(200);
        assert_eq!(d.as_millis(), 1300);
        assert_eq!((SimDuration::from_secs(4) / 2).as_secs_f64(), 2.0);
        assert_eq!((SimDuration::from_secs(2) * 3).as_secs_f64(), 6.0);
    }

    #[test]
    fn saturating_operations() {
        let earlier = SimTime::from_secs(10);
        let later = SimTime::from_secs(4);
        assert_eq!(later.saturating_since(earlier), SimDuration::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fractional_seconds() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_millis(), 1250);
        let d = SimDuration::from_secs_f64(0.001);
        assert_eq!(d.as_millis(), 1);
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_secs(2).mul_f64(1.5);
        assert_eq!(d.as_millis(), 3000);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(9)), "9us");
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3),
            SimTime::from_millis(10),
            SimTime::ZERO,
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3));
    }
}
