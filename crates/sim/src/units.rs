//! Strongly-typed bandwidth and data-size units.
//!
//! The Kollaps evaluation mixes kilobits, megabits and gigabits per second
//! (Table 2 alone spans 128 Kb/s to 4 Gb/s); keeping bandwidth and data sizes
//! in dedicated types avoids the classic bits-vs-bytes mistakes when
//! computing serialization delays and throughput.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, NANOS_PER_SEC};

/// A bandwidth (link capacity or rate), stored as bits per second.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Bandwidth(u64);

/// An amount of data, stored in bytes.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct DataSize(u64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0);
    /// The largest representable bandwidth, used as an "unlimited" sentinel.
    pub const MAX: Bandwidth = Bandwidth(u64::MAX);

    /// Creates a bandwidth from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Creates a bandwidth from kilobits per second (1 Kb/s = 1000 b/s).
    pub const fn from_kbps(kbps: u64) -> Self {
        Bandwidth(kbps * 1_000)
    }

    /// Creates a bandwidth from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps * 1_000_000)
    }

    /// Creates a bandwidth from fractional megabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is negative or not finite.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps >= 0.0, "invalid bandwidth: {mbps}");
        Bandwidth((mbps * 1_000_000.0).round() as u64)
    }

    /// Creates a bandwidth from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Kilobits per second.
    pub fn as_kbps(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// `true` if this is the zero bandwidth.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time needed to serialize `size` at this rate.
    ///
    /// Returns [`SimDuration::MAX`] for zero bandwidth; returns
    /// [`SimDuration::ZERO`] when the bandwidth is the unlimited sentinel.
    pub fn transmission_delay(self, size: DataSize) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        if self == Bandwidth::MAX {
            return SimDuration::ZERO;
        }
        let bits = size.as_bits() as u128;
        let nanos = bits * NANOS_PER_SEC as u128 / self.0 as u128;
        SimDuration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }

    /// The amount of data that can be sent in `dur` at this rate.
    pub fn data_in(self, dur: SimDuration) -> DataSize {
        if self == Bandwidth::MAX {
            return DataSize::from_bytes(u64::MAX);
        }
        let bits = self.0 as u128 * dur.as_nanos() as u128 / NANOS_PER_SEC as u128;
        DataSize::from_bytes((bits / 8).min(u64::MAX as u128) as u64)
    }

    /// Scales this bandwidth by a non-negative factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Bandwidth {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor");
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            Bandwidth::MAX
        } else {
            Bandwidth(scaled.round() as u64)
        }
    }

    /// Fraction `self / other` as a float; returns 0 when `other` is zero.
    pub fn ratio(self, other: Bandwidth) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.saturating_add(other.0))
    }
}

impl DataSize {
    /// Zero bytes.
    pub const ZERO: DataSize = DataSize(0);

    /// Creates a size from bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        DataSize(bytes)
    }

    /// Creates a size from kilobytes (1 KB = 1000 bytes).
    pub const fn from_kilobytes(kb: u64) -> Self {
        DataSize(kb * 1_000)
    }

    /// Creates a size from kibibytes (1 KiB = 1024 bytes).
    pub const fn from_kib(kib: u64) -> Self {
        DataSize(kib * 1_024)
    }

    /// Creates a size from megabytes (1 MB = 10^6 bytes).
    pub const fn from_megabytes(mb: u64) -> Self {
        DataSize(mb * 1_000_000)
    }

    /// Number of bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Number of bits.
    pub const fn as_bits(self) -> u64 {
        self.0 * 8
    }

    /// Kilobytes as a float.
    pub fn as_kilobytes(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `true` if this is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: DataSize) -> DataSize {
        DataSize(self.0.saturating_sub(other.0))
    }

    /// The average rate obtained by transferring this amount over `dur`.
    pub fn rate_over(self, dur: SimDuration) -> Bandwidth {
        if dur.is_zero() {
            return Bandwidth::MAX;
        }
        let bps = self.as_bits() as u128 * NANOS_PER_SEC as u128 / dur.as_nanos() as u128;
        Bandwidth::from_bps(bps.min(u64::MAX as u128) as u64)
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl AddAssign for Bandwidth {
    fn add_assign(&mut self, rhs: Bandwidth) {
        self.0 += rhs.0;
    }
}

impl Sub for Bandwidth {
    type Output = Bandwidth;
    fn sub(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 - rhs.0)
    }
}

impl Add for DataSize {
    type Output = DataSize;
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 + rhs.0)
    }
}

impl AddAssign for DataSize {
    fn add_assign(&mut self, rhs: DataSize) {
        self.0 += rhs.0;
    }
}

impl Sub for DataSize {
    type Output = DataSize;
    fn sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 - rhs.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gb/s", self.as_gbps())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mb/s", self.as_mbps())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}Kb/s", self.as_kbps())
        } else {
            write!(f, "{}b/s", self.0)
        }
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}KB", self.as_kilobytes())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(Bandwidth::from_kbps(128).as_bps(), 128_000);
        assert_eq!(Bandwidth::from_mbps(100).as_mbps(), 100.0);
        assert_eq!(Bandwidth::from_gbps(1).as_gbps(), 1.0);
        assert_eq!(Bandwidth::from_mbps_f64(0.5).as_kbps(), 500.0);
    }

    #[test]
    fn data_size_conversions() {
        assert_eq!(DataSize::from_kilobytes(2).as_bytes(), 2_000);
        assert_eq!(DataSize::from_kib(2).as_bytes(), 2_048);
        assert_eq!(DataSize::from_bytes(10).as_bits(), 80);
    }

    #[test]
    fn transmission_delay_matches_hand_calculation() {
        // 1500 bytes at 100 Mb/s = 12000 bits / 1e8 bps = 120 us.
        let d = Bandwidth::from_mbps(100).transmission_delay(DataSize::from_bytes(1500));
        assert_eq!(d.as_micros(), 120);
        // Zero bandwidth never finishes.
        assert_eq!(
            Bandwidth::ZERO.transmission_delay(DataSize::from_bytes(1)),
            SimDuration::MAX
        );
        // Unlimited bandwidth is instantaneous.
        assert_eq!(
            Bandwidth::MAX.transmission_delay(DataSize::from_megabytes(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn data_in_window() {
        // 50 Mb/s for 1 second = 6.25 MB.
        let d = Bandwidth::from_mbps(50).data_in(SimDuration::from_secs(1));
        assert_eq!(d.as_bytes(), 6_250_000);
    }

    #[test]
    fn rate_over_window() {
        let rate = DataSize::from_megabytes(1).rate_over(SimDuration::from_secs(1));
        assert_eq!(rate.as_mbps(), 8.0);
        assert_eq!(
            DataSize::from_bytes(10).rate_over(SimDuration::ZERO),
            Bandwidth::MAX
        );
    }

    #[test]
    fn ratio_and_scale() {
        let a = Bandwidth::from_mbps(25);
        let b = Bandwidth::from_mbps(100);
        assert_eq!(a.ratio(b), 0.25);
        assert_eq!(b.mul_f64(0.5).as_mbps(), 50.0);
        assert_eq!(a.ratio(Bandwidth::ZERO), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bandwidth::from_gbps(2)), "2.00Gb/s");
        assert_eq!(format!("{}", Bandwidth::from_mbps(50)), "50.00Mb/s");
        assert_eq!(format!("{}", Bandwidth::from_kbps(128)), "128.00Kb/s");
        assert_eq!(format!("{}", DataSize::from_bytes(64_000)), "64.00KB");
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(
            Bandwidth::from_mbps(1).saturating_sub(Bandwidth::from_mbps(5)),
            Bandwidth::ZERO
        );
        assert_eq!(
            Bandwidth::MAX.saturating_add(Bandwidth::from_mbps(5)),
            Bandwidth::MAX
        );
        assert_eq!(
            DataSize::from_bytes(5).saturating_sub(DataSize::from_bytes(9)),
            DataSize::ZERO
        );
    }
}
