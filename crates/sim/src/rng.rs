//! Deterministic random number generation and jitter distributions.
//!
//! Kollaps' netem model draws per-packet delay jitter from a configurable
//! distribution (the paper defaults to a normal distribution with mean equal
//! to the link latency and standard deviation equal to the jitter attribute).
//! This module provides a seeded RNG plus the distributions needed by the
//! netem model and the workload generators.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A seeded random number generator with simulation-friendly helpers.
///
/// All randomness in an experiment flows through [`SimRng`] instances derived
/// from the experiment seed, making runs reproducible.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// consumers (e.g. one stream per link or per client).
    pub fn derive(&self, stream: u64) -> SimRng {
        // Mix with SplitMix64 so neighbouring streams are decorrelated.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z ^ 0xA076_1D64_78BD_642F)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn gen_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range");
        self.inner.gen_range(low..high)
    }

    /// Uniform index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot index into an empty collection");
        self.inner.gen_range(0..len)
    }

    /// A Bernoulli trial that succeeds with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Draws a sample from `dist`.
    pub fn sample(&mut self, dist: &Distribution) -> f64 {
        dist.sample(self)
    }

    /// Standard normal variate via the Box-Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by keeping u1 strictly positive.
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Exponential variate with the given rate parameter (`lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// A parametric distribution used for jitter and workload inter-arrivals.
///
/// The netem model in the original system supports normal (default),
/// uniform and pareto jitter distributions; all values are in the unit of the
/// quantity being drawn (milliseconds for jitter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Always returns the same value.
    Constant(f64),
    /// Uniform over `[low, high]`.
    Uniform {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (inclusive).
        high: f64,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation of the distribution.
        std_dev: f64,
    },
    /// Pareto with the given scale (minimum value) and shape.
    Pareto {
        /// Scale (minimum value, > 0).
        scale: f64,
        /// Shape parameter (> 0); smaller means heavier tail.
        shape: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution (> 0).
        mean: f64,
    },
}

impl Distribution {
    /// Draws a sample using `rng`.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Distribution::Constant(v) => v,
            Distribution::Uniform { low, high } => {
                if high <= low {
                    low
                } else {
                    low + rng.next_f64() * (high - low)
                }
            }
            Distribution::Normal { mean, std_dev } => mean + std_dev * rng.standard_normal(),
            Distribution::Pareto { scale, shape } => {
                let u = rng.next_f64().max(f64::MIN_POSITIVE);
                scale / u.powf(1.0 / shape.max(f64::MIN_POSITIVE))
            }
            Distribution::Exponential { mean } => {
                rng.exponential(1.0 / mean.max(f64::MIN_POSITIVE))
            }
        }
    }

    /// The analytical mean of the distribution (where defined).
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Constant(v) => v,
            Distribution::Uniform { low, high } => (low + high) / 2.0,
            Distribution::Normal { mean, .. } => mean,
            Distribution::Pareto { scale, shape } => {
                if shape > 1.0 {
                    shape * scale / (shape - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Distribution::Exponential { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let root = SimRng::new(7);
        let mut a = root.derive(1);
        let mut b = root.derive(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "derived streams should be decorrelated");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(2);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        let p = hits as f64 / 10_000.0;
        assert!((p - 0.3).abs() < 0.03, "empirical p = {p}");
    }

    #[test]
    fn normal_distribution_moments() {
        let mut rng = SimRng::new(3);
        let dist = Distribution::Normal {
            mean: 10.0,
            std_dev: 2.0,
        };
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std = {}", var.sqrt());
    }

    #[test]
    fn uniform_distribution_bounds() {
        let mut rng = SimRng::new(4);
        let dist = Distribution::Uniform {
            low: 5.0,
            high: 6.0,
        };
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((5.0..=6.0).contains(&v));
        }
        assert_eq!(dist.mean(), 5.5);
    }

    #[test]
    fn pareto_distribution_above_scale() {
        let mut rng = SimRng::new(5);
        let dist = Distribution::Pareto {
            scale: 1.0,
            shape: 3.0,
        };
        for _ in 0..1000 {
            assert!(dist.sample(&mut rng) >= 1.0);
        }
        assert!((dist.mean() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn exponential_mean_is_respected() {
        let mut rng = SimRng::new(6);
        let dist = Distribution::Exponential { mean: 4.0 };
        let n = 50_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn constant_distribution() {
        let mut rng = SimRng::new(9);
        let dist = Distribution::Constant(2.5);
        assert_eq!(dist.sample(&mut rng), 2.5);
        assert_eq!(dist.mean(), 2.5);
    }
}
