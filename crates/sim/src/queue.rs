//! Deterministic future-event list.
//!
//! The event queue is a binary heap ordered by `(time, sequence)`. The
//! monotonically increasing sequence number guarantees a deterministic,
//! FIFO tie-break for events scheduled at the same instant, which in turn
//! makes every experiment reproducible bit-for-bit for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled for execution at a given virtual time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Tie-break sequence number (assigned by the queue).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list holding events of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
    scheduled: u64,
    executed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
            executed: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Total number of events executed (popped) over the queue's lifetime.
    pub fn total_executed(&self) -> u64 {
        self.executed
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current virtual time: scheduling
    /// into the past would silently reorder causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(ScheduledEvent {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        self.executed += 1;
        Some((ev.time, ev.event))
    }

    /// Pops the next event only if it fires at or before `deadline`.
    ///
    /// When the next event is after `deadline`, the clock advances to
    /// `deadline` and `None` is returned.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Removes all pending events, leaving the clock untouched.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_millis(30));
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "first");
        let _ = q.pop();
        q.schedule_in(SimDuration::from_secs(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(7));
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        let _ = q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "early");
        q.schedule(SimTime::from_secs(10), "late");
        assert!(q.pop_until(SimTime::from_secs(5)).is_some());
        assert!(q.pop_until(SimTime::from_secs(5)).is_none());
        // The clock advanced to the deadline even though nothing fired.
        assert_eq!(q.now(), SimTime::from_secs(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule(SimTime::from_millis(i as u64), i);
        }
        for _ in 0..4 {
            q.pop();
        }
        assert_eq!(q.total_scheduled(), 10);
        assert_eq!(q.total_executed(), 4);
        assert_eq!(q.len(), 6);
        q.clear();
        assert!(q.is_empty());
    }
}
