//! Measurement and error-metric helpers used by the evaluation harness.
//!
//! The paper reports averages, percentiles (Figure 9), mean squared errors
//! (Table 3, Table 4), deviation-from-baseline percentages (Figures 5 and 7)
//! and throughput time series (Figures 6 and 8). The types in this module
//! compute all of those from raw samples.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};
use crate::units::{Bandwidth, DataSize};

/// A collection of scalar samples with summary statistics.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds a sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Population variance, or 0 if empty.
    pub fn variance(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Maximum sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The `p`-th percentile (0-100) using nearest-rank on sorted samples.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A bounded ring buffer of the most recent samples with lossless running
/// aggregates.
///
/// Long-lived telemetry accumulation (a session streaming flow samples for
/// hours) cannot keep every sample the way [`Summary`] does: memory here
/// stays `O(capacity)` while `count`/`mean`/`min`/`max` remain exact over
/// the whole lifetime. Percentiles are computed over the retained window —
/// exact until the ring wraps, recent-window estimates afterwards (pair
/// with a [`Histogram`] when a whole-lifetime percentile is needed past
/// the wrap point, as the scenario telemetry aggregator does).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleSet {
    capacity: usize,
    ring: Vec<f64>,
    head: usize,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl SampleSet {
    /// Creates a set retaining at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SampleSet {
            capacity,
            ring: Vec::new(),
            head: 0,
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample, evicting the oldest retained one when full.
    pub fn record(&mut self, value: f64) {
        if self.ring.len() < self.capacity {
            self.ring.push(value);
        } else {
            self.ring[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples currently retained in the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total samples recorded over the set's lifetime, evicted included.
    pub fn total_count(&self) -> u64 {
        self.total
    }

    /// Samples that have been evicted from the window (`0` until the ring
    /// wraps — while it is `0`, [`SampleSet::percentile`] is exact).
    pub fn dropped(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    /// Lifetime arithmetic mean (all samples, evicted included), or 0 if
    /// empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Lifetime minimum, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Lifetime maximum, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `p`-th percentile (0-100) over the retained window, nearest-rank
    /// on the sorted samples; 0 if empty. Exact while
    /// [`SampleSet::dropped`] is 0.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.ring.is_empty() {
            return 0.0;
        }
        let mut sorted = self.ring.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

/// A fixed-bucket-width histogram for latency-style measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given bucket width and upper bound;
    /// values above the bound land in the final (overflow) bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `upper_bound` is not strictly positive.
    pub fn new(bucket_width: f64, upper_bound: f64) -> Self {
        assert!(bucket_width > 0.0, "bucket width must be positive");
        assert!(upper_bound > 0.0, "upper bound must be positive");
        let n = (upper_bound / bucket_width).ceil() as usize + 1;
        Histogram {
            bucket_width,
            buckets: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a value (negative values clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = ((v / self.bucket_width) as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum recorded value, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum recorded value, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate `p`-th percentile (0-100) from the bucket boundaries.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return (i as f64 + 1.0) * self.bucket_width;
            }
        }
        self.max
    }
}

/// A point in a throughput/latency time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// When the sample was taken.
    pub time: SimTime,
    /// The sampled value.
    pub value: f64,
}

/// A time series of scalar samples (e.g. Mb/s per second of an iPerf run).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample taken at `time`.
    pub fn record(&mut self, time: SimTime, value: f64) {
        self.points.push(TimePoint { time, value });
    }

    /// The recorded points in insertion order.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of all values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean of the values whose timestamps fall in `[from, to)`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.time >= from && p.time < to)
            .map(|p| p.value)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// The value of the sample closest in time to `t`, or 0 if empty.
    pub fn value_at(&self, t: SimTime) -> f64 {
        self.points
            .iter()
            .min_by_key(|p| {
                let d = if p.time > t { p.time - t } else { t - p.time };
                d.as_nanos()
            })
            .map(|p| p.value)
            .unwrap_or(0.0)
    }
}

/// Measures an average rate over fixed windows from byte-count increments.
#[derive(Debug, Clone)]
pub struct RateMeter {
    window: SimDuration,
    window_start: SimTime,
    bytes_in_window: DataSize,
    total_bytes: DataSize,
    series: TimeSeries,
}

impl RateMeter {
    /// Creates a meter that reports one averaged rate sample per `window`.
    pub fn new(window: SimDuration) -> Self {
        RateMeter {
            window,
            window_start: SimTime::ZERO,
            bytes_in_window: DataSize::ZERO,
            total_bytes: DataSize::ZERO,
            series: TimeSeries::new(),
        }
    }

    /// Accounts `bytes` delivered at time `now`, closing windows as needed.
    pub fn record(&mut self, now: SimTime, bytes: DataSize) {
        self.roll(now);
        self.bytes_in_window += bytes;
        self.total_bytes += bytes;
    }

    /// Closes any windows that ended before `now` (recording their averages)
    /// without adding new bytes.
    pub fn roll(&mut self, now: SimTime) {
        while now >= self.window_start + self.window {
            let rate = self.bytes_in_window.rate_over(self.window);
            self.series
                .record(self.window_start + self.window, rate.as_mbps());
            self.bytes_in_window = DataSize::ZERO;
            self.window_start += self.window;
        }
    }

    /// Total bytes recorded over the meter's lifetime.
    pub fn total_bytes(&self) -> DataSize {
        self.total_bytes
    }

    /// The average rate over `[SimTime::ZERO, now]`.
    pub fn average_rate(&self, now: SimTime) -> Bandwidth {
        if now == SimTime::ZERO {
            return Bandwidth::ZERO;
        }
        self.total_bytes.rate_over(now - SimTime::ZERO)
    }

    /// The per-window rate series in Mb/s.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn mean_squared_error(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    if observed.is_empty() {
        return 0.0;
    }
    observed
        .iter()
        .zip(expected)
        .map(|(o, e)| (o - e).powi(2))
        .sum::<f64>()
        / observed.len() as f64
}

/// Relative deviation `|1 - observed/baseline|` expressed as a percentage,
/// the error metric of Figures 5 and 7. Returns 0 when the baseline is 0.
pub fn deviation_percent(observed: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (1.0 - observed / baseline).abs() * 100.0
    }
}

/// Signed relative error `(observed - expected) / expected` as a percentage,
/// the format of Table 2 ("122 (-5%)"). Returns 0 when `expected` is 0.
pub fn relative_error_percent(observed: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        0.0
    } else {
        (observed - expected) / expected * 100.0
    }
}

/// Exponentially weighted moving average.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Feeds a new observation and returns the updated average.
    pub fn update(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(prev) => prev + self.alpha * (sample - prev),
        };
        self.value = Some(v);
        v
    }

    /// The current average, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.len(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.median(), 5.0);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
    }

    #[test]
    fn summary_percentiles() {
        let mut s = Summary::new();
        for i in 1..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        let p90 = s.percentile(90.0);
        assert!((89.0..=91.0).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn histogram_counts_and_percentiles() {
        let mut h = Histogram::new(1.0, 100.0);
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        let p50 = h.percentile(50.0);
        assert!((49.0..=52.0).contains(&p50), "p50 = {p50}");
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(1.0, 10.0);
        h.record(1000.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1000.0);
        assert!(h.percentile(99.0) >= 10.0);
    }

    #[test]
    fn sample_set_empty_is_zero() {
        let s = SampleSet::new(8);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.total_count(), 0);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.percentile(100.0), 0.0);
    }

    #[test]
    fn sample_set_single_sample_is_every_percentile() {
        let mut s = SampleSet::new(8);
        s.record(42.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 42.0);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), 42.0, "p{p}");
        }
    }

    #[test]
    fn sample_set_p0_and_p100_are_window_extremes() {
        let mut s = SampleSet::new(128);
        for i in 1..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        // Out-of-range p clamps instead of indexing out of bounds.
        assert_eq!(s.percentile(-5.0), 1.0);
        assert_eq!(s.percentile(250.0), 100.0);
        let p90 = s.percentile(90.0);
        assert!((89.0..=91.0).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn sample_set_ring_evicts_oldest_but_keeps_lifetime_aggregates() {
        let mut s = SampleSet::new(4);
        for i in 1..=10 {
            s.record(i as f64);
        }
        // Window holds 7..=10; lifetime aggregates still cover 1..=10.
        assert_eq!(s.len(), 4);
        assert_eq!(s.total_count(), 10);
        assert_eq!(s.dropped(), 6);
        assert_eq!(s.mean(), 5.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.percentile(0.0), 7.0);
        assert_eq!(s.percentile(100.0), 10.0);
    }

    #[test]
    fn summary_single_sample_is_every_percentile() {
        let mut s = Summary::new();
        s.record(7.5);
        for p in [0.0, 50.0, 90.0, 100.0] {
            assert_eq!(s.percentile(p), 7.5, "p{p}");
        }
    }

    /// For in-range values the histogram percentile reports a bucket upper
    /// edge: at most one bucket width above the true sample, plus at most
    /// one more width when its ceil-rank and the exact nearest-rank
    /// straddle a bucket boundary — a two-bucket-width error bound.
    #[test]
    fn histogram_percentile_error_is_bounded_by_bucket_width() {
        let width = 2.5;
        let mut h = Histogram::new(width, 100.0);
        let mut exact = Summary::new();
        for i in 1..=1000 {
            let v = (i % 97) as f64 + 0.37;
            h.record(v);
            exact.record(v);
        }
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let approx = h.percentile(p);
            let truth = exact.percentile(p);
            assert!(
                (approx - truth).abs() <= 2.0 * width,
                "p{p}: histogram {approx} vs exact {truth} (width {width})"
            );
        }
    }

    /// Values past the upper bound collapse into the single overflow
    /// bucket: percentiles that land there report the overflow boundary
    /// (the approximation floor), while min/max stay exact.
    #[test]
    fn histogram_overflow_bucket_percentile_approximation() {
        let width = 1.0;
        let upper = 10.0;
        let mut h = Histogram::new(width, upper);
        for v in [1.0, 2.0, 3.0, 500.0, 1000.0] {
            h.record(v);
        }
        // p100 lands in the overflow bucket: the reported value is its
        // upper edge — bounded, never the (unknowable) raw overflow value.
        let p100 = h.percentile(100.0);
        assert!(
            p100 >= upper && p100 <= upper + 2.0 * width,
            "overflow percentile {p100} must clamp near the bound {upper}"
        );
        // Percentiles below the overflow mass stay exact to bucket width.
        assert!((h.percentile(40.0) - 2.0).abs() <= width);
        // Exact extremes survive aggregation.
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
    }

    #[test]
    fn time_series_window_mean() {
        let mut ts = TimeSeries::new();
        for sec in 0..10 {
            ts.record(SimTime::from_secs(sec), sec as f64);
        }
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.mean(), 4.5);
        assert_eq!(
            ts.mean_between(SimTime::from_secs(2), SimTime::from_secs(5)),
            3.0
        );
        assert_eq!(ts.value_at(SimTime::from_millis(3_400)), 3.0);
    }

    #[test]
    fn rate_meter_windows() {
        let mut m = RateMeter::new(SimDuration::from_secs(1));
        // 1 MB in the first second, 2 MB in the second.
        m.record(SimTime::from_millis(500), DataSize::from_megabytes(1));
        m.record(SimTime::from_millis(1_500), DataSize::from_megabytes(2));
        m.roll(SimTime::from_secs(3));
        let pts = m.series().points();
        assert_eq!(pts.len(), 3);
        assert!((pts[0].value - 8.0).abs() < 1e-9, "first window 8 Mb/s");
        assert!((pts[1].value - 16.0).abs() < 1e-9, "second window 16 Mb/s");
        assert_eq!(pts[2].value, 0.0);
        assert_eq!(m.total_bytes().as_bytes(), 3_000_000);
        assert!((m.average_rate(SimTime::from_secs(3)).as_mbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn error_metrics() {
        assert_eq!(mean_squared_error(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(deviation_percent(95.0, 100.0), 5.000000000000004);
        assert_eq!(relative_error_percent(122.0, 128.0), -4.6875);
        assert_eq!(deviation_percent(10.0, 0.0), 0.0);
        assert_eq!(relative_error_percent(10.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn mse_length_mismatch_panics() {
        let _ = mean_squared_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(20.0), 15.0);
        assert_eq!(e.update(20.0), 17.5);
        assert_eq!(e.value(), Some(17.5));
    }
}
