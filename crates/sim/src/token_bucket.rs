//! Token-bucket rate limiter.
//!
//! This is the primitive behind the HTB qdisc model in `kollaps-netmodel`
//! and the application-side rate limiters in `kollaps-workloads`. Tokens are
//! accounted in *bytes* and refill continuously at the configured rate, up to
//! a burst ceiling.

use crate::time::{SimDuration, SimTime};
use crate::units::{Bandwidth, DataSize};

/// A continuous-refill token bucket measured in bytes.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: Bandwidth,
    burst: DataSize,
    /// Available tokens in fractional bytes.
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate` with a maximum burst of `burst`
    /// bytes. The bucket starts full.
    pub fn new(rate: Bandwidth, burst: DataSize) -> Self {
        TokenBucket {
            rate,
            burst,
            tokens: burst.as_bytes() as f64,
            last_refill: SimTime::ZERO,
        }
    }

    /// The configured refill rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// The configured burst size.
    pub fn burst(&self) -> DataSize {
        self.burst
    }

    /// Changes the refill rate, keeping the accumulated tokens.
    pub fn set_rate(&mut self, now: SimTime, rate: Bandwidth) {
        self.refill(now);
        self.rate = rate;
    }

    /// Changes the burst ceiling, clamping the stored tokens if needed.
    pub fn set_burst(&mut self, burst: DataSize) {
        self.burst = burst;
        self.tokens = self.tokens.min(burst.as_bytes() as f64);
    }

    /// Currently available whole tokens (bytes) at time `now`.
    pub fn available(&mut self, now: SimTime) -> DataSize {
        self.refill(now);
        DataSize::from_bytes(self.tokens as u64)
    }

    /// Attempts to consume `size` bytes at time `now`.
    ///
    /// Returns `true` (and debits the bucket) when enough tokens are
    /// available, `false` otherwise.
    pub fn try_consume(&mut self, now: SimTime, size: DataSize) -> bool {
        self.refill(now);
        let need = size.as_bytes() as f64;
        // The slack absorbs float accumulation error plus the sub-byte
        // shortfall of an availability time rounded to whole nanoseconds —
        // without it, a caller that asks `time_until_available` and then
        // consumes at exactly that instant could spin forever one fraction
        // of a byte short.
        if self.tokens + 1e-3 >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }

    /// Consumes `size` bytes unconditionally, allowing the bucket to go
    /// negative (used to model the HTB behaviour of finishing an in-flight
    /// packet and paying for it afterwards).
    pub fn consume_debt(&mut self, now: SimTime, size: DataSize) {
        self.refill(now);
        self.tokens -= size.as_bytes() as f64;
    }

    /// Time until `size` bytes worth of tokens will be available, from `now`.
    ///
    /// Returns [`SimDuration::ZERO`] if they already are, and
    /// [`SimDuration::MAX`] if the rate is zero and the deficit can never be
    /// repaid.
    pub fn time_until_available(&mut self, now: SimTime, size: DataSize) -> SimDuration {
        self.refill(now);
        let need = size.as_bytes() as f64;
        let deficit = need - self.tokens;
        if deficit <= 0.0 {
            return SimDuration::ZERO;
        }
        if self.rate.is_zero() {
            return SimDuration::MAX;
        }
        let bytes_per_sec = self.rate.as_bps() as f64 / 8.0;
        // Round up to the next whole nanosecond so that consuming at
        // `now + wait` is guaranteed to succeed.
        let nanos = (deficit / bytes_per_sec * 1e9).ceil();
        SimDuration::from_nanos(nanos as u64)
    }

    fn refill(&mut self, now: SimTime) {
        if now <= self.last_refill {
            return;
        }
        let elapsed = now - self.last_refill;
        self.last_refill = now;
        if self.rate == Bandwidth::MAX {
            self.tokens = self.burst.as_bytes() as f64;
            return;
        }
        let added = self.rate.as_bps() as f64 / 8.0 * elapsed.as_secs_f64();
        self.tokens = (self.tokens + added).min(self.burst.as_bytes() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: u64) -> Bandwidth {
        Bandwidth::from_mbps(m)
    }

    #[test]
    fn starts_full_and_consumes() {
        let mut tb = TokenBucket::new(mbps(8), DataSize::from_bytes(10_000));
        assert!(tb.try_consume(SimTime::ZERO, DataSize::from_bytes(10_000)));
        assert!(!tb.try_consume(SimTime::ZERO, DataSize::from_bytes(1)));
    }

    #[test]
    fn refills_at_configured_rate() {
        // 8 Mb/s = 1 MB/s.
        let mut tb = TokenBucket::new(mbps(8), DataSize::from_bytes(1_000_000));
        assert!(tb.try_consume(SimTime::ZERO, DataSize::from_bytes(1_000_000)));
        // After 0.5 s, 500 KB of tokens should be back.
        let now = SimTime::from_millis(500);
        assert!(tb.try_consume(now, DataSize::from_bytes(499_000)));
        assert!(!tb.try_consume(now, DataSize::from_bytes(5_000)));
    }

    #[test]
    fn burst_is_a_ceiling() {
        let mut tb = TokenBucket::new(mbps(8), DataSize::from_bytes(1_000));
        // Even after a long idle period tokens cap at the burst size.
        let now = SimTime::from_secs(100);
        assert_eq!(tb.available(now).as_bytes(), 1_000);
    }

    #[test]
    fn time_until_available_matches_rate() {
        let mut tb = TokenBucket::new(mbps(8), DataSize::from_bytes(1_000_000));
        tb.consume_debt(SimTime::ZERO, DataSize::from_bytes(1_000_000));
        // Needs another 500 KB: at 1 MB/s that is 0.5 s.
        let wait = tb.time_until_available(SimTime::ZERO, DataSize::from_bytes(500_000));
        assert!((wait.as_secs_f64() - 0.5).abs() < 1e-6);
        // Zero-rate bucket never refills.
        let mut stalled = TokenBucket::new(Bandwidth::ZERO, DataSize::from_bytes(10));
        stalled.consume_debt(SimTime::ZERO, DataSize::from_bytes(100));
        assert_eq!(
            stalled.time_until_available(SimTime::ZERO, DataSize::from_bytes(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn debt_is_repaid_before_new_sends() {
        let mut tb = TokenBucket::new(mbps(8), DataSize::from_bytes(2_000));
        tb.consume_debt(SimTime::ZERO, DataSize::from_bytes(4_000));
        assert!(!tb.try_consume(SimTime::from_millis(1), DataSize::from_bytes(1)));
        // 1 MB/s * 3 ms = 3000 bytes, enough to clear the 2000-byte debt and
        // accumulate 1000 tokens.
        assert!(tb.try_consume(SimTime::from_millis(3), DataSize::from_bytes(900)));
    }

    #[test]
    fn rate_change_takes_effect() {
        let mut tb = TokenBucket::new(mbps(8), DataSize::from_bytes(1_000_000));
        tb.consume_debt(SimTime::ZERO, DataSize::from_bytes(1_000_000));
        tb.set_rate(SimTime::ZERO, mbps(80));
        // At 10 MB/s, 100 ms restores 1 MB.
        assert!(tb.try_consume(SimTime::from_millis(100), DataSize::from_bytes(990_000)));
    }

    #[test]
    fn unlimited_rate_always_allows() {
        let mut tb = TokenBucket::new(Bandwidth::MAX, DataSize::from_bytes(1_500));
        for i in 0..100u64 {
            assert!(tb.try_consume(SimTime::from_nanos(i), DataSize::from_bytes(1_500)));
        }
    }
}
