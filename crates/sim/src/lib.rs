//! # kollaps-sim
//!
//! Deterministic discrete-event simulation substrate used by every other
//! crate in the Kollaps reproduction.
//!
//! The original Kollaps system (EuroSys'20) runs against the real Linux
//! kernel dataplane on a physical cluster. This repository reproduces the
//! whole stack in simulation, and this crate provides the common ground:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual clock.
//! * [`EventQueue`] — a stable, deterministic future-event list.
//! * [`SimRng`] — seeded random number generation and the jitter
//!   distributions used by the netem model (normal, uniform, pareto).
//! * [`units`] — strongly-typed bandwidth ([`Bandwidth`]) and data sizes
//!   ([`DataSize`]) so that bits, bytes and seconds never get mixed up.
//! * [`stats`] — histograms with percentiles, time series, rate meters and
//!   the error metrics (MSE, deviation-from-baseline) used throughout the
//!   paper's evaluation section.
//! * [`token_bucket`] — the token-bucket primitive shared by the HTB qdisc
//!   model and the workload rate limiters.
//!
//! Everything is deterministic given a seed: the same experiment run twice
//! produces byte-identical results, which is the property the paper argues
//! emulation should give back to systems evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom backstop for the hot paths: kollaps-analyze's
// `hot-path-panic` rule is the enforced gate; clippy flags what the
// heuristic scanner structurally cannot see (unwraps behind macros etc.).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod token_bucket;
pub mod units;

pub use queue::{EventQueue, ScheduledEvent};
pub use rng::{Distribution, SimRng};
pub use time::{SimDuration, SimTime};
pub use token_bucket::TokenBucket;
pub use units::{Bandwidth, DataSize};

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::queue::EventQueue;
    pub use crate::rng::{Distribution, SimRng};
    pub use crate::stats::{Histogram, RateMeter, SampleSet, Summary, TimeSeries};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::token_bucket::TokenBucket;
    pub use crate::units::{Bandwidth, DataSize};
}
