//! Perturbation-tolerant flight recorder for the Kollaps emulation core.
//!
//! Large-scale emulation runs cannot be tuned from end-of-run aggregates
//! alone: the interesting questions — where does a tick spend its time,
//! how long did a worker wait at the barrier, what did an allocation round
//! cost — need *structured traces*. At the same time the recorder must
//! never perturb the run it observes: Kollaps reports are property-pinned
//! byte-identical across thread counts, so instrumentation has to be
//! wall-clock-only and a strict no-op when disabled.
//!
//! The design follows classic flight recorders:
//!
//! * a [`Recorder`] handle is a cheap clone of an `Arc`; the disabled
//!   recorder holds no allocation, takes no timestamps, and every call on
//!   it returns immediately;
//! * events land in per-*lane* bounded ring buffers (lane 0 is the
//!   control/dataplane lane, lanes `1..` are per-manager worker lanes), so
//!   concurrent workers never contend on one lock and a runaway run can
//!   only ever cost a fixed amount of memory — old events are dropped and
//!   counted, never reallocated;
//! * timestamps come from one shared monotonic epoch
//!   ([`std::time::Instant`]), cheap enough for per-phase spans;
//! * exporters turn the drained event list into Chrome trace-event JSON
//!   (loadable in Perfetto or `chrome://tracing`) or a structured form
//!   built on the vendored `serde_json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde_json::Value;

/// Default bound on buffered events per lane. At ~5 events per tick this
/// covers tens of thousands of ticks before the ring starts recycling.
pub const DEFAULT_LANE_CAPACITY: usize = 65_536;

/// What a single trace [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span opened (`ph: "B"` in Chrome trace terms).
    SpanBegin,
    /// A duration span closed (`ph: "E"`).
    SpanEnd,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A numeric counter sample (`ph: "C"`).
    Counter,
}

impl EventKind {
    /// The Chrome trace-event `ph` phase letter for this kind.
    pub fn phase_letter(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "B",
            EventKind::SpanEnd => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the recorder's epoch (monotonic).
    pub at_micros: u64,
    /// Which lane recorded the event (0 = control/dataplane, `1..` =
    /// per-manager workers). Becomes the Chrome `tid`.
    pub lane: u32,
    /// Global record order, used to keep the merged export stable when
    /// two lanes record at the same microsecond.
    pub seq: u64,
    /// What the event describes.
    pub kind: EventKind,
    /// Event name (phase, span, or counter name).
    pub name: String,
    /// Numeric key/value payload attached to the event.
    pub args: Vec<(String, f64)>,
}

struct Lane {
    events: VecDeque<Event>,
}

struct Inner {
    epoch: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    lanes: Vec<Mutex<Lane>>,
}

impl Inner {
    fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// Handle to the flight recorder. Cloning is cheap (an `Arc` bump); the
/// [`Recorder::disabled`] handle holds nothing and records nothing.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Recorder(disabled)"),
            Some(inner) => write!(f, "Recorder(lanes={})", inner.lanes.len()),
        }
    }
}

impl Recorder {
    /// An enabled recorder with `lanes` ring buffers of the default
    /// per-lane capacity.
    pub fn new(lanes: usize) -> Self {
        Recorder::with_capacity(lanes, DEFAULT_LANE_CAPACITY)
    }

    /// An enabled recorder with `lanes` ring buffers bounded at
    /// `capacity` events each.
    pub fn with_capacity(lanes: usize, capacity: usize) -> Self {
        let lanes = lanes.max(1);
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                capacity: capacity.max(1),
                lanes: (0..lanes)
                    .map(|_| {
                        Mutex::new(Lane {
                            events: VecDeque::new(),
                        })
                    })
                    .collect(),
            })),
        }
    }

    /// The no-op recorder: no allocation, no clock reads, every call
    /// returns immediately.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of lanes (1 minimum when enabled, 0 when disabled).
    pub fn lane_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.lanes.len())
    }

    /// Microseconds since the recorder epoch; 0 when disabled (the
    /// disabled recorder never touches the clock).
    pub fn now_micros(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.now_micros())
    }

    /// Events dropped so far because a lane's ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    fn push(
        &self,
        lane: usize,
        at_micros: u64,
        kind: EventKind,
        name: String,
        args: Vec<(String, f64)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let slot = lane.min(inner.lanes.len() - 1);
        let mut guard = inner.lanes[slot].lock().expect("trace lane poisoned");
        if guard.events.len() >= inner.capacity {
            guard.events.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        guard.events.push_back(Event {
            at_micros,
            lane: slot as u32,
            seq,
            kind,
            name,
            args,
        });
    }

    /// Opens a duration span on `lane`; the span closes (emitting the
    /// matching end event) when the returned guard drops.
    pub fn span(&self, lane: usize, name: &str) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard {
                recorder: Recorder::disabled(),
                lane: 0,
                name: String::new(),
                begin_micros: 0,
                args: Vec::new(),
            };
        }
        let at = self.now_micros();
        self.push(lane, at, EventKind::SpanBegin, name.to_string(), Vec::new());
        SpanGuard {
            recorder: self.clone(),
            lane,
            name: name.to_string(),
            begin_micros: at,
            args: Vec::new(),
        }
    }

    /// Records a point-in-time marker with a numeric payload.
    pub fn instant(&self, lane: usize, name: &str, args: &[(&str, f64)]) {
        if self.inner.is_none() {
            return;
        }
        let at = self.now_micros();
        self.push(
            lane,
            at,
            EventKind::Instant,
            name.to_string(),
            args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        );
    }

    /// Records a counter sample (rendered as a counter track by
    /// Perfetto / `chrome://tracing`).
    pub fn counter(&self, lane: usize, name: &str, value: f64) {
        if self.inner.is_none() {
            return;
        }
        let at = self.now_micros();
        self.push(
            lane,
            at,
            EventKind::Counter,
            name.to_string(),
            vec![(name.to_string(), value)],
        );
    }

    /// Snapshot of every buffered event, merged across lanes and sorted
    /// by `(at_micros, seq)` so the export is a single coherent stream.
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut all = Vec::new();
        for lane in &inner.lanes {
            let guard = lane.lock().expect("trace lane poisoned");
            all.extend(guard.events.iter().cloned());
        }
        all.sort_by_key(|e| (e.at_micros, e.seq));
        all
    }
}

/// RAII guard for an open span: records the end event (with any args
/// attached via [`SpanGuard::arg`]) when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Recorder,
    lane: usize,
    name: String,
    begin_micros: u64,
    args: Vec<(String, f64)>,
}

impl SpanGuard {
    /// Attaches a numeric argument to the span's end event.
    pub fn arg(&mut self, name: &str, value: f64) {
        if self.recorder.is_enabled() {
            self.args.push((name.to_string(), value));
        }
    }

    /// Wall-clock microseconds since the span opened (0 when the
    /// recorder is disabled).
    pub fn elapsed_micros(&self) -> u64 {
        if self.recorder.is_enabled() {
            self.recorder.now_micros().saturating_sub(self.begin_micros)
        } else {
            0
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.recorder.is_enabled() {
            let at = self.recorder.now_micros();
            self.recorder.push(
                self.lane,
                at,
                EventKind::SpanEnd,
                std::mem::take(&mut self.name),
                std::mem::take(&mut self.args),
            );
        }
    }
}

/// Accumulated wall-clock statistics for one named phase: total, call
/// count, and worst case, all in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Sum of all recorded durations, µs.
    pub total_micros: u64,
    /// Number of recorded durations.
    pub count: u64,
    /// Largest single recorded duration, µs.
    pub max_micros: u64,
}

impl PhaseStats {
    /// Folds one measured duration into the stats.
    pub fn record(&mut self, micros: u64) {
        self.total_micros += micros;
        self.count += 1;
        self.max_micros = self.max_micros.max(micros);
    }

    /// Mean duration in µs (0.0 before the first record).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.count as f64
        }
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn args_value(args: &[(String, f64)]) -> Value {
    Value::Object(
        args.iter()
            .map(|(k, v)| (k.clone(), Value::from(*v)))
            .collect(),
    )
}

/// Renders `events` as a Chrome trace-event JSON array (the format
/// `chrome://tracing` and Perfetto load directly): one object per event
/// with `ph`, `ts` (µs), `pid`, `tid`, `name`, and `args`.
pub fn chrome_trace(events: &[Event], pid: u64) -> Value {
    let mut out = Vec::with_capacity(events.len());
    for event in events {
        let mut fields = vec![
            ("name", Value::from(event.name.as_str())),
            ("cat", Value::from("kollaps")),
            ("ph", Value::from(event.kind.phase_letter())),
            ("ts", Value::from(event.at_micros)),
            ("pid", Value::from(pid)),
            ("tid", Value::from(u64::from(event.lane))),
        ];
        if event.kind == EventKind::Instant {
            // Thread-scoped instant marker.
            fields.push(("s", Value::from("t")));
        }
        if !event.args.is_empty() {
            fields.push(("args", args_value(&event.args)));
        }
        out.push(obj(fields));
    }
    Value::Array(out)
}

/// [`chrome_trace`], serialized to a JSON string ready to write to a
/// `.trace.json` file.
pub fn chrome_trace_string(events: &[Event], pid: u64) -> String {
    serde_json::to_string(&chrome_trace(events, pid))
}

/// Merges per-process Chrome traces (as produced by [`chrome_trace`])
/// into one: each input is re-tagged with its index as `pid` and gains a
/// `process_name` metadata event carrying its label, so Perfetto shows
/// one named track group per agent.
pub fn merge_chrome_traces(processes: &[(String, Value)]) -> Value {
    let mut out = Vec::new();
    for (pid, (label, trace)) in processes.iter().enumerate() {
        let pid = pid as u64;
        out.push(obj(vec![
            ("name", Value::from("process_name")),
            ("ph", Value::from("M")),
            ("ts", Value::from(0u64)),
            ("pid", Value::from(pid)),
            ("tid", Value::from(0u64)),
            ("args", obj(vec![("name", Value::from(label.as_str()))])),
        ]));
        let Value::Array(events) = trace else {
            continue;
        };
        for event in events {
            let Value::Object(fields) = event else {
                continue;
            };
            let retagged: Vec<(String, Value)> = fields
                .iter()
                .map(|(k, v)| {
                    if k == "pid" {
                        (k.clone(), Value::from(pid))
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect();
            out.push(Value::Object(retagged));
        }
    }
    Value::Array(out)
}

/// Renders `events` in the structured (non-Chrome) form: an array of
/// `{at_micros, lane, kind, name, args}` objects, for programmatic
/// consumption with the vendored `serde_json`.
pub fn structured_json(events: &[Event]) -> Value {
    let mut out = Vec::with_capacity(events.len());
    for event in events {
        out.push(obj(vec![
            ("at_micros", Value::from(event.at_micros)),
            ("lane", Value::from(u64::from(event.lane))),
            ("kind", Value::from(event.kind.phase_letter())),
            ("name", Value::from(event.name.as_str())),
            ("args", args_value(&event.args)),
        ]));
    }
    Value::Array(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let recorder = Recorder::disabled();
        assert!(!recorder.is_enabled());
        assert_eq!(recorder.lane_count(), 0);
        assert_eq!(recorder.now_micros(), 0);
        {
            let mut span = recorder.span(0, "tick");
            span.arg("x", 1.0);
            assert_eq!(span.elapsed_micros(), 0);
        }
        recorder.instant(0, "marker", &[("v", 2.0)]);
        recorder.counter(1, "flows", 3.0);
        assert!(recorder.events().is_empty());
        assert_eq!(recorder.dropped(), 0);
    }

    #[test]
    fn spans_instants_and_counters_are_recorded_in_order() {
        let recorder = Recorder::new(3);
        {
            let mut span = recorder.span(0, "tick");
            recorder.instant(1, "publish", &[("bytes", 128.0)]);
            recorder.counter(2, "flows", 7.0);
            span.arg("gap", 0.5);
        }
        let events = recorder.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::SpanBegin);
        assert_eq!(events[0].name, "tick");
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[1].lane, 1);
        assert_eq!(events[2].kind, EventKind::Counter);
        assert_eq!(events[2].args, vec![("flows".to_string(), 7.0)]);
        assert_eq!(events[3].kind, EventKind::SpanEnd);
        assert_eq!(events[3].args, vec![("gap".to_string(), 0.5)]);
        // Sorted by (time, seq): monotone within the snapshot.
        for pair in events.windows(2) {
            assert!((pair[0].at_micros, pair[0].seq) <= (pair[1].at_micros, pair[1].seq));
        }
    }

    #[test]
    fn lanes_are_bounded_and_count_drops() {
        let recorder = Recorder::with_capacity(1, 4);
        for i in 0..10 {
            recorder.counter(0, "c", i as f64);
        }
        let events = recorder.events();
        assert_eq!(events.len(), 4);
        assert_eq!(recorder.dropped(), 6);
        // The survivors are the newest four samples.
        assert_eq!(events[0].args[0].1, 6.0);
        assert_eq!(events[3].args[0].1, 9.0);
    }

    #[test]
    fn out_of_range_lane_clamps_instead_of_panicking() {
        let recorder = Recorder::new(2);
        recorder.counter(99, "c", 1.0);
        let events = recorder.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].lane, 1);
    }

    #[test]
    fn chrome_export_is_schema_valid_and_balanced() {
        let recorder = Recorder::new(2);
        {
            let _outer = recorder.span(0, "outer");
            {
                let _inner = recorder.span(0, "inner");
                recorder.instant(1, "mark", &[]);
            }
            recorder.counter(1, "flows", 2.0);
        }
        let trace = chrome_trace(&recorder.events(), 42);
        let Value::Array(entries) = &trace else {
            panic!("chrome trace must be a JSON array");
        };
        let mut depth = 0i64;
        let mut open: Vec<String> = Vec::new();
        for entry in entries {
            let ph = entry.get("ph").and_then(|v| v.as_str()).expect("ph");
            assert!(entry.get("ts").and_then(|v| v.as_u64()).is_some(), "ts");
            assert_eq!(entry.get("pid").and_then(|v| v.as_u64()), Some(42));
            assert!(entry.get("tid").and_then(|v| v.as_u64()).is_some(), "tid");
            let name = entry.get("name").and_then(|v| v.as_str()).expect("name");
            match ph {
                "B" => open.push(name.to_string()),
                "E" => {
                    // LIFO nesting on one tid: E closes the innermost B.
                    assert_eq!(open.pop().as_deref(), Some(name));
                }
                "i" | "C" => {}
                other => panic!("unexpected phase letter {other}"),
            }
            depth += match ph {
                "B" => 1,
                "E" => -1,
                _ => 0,
            };
            assert!(depth >= 0, "span end before begin");
        }
        assert_eq!(depth, 0, "unbalanced spans");
        assert!(open.is_empty());
        // The string form parses back and re-serializes identically.
        let text = chrome_trace_string(&recorder.events(), 42);
        let reparsed = serde_json::from_str(&text).expect("chrome trace string parses");
        assert_eq!(serde_json::to_string(&reparsed), text);
    }

    #[test]
    fn merged_traces_are_retagged_per_process() {
        let a = Recorder::new(1);
        a.counter(0, "x", 1.0);
        let b = Recorder::new(1);
        b.counter(0, "y", 2.0);
        let merged = merge_chrome_traces(&[
            ("host-0".to_string(), chrome_trace(&a.events(), 7)),
            ("host-1".to_string(), chrome_trace(&b.events(), 7)),
        ]);
        let Value::Array(entries) = &merged else {
            panic!("merged trace must be an array");
        };
        // Two metadata events plus the two counters.
        assert_eq!(entries.len(), 4);
        let meta: Vec<&Value> = entries
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 2);
        assert_eq!(
            meta[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str()),
            Some("host-0")
        );
        let pids: Vec<u64> = entries
            .iter()
            .filter_map(|e| e.get("pid").and_then(|v| v.as_u64()))
            .collect();
        assert_eq!(pids, vec![0, 0, 1, 1]);
    }

    #[test]
    fn structured_export_carries_all_fields() {
        let recorder = Recorder::new(1);
        recorder.instant(0, "mark", &[("v", 3.5)]);
        let Value::Array(entries) = structured_json(&recorder.events()) else {
            panic!("structured export must be an array");
        };
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].get("kind").and_then(|v| v.as_str()), Some("i"));
        assert_eq!(
            entries[0].get("name").and_then(|v| v.as_str()),
            Some("mark")
        );
        assert_eq!(
            entries[0]
                .get("args")
                .and_then(|a| a.get("v"))
                .and_then(|v| v.as_f64()),
            Some(3.5)
        );
    }

    #[test]
    fn phase_stats_accumulate() {
        let mut stats = PhaseStats::default();
        assert_eq!(stats.mean_micros(), 0.0);
        stats.record(10);
        stats.record(30);
        assert_eq!(stats.total_micros, 40);
        assert_eq!(stats.count, 2);
        assert_eq!(stats.max_micros, 30);
        assert_eq!(stats.mean_micros(), 20.0);
    }
}
