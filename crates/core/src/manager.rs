//! The per-host **Emulation Manager** (paper §4.1–4.2): the decentralized
//! unit of the emulation.
//!
//! Each physical host of a deployment runs one [`EmulationManager`]. The
//! manager owns the egress qdisc trees (TCALs) of exactly the containers
//! placed on its host and, on every iteration of the emulation loop,
//!
//! 1. reads and clears the per-destination usage of its **local** TCALs,
//! 2. publishes that usage on the dissemination bus,
//! 3. absorbs whatever remote metadata the physical network has *actually
//!    delivered* by now — with a nonzero metadata delay this is last
//!    iteration's news, and that staleness is the paper's model, not a bug —
//! 4. recomputes the RTT-aware min-max shares from **local usage plus the
//!    received remote view only** (never from global state), and
//! 5. enforces the resulting rates and congestion loss on its local TCALs.
//!
//! Remote flows are known only through their advertised `(used, link ids)`
//! entries. The manager reconstructs their fairness weight from its own
//! collapsed snapshot: the advertised links identify the path, so the RTT is
//! twice the sum of those links' latencies and the demand cap is the minimum
//! capacity along them. Managers on different hosts may therefore transiently
//! disagree about the allocation — the convergence of those local decisions
//! is exactly what the accuracy-vs-staleness experiment measures.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use kollaps_metadata::bus::{Bus, Delivery, HostId};
use kollaps_metadata::codec::{FlowUsage, MetadataMessage};
use kollaps_netmodel::egress::{EgressTree, EgressVerdict};
use kollaps_netmodel::netem::NetemConfig;
use kollaps_netmodel::packet::{Addr, Packet};
use kollaps_sim::prelude::*;
use kollaps_topology::model::LinkId;
use kollaps_trace::Recorder;

use crate::collapse::CollapsedTopology;
use crate::emulation::EmulationConfig;
use crate::sharing::{oversubscription, AllocatorStats, FlowDemand, IncrementalAllocator};

/// Congestion loss is injected only once a link has stayed oversubscribed
/// for this many consecutive loop iterations. A one-iteration spike is the
/// normal signature of a flow joining (its competitors' htb rates are cut in
/// the same iteration, so the overload clears by itself); injecting loss on
/// top of the rate cut used to crash the established flows' congestion
/// windows far below their new fair share (the staggered-join inaccuracy).
/// Persistent oversubscription — unresponsive senders, or managers enforcing
/// on stale metadata — still draws loss from the second iteration on.
const CONGESTION_GRACE_LOOPS: u32 = 2;

/// A remote host's usage as last received: the advertised flows plus the
/// publish time of the message they came from (for staleness accounting).
#[derive(Debug, Clone, Default)]
pub struct RemoteUsage {
    /// When the message carrying this view was published.
    pub published: SimTime,
    /// The per-flow usage the remote manager advertised.
    pub flows: Vec<FlowUsage>,
}

/// One host's Emulation Manager: local TCALs, the received remote view and
/// the enforcement state derived from them.
///
/// The per-loop hot state (`usages`, `last_allocation`, `oversub_streak`) is
/// kept in **sorted contiguous vectors** rather than hash maps: the loop
/// walks these tables in key order anyway (publishing and enforcement are
/// order-sensitive for determinism), so sorted vectors drop both the
/// per-loop re-sorts and the hashing churn that dominated profiles at
/// 10k-flow scale. Point lookups are binary searches.
pub struct EmulationManager {
    host: HostId,
    config: EmulationConfig,
    /// This manager's own collapsed snapshot of the topology. Snapshots are
    /// distributed ahead of time (dynamic events are part of the experiment
    /// description), but *usage* only ever arrives through the bus. Shared
    /// read-only (the paths map is O(services²) — one copy, not one per
    /// host).
    collapsed: Arc<CollapsedTopology>,
    /// Egress qdisc tree per **local** container.
    egress: HashMap<Addr, EgressTree>,
    /// Latest received usage per remote host.
    remote: HashMap<HostId, RemoteUsage>,
    /// Local usage measured in the current loop iteration, sorted by pair.
    usages: Vec<((Addr, Addr), Bandwidth)>,
    /// Rates enforced on local pairs in the last iteration, sorted by pair.
    /// Doubles as the set of chains currently holding a non-default rate —
    /// enforcement only rewrites chains entering or leaving this set plus
    /// the active ones, never the full O(pairs²) sweep.
    last_allocation: Vec<((Addr, Addr), Bandwidth)>,
    /// Consecutive loop iterations each link has been oversubscribed,
    /// sorted by link.
    oversub_streak: Vec<(LinkId, u32)>,
    /// Component-caching min-max solver; invalidated on snapshot swaps.
    allocator: IncrementalAllocator,
    /// Wall-clock microseconds spent in the solver (diagnostic only).
    alloc_micros: u64,
    /// Flight recorder (disabled by default) and this manager's lane in it.
    /// Lanes are per-manager, not per-thread: the scoped worker pool
    /// respawns threads every tick, but a manager's spans always land in
    /// the same lane regardless of which worker stepped it.
    recorder: Recorder,
    lane: usize,
}

/// Binary-search lookup in a sorted `(key, value)` table.
fn table_get<K: Ord + Copy, V: Copy>(table: &[(K, V)], key: K) -> Option<V> {
    table
        .binary_search_by(|probe| probe.0.cmp(&key))
        .ok()
        .map(|i| table[i].1)
}

/// Removes `key` from a sorted `(key, value)` table if present.
fn table_remove<K: Ord + Copy, V>(table: &mut Vec<(K, V)>, key: K) {
    if let Ok(i) = table.binary_search_by(|probe| probe.0.cmp(&key)) {
        table.remove(i);
    }
}

impl EmulationManager {
    /// Builds the manager for `host`, owning the TCALs of `local` containers.
    pub fn new(
        host: HostId,
        config: EmulationConfig,
        collapsed: Arc<CollapsedTopology>,
        local: &[Addr],
        rng: &SimRng,
    ) -> Self {
        let mut egress = HashMap::new();
        for &addr in local {
            egress.insert(
                addr,
                EgressTree::new(addr, rng.derive(u64::from(addr.as_u32()))),
            );
        }
        let mut manager = EmulationManager {
            host,
            config,
            collapsed,
            egress,
            remote: HashMap::new(),
            usages: Vec::new(),
            last_allocation: Vec::new(),
            oversub_streak: Vec::new(),
            allocator: IncrementalAllocator::new(),
            alloc_micros: 0,
            recorder: Recorder::disabled(),
            lane: 0,
        };
        manager.install_local_paths();
        manager
    }

    /// Attaches a flight recorder: this manager's worker and allocation
    /// spans will land in `lane`. Recording never feeds back into the
    /// emulation (wall-clock-only).
    pub fn set_recorder(&mut self, recorder: Recorder, lane: usize) {
        self.recorder = recorder;
        self.lane = lane;
    }

    /// The physical host this manager runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Addresses of the containers placed on this host, in address order.
    pub fn container_addrs(&self) -> impl Iterator<Item = Addr> + '_ {
        let mut addrs: Vec<Addr> = self.egress.keys().copied().collect();
        addrs.sort_unstable();
        addrs.into_iter()
    }

    /// `true` if the container with address `addr` is placed on this host.
    pub fn owns(&self, addr: Addr) -> bool {
        self.egress.contains_key(&addr)
    }

    /// Number of containers placed on this host.
    pub fn container_count(&self) -> usize {
        self.egress.len()
    }

    /// The rate this manager enforced for a local (src, dst) pair in the
    /// last loop iteration, if the pair was active.
    pub fn allocation(&self, src: Addr, dst: Addr) -> Option<Bandwidth> {
        table_get(&self.last_allocation, (src, dst))
    }

    /// The local usage measured in the last loop iteration.
    pub fn measured_usage(&self, src: Addr, dst: Addr) -> Option<Bandwidth> {
        table_get(&self.usages, (src, dst))
    }

    /// The local usage table of the last loop iteration, sorted by pair.
    pub fn local_usages(&self) -> &[((Addr, Addr), Bandwidth)] {
        &self.usages
    }

    /// Wall-clock microseconds spent inside the bandwidth-sharing solver
    /// since construction (diagnostic only — never feeds back into the
    /// simulation).
    pub fn allocation_micros(&self) -> u64 {
        self.alloc_micros
    }

    /// Work-avoidance counters of the incremental min-max solver.
    pub fn allocator_stats(&self) -> AllocatorStats {
        self.allocator.stats()
    }

    /// Number of remote flows currently in this manager's received view.
    pub fn remote_flow_count(&self) -> usize {
        self.remote.values().map(|v| v.flows.len()).sum()
    }

    /// Links this manager observed oversubscribed in its most recent loop
    /// iteration (streak ≥ 1 — before the congestion grace period elapses,
    /// so onset is visible even when no loss is injected yet).
    pub fn oversubscribed_links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.oversub_streak.iter().map(|&(link, _)| link)
    }

    /// Worst staleness of the received remote view: the age of the oldest
    /// per-host usage entry this manager is currently enforcing from.
    pub fn remote_staleness(&self, now: SimTime) -> Option<SimDuration> {
        self.remote
            .values()
            .map(|v| now.saturating_since(v.published))
            .max()
    }

    /// Offers a packet from a local container to its egress tree.
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> Option<EgressVerdict> {
        self.egress
            .get_mut(&packet.src)
            .map(|tree| tree.enqueue(now, packet))
    }

    /// Packets that finished their collapsed-path emulation on this host.
    /// Trees are drained in container-address order so that same-instant
    /// packets enter the delivery queue deterministically (HashMap iteration
    /// order differs per process).
    pub fn dequeue_ready(&mut self, now: SimTime) -> Vec<Packet> {
        let mut addrs: Vec<Addr> = self.egress.keys().copied().collect();
        addrs.sort();
        let mut out = Vec::new();
        for addr in addrs {
            if let Some(tree) = self.egress.get_mut(&addr) {
                out.extend(tree.dequeue_ready(now));
            }
        }
        out
    }

    /// Earliest time any local TCAL needs service. `min` over the egress
    /// map is order-insensitive, so the map's iteration order cannot leak.
    pub fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        self.egress
            .values_mut()
            .filter_map(|tree| tree.next_wakeup(now))
            .filter(|&t| t < SimTime::MAX)
            .min()
    }

    /// Loop steps 1–2: reads and clears the per-destination usage of every
    /// local TCAL.
    pub fn collect_usage(&mut self) {
        let mut span = self.recorder.span(self.lane, "worker:collect");
        let interval = self.config.loop_interval;
        self.usages.clear();
        for (&src, tree) in &mut self.egress {
            for (&dst, &bytes) in tree.usage() {
                let mut rate = bytes.rate_over(interval);
                // The token bucket lets a burst through above the shaped
                // rate; reporting that transient as usage would make a
                // single well-behaved flow look like it oversubscribes its
                // own link and draw injected congestion loss. Clamp to the
                // rate the class was actually configured to.
                if let Some(shaped) = tree.bandwidth(dst) {
                    rate = rate.min(shaped);
                }
                if rate.as_bps() > 0 {
                    self.usages.push(((src, dst), rate));
                }
            }
            tree.clear_usage();
        }
        // One sort here replaces the per-loop re-sorts `publish` and
        // `enforce` used to do (the egress map iterates in arbitrary order).
        self.usages.sort_unstable_by_key(|&(key, _)| key);
        span.arg("local_flows", self.usages.len() as f64);
    }

    /// Loop step 3a: publishes this host's local usage on the bus. Idle
    /// managers publish an empty heartbeat so subscribers can retire the
    /// host's previous advertisement instead of enforcing on it forever.
    pub fn publish(&self, now: SimTime, bus: &mut dyn Bus) {
        // The bus stamps the sender/publish-time header fields; the manager
        // only supplies the payload.
        let mut message = MetadataMessage::new();
        for &((src, dst), used) in &self.usages {
            let Some(path) = self.collapsed.path_by_addr(src, dst) else {
                continue;
            };
            let ids: Vec<u16> = path.links.iter().map(|l| l.0 as u16).collect();
            message.flows.push(FlowUsage::new(used, ids));
        }
        bus.publish(now, self.host, &message);
    }

    /// Loop step 3b: absorbs delivered metadata, keeping the newest message
    /// per sender (deliveries can bunch up when the loop outpaces the
    /// network delay).
    pub fn absorb(&mut self, deliveries: Vec<Delivery>) {
        for delivery in deliveries {
            let newer = self
                .remote
                .get(&delivery.from)
                .is_none_or(|prev| prev.published <= delivery.published);
            if newer {
                self.remote.insert(
                    delivery.from,
                    RemoteUsage {
                        published: delivery.published,
                        flows: delivery.message.flows,
                    },
                );
            }
        }
    }

    /// Loop steps 4–5: recomputes the RTT-aware min-max shares from local
    /// usage plus the received (possibly stale) remote view, and enforces
    /// the resulting rates and congestion loss on the local TCALs.
    pub fn enforce(&mut self, now: SimTime) {
        let mut worker_span = self.recorder.span(self.lane, "worker:enforce");
        // The competing flow set, as *this* manager can know it.
        let mut flows: Vec<FlowDemand> = Vec::new();
        let mut usage_by_id: HashMap<u64, Bandwidth> = HashMap::new();
        let mut local_keys: Vec<(u64, Addr, Addr)> = Vec::new();

        for &((src, dst), used) in &self.usages {
            let id = flows.len() as u64;
            let Some(demand) = self.collapsed.flow_demand(id, src, dst) else {
                continue;
            };
            flows.push(demand);
            usage_by_id.insert(id, used);
            local_keys.push((id, src, dst));
        }

        let mut remote_views: Vec<(&HostId, &RemoteUsage)> = self.remote.iter().collect();
        remote_views.sort_by_key(|(&host, _)| host);
        for (_, view) in remote_views {
            for flow in &view.flows {
                let links: Vec<LinkId> = flow
                    .link_ids
                    .iter()
                    .map(|&l| LinkId(u32::from(l)))
                    .collect();
                // Links this snapshot still knows about; under dynamic
                // events a remote advertisement can reference links that no
                // longer exist here — managers transiently disagree.
                let known: Vec<LinkId> = links
                    .iter()
                    .copied()
                    .filter(|l| self.collapsed.link_capacity(*l).is_some())
                    .collect();
                let one_way = known
                    .iter()
                    .filter_map(|&l| self.collapsed.link_latency(l))
                    .fold(SimDuration::ZERO, |acc, d| acc + d);
                let rtt = if one_way.is_zero() {
                    SimDuration::from_millis(1)
                } else {
                    one_way * 2
                };
                let demand = known
                    .iter()
                    .filter_map(|&l| self.collapsed.link_capacity(l))
                    .min()
                    .unwrap_or(Bandwidth::MAX);
                let id = flows.len() as u64;
                flows.push(FlowDemand {
                    id,
                    links,
                    rtt,
                    demand,
                });
                usage_by_id.insert(id, flow.used());
            }
        }

        // Rates computed for the local pairs, aligned with `local_keys`.
        // Reading the allocator's result out here ends its borrow before the
        // qdisc writes below and bounds the allocation span to the solve.
        let local_rates: Vec<Bandwidth> = if self.config.bandwidth_sharing {
            let mut alloc_span = self.recorder.span(self.lane, "allocate");
            let before = self.allocator.stats();
            // kollaps-analyze: allow(wall-clock) -- solver-time diagnostic only; never feeds back into the emulation (pinned by the traced-vs-untraced identity test)
            let start = std::time::Instant::now();
            let allocation = self
                .allocator
                .allocate(&flows, self.collapsed.link_capacities());
            let micros = start.elapsed().as_micros() as u64;
            let rates = local_keys
                .iter()
                .map(|&(id, _, _)| allocation.of(id))
                .collect();
            self.alloc_micros += micros;
            let delta = self.allocator.stats().since(before);
            alloc_span.arg("flows", flows.len() as f64);
            alloc_span.arg("micros", micros as f64);
            alloc_span.arg("fast_hits", delta.fast_hits as f64);
            alloc_span.arg("components_reused", delta.components_reused as f64);
            alloc_span.arg("components_recomputed", delta.components_recomputed as f64);
            rates
        } else {
            Vec::new()
        };
        let over = if self.config.congestion_loss {
            let raw = oversubscription(&flows, &usage_by_id, self.collapsed.link_capacities());
            let mut streaks: Vec<(LinkId, u32)> = raw
                .keys()
                .map(|&link| (link, table_get(&self.oversub_streak, link).unwrap_or(0) + 1))
                .collect();
            streaks.sort_unstable_by_key(|&(link, _)| link);
            self.oversub_streak = streaks;
            raw.into_iter()
                .filter(|(link, _)| {
                    table_get(&self.oversub_streak, *link).unwrap_or(0) >= CONGESTION_GRACE_LOOPS
                })
                .collect()
        } else {
            self.oversub_streak.clear();
            BTreeMap::new()
        };

        // Enforcement: active local pairs get their computed share (or keep
        // the path maximum when sharing is disabled); pairs enforced last
        // loop that went idle are restored to the path maximum **once** so
        // new flows are not throttled by stale limits. Chains that were at
        // their defaults and stay idle are not touched at all — the old
        // all-pairs sweep was O(containers²) per loop and capped scaling.
        let previously: Vec<(Addr, Addr)> =
            self.last_allocation.iter().map(|&(key, _)| key).collect();
        self.last_allocation.clear();
        for (i, &(_, src, dst)) in local_keys.iter().enumerate() {
            let Some(path) = self.collapsed.path_by_addr(src, dst) else {
                continue;
            };
            let rate = if self.config.bandwidth_sharing {
                local_rates[i]
            } else {
                path.max_bandwidth
            };
            // Congestion loss: combine the path's intrinsic loss with the
            // worst (persistent) oversubscription along the path.
            let mut congestion = 0.0f64;
            for link in &path.links {
                if let Some(&o) = over.get(link) {
                    congestion = congestion.max(o);
                }
            }
            let loss = 1.0 - (1.0 - path.loss) * (1.0 - congestion);
            if let Some(tree) = self.egress.get_mut(&src) {
                tree.set_bandwidth(now, dst, rate);
                tree.set_loss(dst, loss);
            }
            // `local_keys` is sorted by pair, so pushes keep the table sorted.
            self.last_allocation.push(((src, dst), rate));
        }
        for &(src, dst) in &previously {
            if table_get(&self.last_allocation, (src, dst)).is_some() {
                continue;
            }
            let Some(tree) = self.egress.get_mut(&src) else {
                continue;
            };
            // A pair whose path disappeared had its chain removed by the
            // delta application; nothing to restore then.
            if let Some(path) = self.collapsed.path_by_addr(src, dst) {
                tree.set_bandwidth(now, dst, path.max_bandwidth);
                tree.set_loss(dst, path.loss);
            }
        }
        worker_span.arg("enforced_pairs", self.last_allocation.len() as f64);
    }

    /// Swaps in a new collapsed snapshot (dynamic events — which are part of
    /// the experiment description and therefore known to every manager) and
    /// reconciles the local TCALs with it by **full reinstall**: every
    /// destination chain of every local TCAL is rewritten.
    ///
    /// The emulation loop does not use this any more — it applies
    /// [`EmulationManager::apply_delta`], which touches only the chains the
    /// change affected. This full swap remains for callers that obtained a
    /// snapshot outside a precomputed timeline.
    pub fn apply_snapshot(&mut self, collapsed: Arc<CollapsedTopology>) {
        self.collapsed = collapsed;
        // Capacities changed: the component cache keys on flow shapes only.
        self.allocator.invalidate();
        self.install_local_paths();
    }

    /// Applies one precomputed change: swaps the snapshot `Arc` and updates
    /// **only** the qdisc chains of local pairs the delta names. Returns the
    /// number of chains touched — the per-host share of the swap cost, which
    /// scales with the paths the event affected rather than with the
    /// topology size (no path is recomputed here; the timeline did that
    /// offline).
    pub fn apply_delta(&mut self, delta: &crate::timeline::SnapshotDelta) -> usize {
        self.collapsed = Arc::clone(&delta.snapshot);
        // Capacities changed: the component cache keys on flow shapes only.
        self.allocator.invalidate();
        let collapsed = Arc::clone(&self.collapsed);
        let mut touched = 0;
        for &(src, dst) in &delta.removed_paths {
            let (Some(src_addr), Some(dst_addr)) =
                (collapsed.address_of(src), collapsed.address_of(dst))
            else {
                continue;
            };
            if let Some(tree) = self.egress.get_mut(&src_addr) {
                if tree.remove_path(dst_addr) {
                    touched += 1;
                }
                table_remove(&mut self.last_allocation, (src_addr, dst_addr));
            }
        }
        for &(src, dst) in &delta.changed_paths {
            let (Some(src_addr), Some(dst_addr)) =
                (collapsed.address_of(src), collapsed.address_of(dst))
            else {
                continue;
            };
            let Some(tree) = self.egress.get_mut(&src_addr) else {
                continue;
            };
            let Some(path) = collapsed.path(src, dst) else {
                continue;
            };
            let netem = NetemConfig {
                delay: path.latency,
                jitter: path.jitter,
                loss: path.loss,
                ..NetemConfig::default()
            };
            let rate = table_get(&self.last_allocation, (src_addr, dst_addr))
                .unwrap_or(path.max_bandwidth)
                .min(path.max_bandwidth);
            tree.install_path(dst_addr, netem, rate);
            touched += 1;
        }
        touched
    }

    /// Installs (or refreshes) the per-destination chains of every local
    /// TCAL from the current collapsed snapshot.
    fn install_local_paths(&mut self) {
        let collapsed = Arc::clone(&self.collapsed);
        for (src_node, src_addr) in collapsed.addresses() {
            let Some(tree) = self.egress.get_mut(&src_addr) else {
                continue;
            };
            // Remove chains towards destinations that disappeared.
            let valid: std::collections::HashSet<Addr> = collapsed
                .addresses()
                .filter(|&(dst_node, _)| collapsed.path(src_node, dst_node).is_some())
                .map(|(_, a)| a)
                .collect();
            let stale: Vec<Addr> = tree.destinations().filter(|d| !valid.contains(d)).collect();
            for dst in stale {
                tree.remove_path(dst);
            }
            for (dst_node, dst_addr) in collapsed.addresses() {
                if dst_addr == src_addr {
                    continue;
                }
                let Some(path) = collapsed.path(src_node, dst_node) else {
                    continue;
                };
                let netem = NetemConfig {
                    delay: path.latency,
                    jitter: path.jitter,
                    loss: path.loss,
                    ..NetemConfig::default()
                };
                // The htb class starts at the collapsed maximum bandwidth;
                // the emulation loop tightens it as soon as competing flows
                // appear. A kept allocation is clamped in case the path
                // maximum shrank under it.
                let rate = table_get(&self.last_allocation, (src_addr, dst_addr))
                    .unwrap_or(path.max_bandwidth)
                    .min(path.max_bandwidth);
                tree.install_path(dst_addr, netem, rate);
            }
        }
    }
}
