//! Topology collapsing: from the target topology to end-to-end virtual
//! links.
//!
//! Kollaps never materializes switches and routers. Instead, the Emulation
//! Manager computes the shortest path between every pair of services and
//! composes the per-link properties into end-to-end properties (paper §3 and
//! Figure 1): latencies add up, jitters compose as the root of the sum of
//! squares, losses compose multiplicatively and the available bandwidth is
//! the minimum along the path. The identity of the traversed links is kept
//! so that the runtime bandwidth-sharing model can detect flows competing
//! for the same physical link.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use kollaps_netmodel::packet::Addr;
use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

use kollaps_topology::graph::{PathProperties, TopologyGraph};
use kollaps_topology::model::{LinkId, NodeId, Topology};

use crate::sharing::FlowDemand;

/// One collapsed end-to-end path between two services.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollapsedPath {
    /// Source service.
    pub src: NodeId,
    /// Destination service.
    pub dst: NodeId,
    /// Sum of link latencies.
    pub latency: SimDuration,
    /// Composed jitter.
    pub jitter: SimDuration,
    /// Composed loss probability.
    pub loss: f64,
    /// Minimum link bandwidth along the path.
    pub max_bandwidth: Bandwidth,
    /// The links traversed (in the original topology), used by the
    /// bandwidth-sharing model.
    pub links: Vec<LinkId>,
}

impl CollapsedPath {
    /// Round-trip time of this path combined with the reverse path latency;
    /// when the reverse path is unknown the forward latency is doubled.
    pub fn rtt(&self, reverse_latency: Option<SimDuration>) -> SimDuration {
        match reverse_latency {
            Some(rev) => self.latency + rev,
            None => self.latency * 2,
        }
    }
}

/// The collapsed view of a topology snapshot: every reachable ordered pair
/// of services mapped to its end-to-end virtual link, plus the addressing
/// information used by the dataplane.
///
/// Paths are held behind [`Arc`] so that successive snapshots of a dynamic
/// experiment (see `crate::timeline`) share the unchanged entries
/// structurally instead of cloning `O(services²)` paths per event.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CollapsedTopology {
    pub(crate) paths: HashMap<(NodeId, NodeId), Arc<CollapsedPath>>,
    pub(crate) addresses: HashMap<NodeId, Addr>,
    pub(crate) nodes_by_addr: HashMap<Addr, NodeId>,
    pub(crate) link_capacity: BTreeMap<LinkId, Bandwidth>,
    pub(crate) link_latency: BTreeMap<LinkId, SimDuration>,
}

/// Collapses one shortest path into its end-to-end `CollapsedPath`.
pub(crate) fn collapse_path(
    topology: &Topology,
    src: NodeId,
    dst: NodeId,
    path: &kollaps_topology::graph::Path,
) -> Option<CollapsedPath> {
    let props = PathProperties::compose(topology, path)?;
    Some(CollapsedPath {
        src,
        dst,
        latency: props.latency,
        jitter: props.jitter,
        loss: props.loss,
        max_bandwidth: props.max_bandwidth,
        links: path.links.clone(),
    })
}

/// All-pairs collapse, parallelized across source services: each worker runs
/// the single-source shortest-path and path composition for a disjoint chunk
/// of sources. Per-source work is independent and deterministic, so the
/// merged map is identical for any thread count.
fn all_pairs(topology: &Topology, threads: usize) -> HashMap<(NodeId, NodeId), Arc<CollapsedPath>> {
    let graph = TopologyGraph::new(topology);
    let services = topology.service_ids();
    let per_source = crate::parallel::map_parallel(&services, threads, |&src| {
        let from_src = graph.shortest_paths_from(src);
        let mut rows: Vec<((NodeId, NodeId), Arc<CollapsedPath>)> = Vec::new();
        for &dst in &services {
            if dst == src {
                continue;
            }
            if let Some(path) = from_src.get(&dst) {
                if let Some(collapsed) = collapse_path(topology, src, dst, path) {
                    rows.push(((src, dst), Arc::new(collapsed)));
                }
            }
        }
        rows
    });
    per_source.into_iter().flatten().collect()
}

pub(crate) fn link_tables(
    topology: &Topology,
) -> (BTreeMap<LinkId, Bandwidth>, BTreeMap<LinkId, SimDuration>) {
    let capacity = topology
        .links()
        .iter()
        .map(|l| (l.id, l.properties.bandwidth))
        .collect();
    let latency = topology
        .links()
        .iter()
        .map(|l| (l.id, l.properties.latency))
        .collect();
    (capacity, latency)
}

impl CollapsedTopology {
    /// Collapses `topology`, assigning container addresses in service-id
    /// order (`10.1.0.0/16`, matching the deployment generator). Uses the
    /// `KOLLAPS_THREADS` worker count for the all-pairs computation; see
    /// [`CollapsedTopology::build_with_threads`].
    pub fn build(topology: &Topology) -> Self {
        CollapsedTopology::build_with_threads(topology, crate::parallel::threads_from_env())
    }

    /// [`CollapsedTopology::build`] with an explicit worker count for the
    /// all-pairs shortest-path computation. The result is identical for any
    /// thread count — sources are derived independently and merged
    /// deterministically.
    pub fn build_with_threads(topology: &Topology, threads: usize) -> Self {
        let mut addresses = HashMap::new();
        let mut nodes_by_addr = HashMap::new();
        for (i, service) in topology.service_ids().into_iter().enumerate() {
            let addr = Addr::container(i as u32);
            addresses.insert(service, addr);
            nodes_by_addr.insert(addr, service);
        }
        let (link_capacity, link_latency) = link_tables(topology);
        CollapsedTopology {
            paths: all_pairs(topology, threads),
            addresses,
            nodes_by_addr,
            link_capacity,
            link_latency,
        }
    }

    /// Re-collapses a modified topology while keeping the original address
    /// assignment (containers keep their IP across dynamic events).
    ///
    /// This is the **online full rebuild**: every service pair is re-derived
    /// from scratch. The runtime emulation no longer calls it per event (the
    /// precomputed `crate::timeline` swaps delta-encoded snapshots instead);
    /// it remains the reference the timeline is checked against and the
    /// fallback for callers that mutate topologies outside a schedule.
    pub fn rebuild_with_addresses(&self, topology: &Topology) -> Self {
        let (link_capacity, link_latency) = link_tables(topology);
        CollapsedTopology {
            paths: all_pairs(topology, crate::parallel::threads_from_env()),
            addresses: self.addresses.clone(),
            nodes_by_addr: self.nodes_by_addr.clone(),
            link_capacity,
            link_latency,
        }
    }

    /// The collapsed path from `src` to `dst`, if reachable.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Option<&CollapsedPath> {
        self.paths.get(&(src, dst)).map(Arc::as_ref)
    }

    /// The shared handle of the collapsed path from `src` to `dst`. Two
    /// snapshots returning [`Arc::ptr_eq`] handles are guaranteed to agree
    /// on that pair — the structural-sharing property the snapshot timeline
    /// relies on (and tests assert).
    pub fn path_handle(&self, src: NodeId, dst: NodeId) -> Option<&Arc<CollapsedPath>> {
        self.paths.get(&(src, dst))
    }

    /// The collapsed path between two container addresses.
    pub fn path_by_addr(&self, src: Addr, dst: Addr) -> Option<&CollapsedPath> {
        let s = self.nodes_by_addr.get(&src)?;
        let d = self.nodes_by_addr.get(&dst)?;
        self.path(*s, *d)
    }

    /// Round-trip time between two services (forward + reverse collapsed
    /// latency).
    pub fn rtt(&self, src: NodeId, dst: NodeId) -> Option<SimDuration> {
        let fwd = self.path(src, dst)?;
        let rev = self.path(dst, src).map(|p| p.latency);
        Some(fwd.rtt(rev))
    }

    /// All collapsed paths, in (src, dst) order. The pair map itself is a
    /// `HashMap` (hot per-packet lookups); iteration sorts so that no
    /// hash-bucket order can reach reports or logs.
    pub fn paths(&self) -> impl Iterator<Item = &CollapsedPath> {
        let mut rows: Vec<(&(NodeId, NodeId), &Arc<CollapsedPath>)> = self.paths.iter().collect();
        rows.sort_unstable_by_key(|(pair, _)| **pair);
        rows.into_iter().map(|(_, p)| p.as_ref())
    }

    /// All collapsed pairs with their shared path handles, in (src, dst)
    /// order.
    pub fn path_handles(&self) -> impl Iterator<Item = (&(NodeId, NodeId), &Arc<CollapsedPath>)> {
        let mut rows: Vec<(&(NodeId, NodeId), &Arc<CollapsedPath>)> = self.paths.iter().collect();
        rows.sort_unstable_by_key(|(pair, _)| **pair);
        rows.into_iter()
    }

    /// Number of collapsed (ordered) pairs.
    pub fn pair_count(&self) -> usize {
        self.paths.len()
    }

    /// The container address of a service.
    pub fn address_of(&self, service: NodeId) -> Option<Addr> {
        self.addresses.get(&service).copied()
    }

    /// The service owning a container address.
    pub fn service_at(&self, addr: Addr) -> Option<NodeId> {
        self.nodes_by_addr.get(&addr).copied()
    }

    /// Every (service, address) assignment, in service-id order.
    pub fn addresses(&self) -> impl Iterator<Item = (NodeId, Addr)> + '_ {
        let mut rows: Vec<(NodeId, Addr)> = self.addresses.iter().map(|(&n, &a)| (n, a)).collect();
        rows.sort_unstable();
        rows.into_iter()
    }

    /// Capacity of an original link.
    pub fn link_capacity(&self, link: LinkId) -> Option<Bandwidth> {
        self.link_capacity.get(&link).copied()
    }

    /// The full link-capacity table (ordered by link id).
    pub fn link_capacities(&self) -> &BTreeMap<LinkId, Bandwidth> {
        &self.link_capacity
    }

    /// Builds the sharing-solver input for one active (src, dst) pair: the
    /// collapsed path's links, the pair's RTT as the fairness weight (1 ms
    /// fallback when unknown) and the path maximum bandwidth as the demand
    /// cap.
    ///
    /// Both the per-host Emulation Manager (for its local flows) and the
    /// omniscient convergence reference build their solver inputs through
    /// this one helper — they must stay in lockstep for the convergence gap
    /// to measure metadata staleness rather than implementation drift.
    pub fn flow_demand(&self, id: u64, src: Addr, dst: Addr) -> Option<FlowDemand> {
        let path = self.path_by_addr(src, dst)?;
        let (src_node, dst_node) = (self.service_at(src)?, self.service_at(dst)?);
        let rtt = self
            .rtt(src_node, dst_node)
            .unwrap_or(SimDuration::from_millis(1));
        Some(FlowDemand {
            id,
            links: path.links.clone(),
            rtt,
            demand: path.max_bandwidth,
        })
    }

    /// One-way latency of an original link.
    ///
    /// An Emulation Manager uses this to reconstruct the RTT weight of a
    /// *remote* flow it only knows through metadata: the advertised link ids
    /// identify the flow's path, and the latencies along it sum to the
    /// one-way delay (doubled for the round trip).
    pub fn link_latency(&self, link: LinkId) -> Option<SimDuration> {
        self.link_latency.get(&link).copied()
    }
}

/// The shared addressing view every dataplane exposes.
///
/// All network backends — the Kollaps collapsed emulation and the full-state
/// baselines alike — are built from the same [`CollapsedTopology`], which
/// owns the service ↔ container address assignment. This trait hoists that
/// view (previously duplicated as inherent methods on every backend) so that
/// generic experiment code can resolve addresses without knowing which
/// backend it runs against.
pub trait Addressable {
    /// The collapsed/address view shared across all backends built from the
    /// same topology.
    fn collapsed(&self) -> &CollapsedTopology;

    /// The container address of the `index`-th service (in service-id
    /// order, matching the deployment generator's `10.1.0.0/16` assignment).
    fn address_of_index(&self, index: u32) -> Addr {
        Addr::container(index)
    }

    /// The container address of a service node, if the node is a service of
    /// this deployment.
    fn address_of_node(&self, node: NodeId) -> Option<Addr> {
        self.collapsed().address_of(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_sim::units::Bandwidth;
    use kollaps_topology::model::LinkProperties;

    fn props(ms: u64, mbps: u64) -> LinkProperties {
        LinkProperties::new(SimDuration::from_millis(ms), Bandwidth::from_mbps(mbps))
    }

    /// The Figure 1 topology; returns `(topology, c1, sv1, sv2)`.
    fn figure1() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c1 = t.add_service("c1", 0, "iperf");
        let sv1 = t.add_service("sv", 0, "nginx");
        let sv2 = t.add_service("sv", 1, "nginx");
        let s1 = t.add_bridge("s1");
        let s2 = t.add_bridge("s2");
        t.add_bidirectional_link(c1, s1, props(10, 10), "net");
        t.add_bidirectional_link(s1, s2, props(20, 100), "net");
        t.add_bidirectional_link(s2, sv1, props(5, 50), "net");
        t.add_bidirectional_link(s2, sv2, props(5, 50), "net");
        (t, c1, sv1, sv2)
    }

    #[test]
    fn figure1_collapsed_matches_paper() {
        let (t, c1, sv1, sv2) = figure1();
        let c = CollapsedTopology::build(&t);
        assert_eq!(c.pair_count(), 6);
        let p = c.path(c1, sv1).unwrap();
        assert_eq!(p.latency, SimDuration::from_millis(35));
        assert_eq!(p.max_bandwidth, Bandwidth::from_mbps(10));
        assert_eq!(p.links.len(), 3);
        let p2 = c.path(sv1, sv2).unwrap();
        assert_eq!(p2.latency, SimDuration::from_millis(10));
        assert_eq!(p2.max_bandwidth, Bandwidth::from_mbps(50));
        assert_eq!(c.rtt(c1, sv1), Some(SimDuration::from_millis(70)));
    }

    #[test]
    fn addresses_are_stable_and_reversible() {
        let (t, c1, sv1, sv2) = figure1();
        let c = CollapsedTopology::build(&t);
        let addrs: Vec<Addr> = [c1, sv1, sv2]
            .iter()
            .map(|&n| c.address_of(n).unwrap())
            .collect();
        assert_eq!(addrs.len(), 3);
        for (&node, &addr) in [c1, sv1, sv2].iter().zip(&addrs) {
            assert_eq!(c.service_at(addr), Some(node));
        }
        // Path lookup by address agrees with lookup by node id.
        assert_eq!(
            c.path_by_addr(addrs[0], addrs[1]).unwrap().latency,
            c.path(c1, sv1).unwrap().latency
        );
    }

    #[test]
    fn rebuild_keeps_addresses_after_dynamic_change() {
        let (mut t, c1, sv1, _) = figure1();
        let before = CollapsedTopology::build(&t);
        let addr_before = before.address_of(c1).unwrap();
        // Dynamic event: the c1-s1 link degrades to 99 ms.
        let link = t.links()[0].id;
        let mut p = t.link(link).unwrap().properties;
        p.latency = SimDuration::from_millis(99);
        t.set_link_properties(link, p);
        let after = before.rebuild_with_addresses(&t);
        assert_eq!(after.address_of(c1), Some(addr_before));
        assert!(after.path(c1, sv1).unwrap().latency > before.path(c1, sv1).unwrap().latency);
    }

    #[test]
    fn unreachable_pairs_have_no_path() {
        let mut t = Topology::new();
        let a = t.add_service("a", 0, "x");
        let b = t.add_service("b", 0, "x");
        let c = CollapsedTopology::build(&t);
        assert!(c.path(a, b).is_none());
        assert_eq!(c.pair_count(), 0);
        assert!(c.rtt(a, b).is_none());
    }

    #[test]
    fn link_capacities_are_exposed() {
        let (t, _, _, _) = figure1();
        let c = CollapsedTopology::build(&t);
        assert_eq!(c.link_capacities().len(), t.link_count());
        let first = t.links()[0].id;
        assert_eq!(c.link_capacity(first), Some(Bandwidth::from_mbps(10)));
    }
}
