//! # kollaps-core
//!
//! The heart of the Kollaps reproduction: topology collapsing, the
//! RTT-aware Min-Max bandwidth sharing model, the per-host Emulation
//! Manager loop, and the experiment runtime that drives transport endpoints
//! against a dataplane.
//!
//! * [`collapse`] — from the target topology to end-to-end virtual links
//!   (latency, jitter, loss, maximum bandwidth, traversed links).
//! * [`sharing`] — the RTT-aware Min-Max share with the work-conserving
//!   maximization step; the analytic values of the paper's Figure 8 are unit
//!   tests of this module.
//! * [`emulation`] — [`emulation::KollapsDataplane`], the collapsed
//!   dataplane: per-container egress qdisc trees (the TCAL state), placement
//!   over physical hosts, metadata dissemination and the five-step emulation
//!   loop including congestion loss injection and dynamic topology events.
//! * [`runtime`] — the [`runtime::Dataplane`] trait and the experiment
//!   [`runtime::Runtime`] that moves packets between TCP/UDP/ICMP endpoints
//!   and the network under test; the full-state baselines implement the same
//!   trait, so every workload runs unmodified on either.
//! * [`timeline`] — the offline dynamics engine: the whole sequence of
//!   collapsed snapshots of a dynamic experiment precomputed up front,
//!   delta-encoded with structural sharing, so runtime event application
//!   never recomputes paths (re-exported as the public face of
//!   `kollaps_dynamics`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic-freedom backstop for the hot paths: kollaps-analyze's
// `hot-path-panic` rule is the enforced gate; clippy flags what the
// heuristic scanner structurally cannot see (unwraps behind macros etc.).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod collapse;
pub mod emulation;
pub mod manager;
pub mod parallel;
pub mod runtime;
pub mod sharing;
pub mod timeline;

pub use collapse::{Addressable, CollapsedPath, CollapsedTopology};
pub use emulation::{ConvergenceStats, DynamicsStats, EmulationConfig, KollapsDataplane};
pub use manager::EmulationManager;
pub use runtime::{Dataplane, Runtime, RuntimeEvent, SendOutcome};
pub use sharing::{
    allocate, oversubscription, Allocation, AllocatorStats, FlowDemand, IncrementalAllocator,
};
pub use timeline::{SnapshotDelta, SnapshotTimeline, TimelineStats};
