//! The precomputed snapshot timeline: offline dynamics, delta-encoded.
//!
//! The paper's dynamics claim (§3, Listing 2) is that Kollaps knows the
//! whole event schedule up front and therefore pre-computes the sequence of
//! collapsed topology snapshots **offline**, so that sub-second dynamic
//! events are enforced at runtime without recomputation. This module is that
//! engine: [`SnapshotTimeline::precompute`] turns a topology plus an
//! [`EventSchedule`] into one [`CollapsedTopology`] per change time, where
//!
//! * consecutive snapshots **structurally share** every unchanged
//!   [`crate::collapse::CollapsedPath`] behind an [`Arc`] (cloning a snapshot costs one map
//!   of pointer bumps, not `O(services²)` path copies), and
//! * each snapshot carries a [`SnapshotDelta`] — exactly the service pairs
//!   whose end-to-end path changed or disappeared — so runtime application
//!   touches only the affected qdisc chains and never runs an all-pairs
//!   shortest-path computation inside the emulation loop.
//!
//! The precompute is *selective*: only sources whose previous paths traverse
//! a changed link are re-derived. For purely degrading change groups (links
//! removed, latencies increased, bandwidth/loss/jitter edits) that is exact:
//! a shortest path that avoids every changed link stays shortest, and the
//! deterministic `(cost, hops, node-id)` tie-breaking of
//! [`kollaps_topology::graph::TopologyGraph::shortest_paths_from`] keeps
//! picking it. The moment a group can *improve* routes (a link joins, a
//! latency drops) every source is re-derived — still offline, and the
//! structural-sharing diff keeps the runtime delta minimal. The equality of
//! timeline snapshots with a full online re-collapse is pinned by property
//! tests over generated topologies and random schedules.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use kollaps_sim::time::SimDuration;
use kollaps_topology::events::{apply_action, DynamicEvent, EventSchedule};
use kollaps_topology::graph::TopologyGraph;
use kollaps_topology::model::{LinkId, LinkProperties, NodeId, Topology};

use crate::collapse::{collapse_path, link_tables, CollapsedPath, CollapsedTopology};

/// One precomputed topology change: the new snapshot plus the exact set of
/// service pairs the change affected.
#[derive(Debug, Clone)]
pub struct SnapshotDelta {
    /// When the change takes effect, relative to experiment start.
    pub at: SimDuration,
    /// Number of schedule events applied at this change time.
    pub events: usize,
    /// Links removed, added or re-parameterized by this change.
    pub changed_links: Vec<LinkId>,
    /// Service pairs whose collapsed path changed (including pairs that
    /// just became reachable).
    pub changed_paths: Vec<(NodeId, NodeId)>,
    /// Service pairs that lost their collapsed path (unreachable or an
    /// endpoint left).
    pub removed_paths: Vec<(NodeId, NodeId)>,
    /// The full snapshot after the change; unchanged paths are the same
    /// `Arc`s as in the previous snapshot.
    pub snapshot: Arc<CollapsedTopology>,
}

impl SnapshotDelta {
    /// The runtime swap cost of this change: the number of per-destination
    /// qdisc chains that have to be touched, which scales with the paths
    /// the change actually affected — not with the topology size.
    pub fn swap_cost(&self) -> usize {
        self.changed_paths.len() + self.removed_paths.len()
    }
}

/// Offline-precompute accounting, surfaced through the dataplane's dynamics
/// stats and the `--bin dynamics` bench.
///
/// The counters measure **work performed**, cumulatively: an
/// [`SnapshotTimeline::extend`] that re-derives an already-precomputed
/// suffix adds that suffix's derivation work *again* (the work really did
/// happen twice), exactly as `precompute_micros` accumulates wall-clock
/// across extensions. They are not a description of the final delta list —
/// for per-change swap costs read the deltas themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimelineStats {
    /// Wall-clock time the offline precompute took, in microseconds.
    pub precompute_micros: u64,
    /// Distinct change times (= number of deltas).
    pub change_times: usize,
    /// Total schedule events folded into the timeline.
    pub events: usize,
    /// Collapsed paths re-derived across all deltas (the offline work).
    pub recomputed_paths: usize,
    /// Path slots that were structurally shared with the previous snapshot
    /// instead of being re-derived or re-allocated.
    pub shared_paths: usize,
    /// Service pairs in the initial snapshot (the all-pairs scale an online
    /// re-collapse would pay per event).
    pub initial_pairs: usize,
    /// Incremental [`SnapshotTimeline::extend`] calls folded into this
    /// timeline after the initial precompute (live steering injections).
    pub extensions: usize,
}

/// The precomputed sequence of collapsed snapshots of a dynamic experiment.
///
/// The timeline keeps the base topology and the schedule it was derived
/// from, so a running session can [`SnapshotTimeline::extend`] it with
/// injected events **incrementally** — only the deltas at or after the
/// earliest new event are re-derived; everything before them (including all
/// already-applied changes) is untouched.
#[derive(Debug, Clone)]
pub struct SnapshotTimeline {
    /// The topology before any event, as handed to the precompute.
    base: Topology,
    /// Every event folded into the timeline so far, sorted.
    schedule: EventSchedule,
    initial: Arc<CollapsedTopology>,
    deltas: Vec<SnapshotDelta>,
    stats: TimelineStats,
    /// Worker threads for source re-derivation (precompute and extensions).
    threads: usize,
}

impl SnapshotTimeline {
    /// Precomputes the snapshot at every change time of `schedule` applied
    /// to `topology`. Runs offline (before the experiment starts); the
    /// runtime then only swaps `Arc`s and touches the delta'd chains. Uses
    /// the `KOLLAPS_THREADS` worker count; see
    /// [`SnapshotTimeline::precompute_with`].
    pub fn precompute(topology: &Topology, schedule: &EventSchedule) -> Self {
        SnapshotTimeline::precompute_with(topology, schedule, crate::parallel::threads_from_env())
    }

    /// [`SnapshotTimeline::precompute`] with an explicit worker count: the
    /// initial all-pairs collapse and every snapshot's source re-derivation
    /// split their sources across a scoped thread pool. Per-source work is
    /// independent and results are merged in source order, so the timeline
    /// is identical for any thread count.
    pub fn precompute_with(topology: &Topology, schedule: &EventSchedule, threads: usize) -> Self {
        // kollaps-analyze: allow(wall-clock) -- precompute-time diagnostic (stats.precompute_micros); never read by the emulation
        let started = std::time::Instant::now();
        let threads = threads.max(1);
        let initial = Arc::new(CollapsedTopology::build_with_threads(topology, threads));
        let mut stats = TimelineStats {
            initial_pairs: initial.pair_count(),
            ..TimelineStats::default()
        };
        let mut working = topology.clone();
        let prev = Arc::clone(&initial);
        let mut deltas = Vec::new();
        fold_events(
            &mut working,
            prev,
            schedule.events(),
            &mut deltas,
            &mut stats,
            threads,
        );
        stats.change_times = deltas.len();
        stats.events = schedule.len();
        stats.precompute_micros = started.elapsed().as_micros() as u64;
        SnapshotTimeline {
            base: topology.clone(),
            schedule: schedule.clone(),
            initial,
            deltas,
            stats,
            threads,
        }
    }

    /// Folds `extra` events into the timeline **incrementally**: deltas
    /// strictly before the earliest new event are kept as-is (their
    /// snapshots, `Arc`s and indices do not move), and only the change
    /// times at or after it are (re-)derived. When every new event lands
    /// after the last existing delta — the common live-injection case —
    /// this appends without re-deriving a single old path.
    ///
    /// Returns the number of deltas derived by this call. The caller is
    /// responsible for only injecting events whose time is still in the
    /// future of whatever has already been applied; extending *behind* an
    /// applied change would rewrite history that enforcement already acted
    /// on.
    pub fn extend(&mut self, extra: &EventSchedule) -> usize {
        if extra.is_empty() {
            return 0;
        }
        // kollaps-analyze: allow(wall-clock) -- precompute-time diagnostic (stats.precompute_micros); never read by the emulation
        let started = std::time::Instant::now();
        let Some(cut) = extra.events().first().map(|e| e.at) else {
            return 0;
        };
        // Deltas strictly before the cut survive untouched.
        let keep = self.deltas.partition_point(|d| d.at < cut);
        self.deltas.truncate(keep);
        self.schedule.merge(extra);
        // Rebuild the working topology as of just before the cut: replaying
        // raw actions is O(events) graph edits — no collapse, no paths.
        let events = self.schedule.events();
        let resume = events.partition_point(|e| e.at < cut);
        let mut working = self.base.clone();
        for event in &events[..resume] {
            apply_action(&mut working, &event.action);
        }
        let prev = match self.deltas.last() {
            Some(delta) => Arc::clone(&delta.snapshot),
            None => Arc::clone(&self.initial),
        };
        fold_events(
            &mut working,
            prev,
            &events[resume..],
            &mut self.deltas,
            &mut self.stats,
            self.threads,
        );
        let derived = self.deltas.len() - keep;
        self.stats.change_times = self.deltas.len();
        self.stats.events = events.len();
        self.stats.extensions += 1;
        self.stats.precompute_micros += started.elapsed().as_micros() as u64;
        derived
    }

    /// The topology as evolved by every scheduled event with time `<= at`
    /// (a fresh clone; the timeline itself is not mutated). This is what
    /// live steering validates injected events and churn specs against.
    pub fn topology_at(&self, at: SimDuration) -> Topology {
        let mut topo = self.base.clone();
        for event in self.schedule.events().iter().take_while(|e| e.at <= at) {
            apply_action(&mut topo, &event.action);
        }
        topo
    }

    /// Every event folded into the timeline so far, in order.
    pub fn schedule(&self) -> &EventSchedule {
        &self.schedule
    }

    /// The snapshot before the first change.
    pub fn initial(&self) -> &Arc<CollapsedTopology> {
        &self.initial
    }

    /// The precomputed changes, in chronological order.
    pub fn deltas(&self) -> &[SnapshotDelta] {
        &self.deltas
    }

    /// Precompute accounting.
    pub fn stats(&self) -> &TimelineStats {
        &self.stats
    }

    /// Number of change times.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// `true` when the schedule produced no changes.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The snapshot in force at `at` (initial before the first change).
    pub fn snapshot_at(&self, at: SimDuration) -> &Arc<CollapsedTopology> {
        let idx = self.deltas.partition_point(|d| d.at <= at);
        if idx == 0 {
            &self.initial
        } else {
            &self.deltas[idx - 1].snapshot
        }
    }
}

/// Folds a sorted run of events into `deltas`: groups them by change time,
/// applies each group to `working` and derives one structurally-shared
/// snapshot per group. The shared core of [`SnapshotTimeline::precompute`]
/// and [`SnapshotTimeline::extend`]; no event is cloned.
fn fold_events(
    working: &mut Topology,
    mut prev: Arc<CollapsedTopology>,
    events: &[DynamicEvent],
    deltas: &mut Vec<SnapshotDelta>,
    stats: &mut TimelineStats,
    threads: usize,
) {
    let mut i = 0;
    while i < events.len() {
        let at = events[i].at;
        let mut j = i;
        while j < events.len() && events[j].at == at {
            j += 1;
        }
        let before: BTreeMap<LinkId, LinkProperties> = working
            .links()
            .iter()
            .map(|l| (l.id, l.properties))
            .collect();
        for event in &events[i..j] {
            apply_action(working, &event.action);
        }
        let delta = derive_snapshot(working, &prev, &before, at, j - i, stats, threads);
        prev = Arc::clone(&delta.snapshot);
        deltas.push(delta);
        i = j;
    }
}

/// Builds the snapshot after one change group, sharing unchanged paths with
/// `prev` and recording exactly what differs.
fn derive_snapshot(
    working: &Topology,
    prev: &CollapsedTopology,
    before: &BTreeMap<LinkId, LinkProperties>,
    at: SimDuration,
    events: usize,
    stats: &mut TimelineStats,
    threads: usize,
) -> SnapshotDelta {
    // Diff the link tables to find what this group touched.
    let after: BTreeMap<LinkId, LinkProperties> = working
        .links()
        .iter()
        .map(|l| (l.id, l.properties))
        .collect();
    let mut changed_links: Vec<LinkId> = Vec::new();
    // Links previously-derived paths might traverse: removed or modified.
    let mut stale_links: HashSet<LinkId> = HashSet::new();
    // `true` once the group may create *better* routes than before (a new
    // link, or a latency drop): selective re-derivation from affected
    // sources is no longer sufficient, every source must be re-derived.
    let mut improving = false;
    for (&id, props) in &after {
        match before.get(&id) {
            None => {
                changed_links.push(id);
                improving = true;
            }
            Some(old) if old != props => {
                changed_links.push(id);
                stale_links.insert(id);
                if props.latency < old.latency {
                    improving = true;
                }
            }
            Some(_) => {}
        }
    }
    for &id in before.keys() {
        if !after.contains_key(&id) {
            changed_links.push(id);
            stale_links.insert(id);
        }
    }
    changed_links.sort();

    let services: Vec<NodeId> = working.service_ids();
    let service_set: HashSet<NodeId> = services.iter().copied().collect();

    // Start from the previous snapshot's paths: `Arc` clones, no path data
    // is copied. Pairs whose endpoint service left are dropped up front.
    let mut paths = prev.paths.clone();
    let mut removed_paths: Vec<(NodeId, NodeId)> = Vec::new();
    paths.retain(|&(src, dst), _| {
        let keep = service_set.contains(&src) && service_set.contains(&dst);
        if !keep {
            removed_paths.push((src, dst));
        }
        keep
    });

    // Sources that need re-derivation: all of them when the group can
    // improve routes, otherwise only those with a path over a stale link.
    let sources: Vec<NodeId> = if improving {
        services.clone()
    } else if stale_links.is_empty() {
        Vec::new()
    } else {
        let mut affected: HashSet<NodeId> = HashSet::new();
        for (&(src, _), path) in &paths {
            if path.links.iter().any(|l| stale_links.contains(l)) {
                affected.insert(src);
            }
        }
        let mut sources: Vec<NodeId> = affected.into_iter().collect();
        sources.sort();
        sources
    };

    let mut changed_paths: Vec<(NodeId, NodeId)> = Vec::new();
    if !sources.is_empty() {
        let graph = TopologyGraph::new(working);
        // Re-derive the affected sources on the worker pool: rows of the
        // all-pairs table are independent, and `map_parallel` returns them
        // in source order, so the sequential merge below sees exactly what
        // the old sequential loop produced.
        let derived = crate::parallel::map_parallel(&sources, threads, |&src| {
            let from_src = graph.shortest_paths_from(src);
            let mut rows: Vec<((NodeId, NodeId), Option<CollapsedPath>)> =
                Vec::with_capacity(services.len().saturating_sub(1));
            for &dst in &services {
                if dst == src {
                    continue;
                }
                let fresh = from_src
                    .get(&dst)
                    .and_then(|p| collapse_path(working, src, dst, p));
                rows.push(((src, dst), fresh));
            }
            rows
        });
        for ((src, dst), fresh) in derived.into_iter().flatten() {
            match fresh {
                Some(fresh) => {
                    stats.recomputed_paths += 1;
                    let unchanged = prev
                        .paths
                        .get(&(src, dst))
                        .is_some_and(|old| **old == fresh);
                    if !unchanged {
                        paths.insert((src, dst), Arc::new(fresh));
                        changed_paths.push((src, dst));
                    }
                }
                None => {
                    if paths.remove(&(src, dst)).is_some() {
                        removed_paths.push((src, dst));
                    }
                }
            }
        }
    }
    stats.shared_paths += paths.len() - changed_paths.len();
    changed_paths.sort();
    removed_paths.sort();

    let (link_capacity, link_latency) = link_tables(working);
    let snapshot = Arc::new(CollapsedTopology {
        paths,
        addresses: prev.addresses.clone(),
        nodes_by_addr: prev.nodes_by_addr.clone(),
        link_capacity,
        link_latency,
    });
    SnapshotDelta {
        at,
        events,
        changed_links,
        changed_paths,
        removed_paths,
        snapshot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_sim::units::Bandwidth;
    use kollaps_topology::events::{DynamicAction, DynamicEvent, LinkChange};
    use kollaps_topology::generators;

    fn dumbbell() -> Topology {
        let (topo, _, _) = generators::dumbbell(
            3,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        topo
    }

    fn set_edge_latency(orig: &str, dest: &str, secs: u64, ms: u64) -> DynamicEvent {
        DynamicEvent {
            at: SimDuration::from_secs(secs),
            action: DynamicAction::SetLinkProperties {
                orig: orig.into(),
                dest: dest.into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(ms)),
                    ..LinkChange::default()
                },
            },
        }
    }

    #[test]
    fn empty_schedule_precomputes_only_the_initial_snapshot() {
        let topo = dumbbell();
        let timeline = SnapshotTimeline::precompute(&topo, &EventSchedule::new());
        assert!(timeline.is_empty());
        assert_eq!(timeline.initial().pair_count(), 6 * 5);
        assert_eq!(timeline.stats().events, 0);
        assert!(Arc::ptr_eq(
            timeline.snapshot_at(SimDuration::from_secs(99)),
            timeline.initial()
        ));
    }

    #[test]
    fn edge_change_only_rederives_paths_over_that_edge() {
        let topo = dumbbell();
        let mut schedule = EventSchedule::new();
        // Degrade client-0's access link: only the 10 ordered pairs
        // touching client-0 can change; the other 20 must be shared.
        schedule.push(set_edge_latency("client-0", "bridge-left", 5, 40));
        let timeline = SnapshotTimeline::precompute(&topo, &schedule);
        assert_eq!(timeline.len(), 1);
        let delta = &timeline.deltas()[0];
        let c0 = topo.node_by_name("client-0").unwrap();
        assert!(delta.changed_paths.iter().all(|&(s, d)| s == c0 || d == c0));
        assert!(delta.removed_paths.is_empty());
        assert_eq!(delta.changed_paths.len(), 10);
        assert_eq!(delta.swap_cost(), 10);
        // Structural sharing: an untouched pair is the same Arc.
        let c1 = topo.node_by_name("client-1").unwrap();
        let s1 = topo.node_by_name("server-1").unwrap();
        assert!(Arc::ptr_eq(
            timeline.initial().path_handle(c1, s1).unwrap(),
            delta.snapshot.path_handle(c1, s1).unwrap()
        ));
        // The changed pair is not shared, and carries the new latency.
        let s0 = topo.node_by_name("server-0").unwrap();
        assert!(!Arc::ptr_eq(
            timeline.initial().path_handle(c0, s0).unwrap(),
            delta.snapshot.path_handle(c0, s0).unwrap()
        ));
        assert_eq!(
            delta.snapshot.path(c0, s0).unwrap().latency,
            SimDuration::from_millis(40 + 10 + 1)
        );
    }

    #[test]
    fn snapshots_match_the_online_full_rebuild() {
        let topo = dumbbell();
        let mut schedule = EventSchedule::new();
        schedule.push(set_edge_latency("client-0", "bridge-left", 2, 40));
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(4),
            action: DynamicAction::LinkLeave {
                orig: "client-1".into(),
                dest: "bridge-left".into(),
            },
        });
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(6),
            action: DynamicAction::LinkJoin {
                orig: "client-1".into(),
                dest: "bridge-left".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(1)),
                    up: Some(Bandwidth::from_mbps(100)),
                    down: Some(Bandwidth::from_mbps(100)),
                    ..LinkChange::default()
                },
            },
        });
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(8),
            action: DynamicAction::NodeLeave {
                name: "server-2".into(),
            },
        });
        let timeline = SnapshotTimeline::precompute(&topo, &schedule);
        assert_eq!(timeline.len(), 4);

        // Replay the schedule online and full-rebuild at every change time.
        let mut online = topo.clone();
        let mut reference = CollapsedTopology::build(&topo);
        for delta in timeline.deltas() {
            for event in schedule.events_at(delta.at) {
                apply_action(&mut online, &event.action);
            }
            reference = reference.rebuild_with_addresses(&online);
            assert_eq!(delta.snapshot.pair_count(), reference.pair_count());
            for (pair, path) in reference.path_handles() {
                let timeline_path = delta
                    .snapshot
                    .path_handle(pair.0, pair.1)
                    .unwrap_or_else(|| panic!("pair {pair:?} missing at {:?}", delta.at));
                assert_eq!(**timeline_path, **path, "pair {pair:?} at {:?}", delta.at);
            }
            assert_eq!(
                delta.snapshot.link_capacities().len(),
                reference.link_capacities().len()
            );
        }
    }

    /// The extension invariant: extending an existing timeline with extra
    /// events yields exactly the deltas a from-scratch precompute of the
    /// merged schedule would, while keeping every delta before the earliest
    /// new event untouched (same `Arc`s, same indices).
    #[test]
    fn extend_matches_a_from_scratch_precompute() {
        let topo = dumbbell();
        let mut schedule = EventSchedule::new();
        schedule.push(set_edge_latency("client-0", "bridge-left", 2, 40));
        schedule.push(set_edge_latency("client-1", "bridge-left", 6, 25));
        let mut timeline = SnapshotTimeline::precompute(&topo, &schedule);
        let first_snapshot = Arc::clone(&timeline.deltas()[0].snapshot);

        // Append-only extension (after the last delta) plus a mid-schedule
        // injection (between the two existing deltas) in one call.
        let mut extra = EventSchedule::new();
        extra.push(set_edge_latency("server-0", "bridge-right", 4, 33));
        extra.push(set_edge_latency("client-2", "bridge-left", 9, 50));
        let derived = timeline.extend(&extra);
        // The t=2 delta is before the cut (t=4) and survives; t=4, t=6 and
        // t=9 are (re-)derived.
        assert_eq!(derived, 3);
        assert_eq!(timeline.len(), 4);
        assert!(Arc::ptr_eq(&timeline.deltas()[0].snapshot, &first_snapshot));
        assert_eq!(timeline.stats().extensions, 1);

        let mut merged = schedule.clone();
        merged.merge(&extra);
        let reference = SnapshotTimeline::precompute(&topo, &merged);
        assert_eq!(timeline.len(), reference.len());
        for (ours, theirs) in timeline.deltas().iter().zip(reference.deltas()) {
            assert_eq!(ours.at, theirs.at);
            assert_eq!(ours.changed_paths, theirs.changed_paths);
            assert_eq!(ours.removed_paths, theirs.removed_paths);
            assert_eq!(ours.snapshot.pair_count(), theirs.snapshot.pair_count());
            for (pair, path) in theirs.snapshot.path_handles() {
                assert_eq!(
                    **ours.snapshot.path_handle(pair.0, pair.1).unwrap(),
                    **path,
                    "pair {pair:?} at {:?}",
                    ours.at
                );
            }
        }
    }

    #[test]
    fn topology_at_replays_the_schedule() {
        let topo = dumbbell();
        let mut schedule = EventSchedule::new();
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(3),
            action: DynamicAction::NodeLeave {
                name: "client-2".into(),
            },
        });
        let timeline = SnapshotTimeline::precompute(&topo, &schedule);
        assert!(timeline
            .topology_at(SimDuration::from_secs(2))
            .node_by_name("client-2")
            .is_some());
        assert!(timeline
            .topology_at(SimDuration::from_secs(3))
            .node_by_name("client-2")
            .is_none());
    }

    #[test]
    fn node_leave_removes_every_pair_of_that_service() {
        let topo = dumbbell();
        let mut schedule = EventSchedule::new();
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(1),
            action: DynamicAction::NodeLeave {
                name: "client-2".into(),
            },
        });
        let timeline = SnapshotTimeline::precompute(&topo, &schedule);
        let delta = &timeline.deltas()[0];
        let c2 = topo.node_by_name("client-2").unwrap();
        assert_eq!(delta.removed_paths.len(), 10);
        assert!(delta.removed_paths.iter().all(|&(s, d)| s == c2 || d == c2));
        assert!(delta.snapshot.path(c2, c2).is_none());
        // The address assignment survives (containers keep their IP).
        assert_eq!(
            delta.snapshot.address_of(c2),
            timeline.initial().address_of(c2)
        );
    }
}
