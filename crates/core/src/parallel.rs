//! Scoped worker-pool helpers for the per-tick hot loops.
//!
//! The emulation steps its per-host managers on a `std::thread::scope` pool
//! (the same no-new-crates pattern as the `Campaign` sweep pool in the
//! scenario layer). Work is split into **disjoint `chunks_mut` slices**, one
//! per worker, so no locking is involved and — because each manager's
//! collect/enforce work reads and writes only its own state — the outcome is
//! byte-identical to the sequential loop regardless of scheduling.

/// Worker threads the emulation should use, read from the `KOLLAPS_THREADS`
/// environment variable. Defaults to 1 (fully sequential) so single-core
/// runs pay no scope/spawn overhead; CI exercises the parallel path by
/// exporting `KOLLAPS_THREADS=2` for a tier-1 pass.
pub fn threads_from_env() -> usize {
    std::env::var("KOLLAPS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(1)
}

/// Applies `f` to every item, splitting the slice across up to `threads`
/// scoped workers (sequential when `threads <= 1` or the slice is short).
///
/// Each worker owns a disjoint chunk, so for any `f` that only touches its
/// item the result is identical to the sequential loop — this is what keeps
/// parallel manager stepping bit-for-bit equal to `KOLLAPS_THREADS=1`.
pub fn for_each_parallel<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        for item in items.iter_mut() {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for slice in items.chunks_mut(chunk) {
            scope.spawn(move || {
                for item in slice {
                    f(item);
                }
            });
        }
    });
}

/// Maps `f` over the items on up to `threads` scoped workers and returns the
/// results **in input order** (chunks are joined in sequence), so callers can
/// merge deterministically. Sequential when `threads <= 1`.
pub fn map_parallel<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            // A worker can only fail by panicking in `f`; propagate the
            // original payload instead of masking it behind a new panic.
            match handle.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_is_one_thread() {
        // The variable is unset in the test environment unless CI sets it;
        // either way the parse path must yield at least 1.
        assert!(threads_from_env() >= 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut a: Vec<u64> = (0..103).collect();
        let mut b = a.clone();
        for_each_parallel(&mut a, 1, |x| *x = x.wrapping_mul(31) ^ 7);
        for_each_parallel(&mut b, 8, |x| *x = x.wrapping_mul(31) ^ 7);
        assert_eq!(a, b);
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u32> = (0..57).collect();
        let seq = map_parallel(&items, 1, |&x| x * 2 + 1);
        let par = map_parallel(&items, 8, |&x| x * 2 + 1);
        assert_eq!(seq, par);
        assert_eq!(seq[10], 21);
    }

    #[test]
    fn handles_empty_and_tiny_slices() {
        let mut empty: Vec<u32> = Vec::new();
        for_each_parallel(&mut empty, 4, |_| unreachable!());
        let mut one = vec![5u32];
        for_each_parallel(&mut one, 4, |x| *x += 1);
        assert_eq!(one, vec![6]);
    }
}
