//! Experiment runtime: drives transport endpoints against a dataplane.
//!
//! The runtime is the glue between the workload layer (iPerf-, wrk2-,
//! ping-style traffic generators) and a [`Dataplane`] implementation — the
//! Kollaps collapsed emulation ([`crate::emulation::KollapsDataplane`]) or
//! one of the full-state baselines. It owns the discrete-event loop, the TCP
//! and UDP endpoints, and the measurement hooks the evaluation harness reads
//! (per-flow goodput, receiver-side throughput series, ping RTTs).

use std::collections::HashMap;

use kollaps_netmodel::packet::{Addr, DropReason, FlowId, Packet, PacketKind, HEADER_SIZE, MSS};
use kollaps_sim::prelude::*;
use kollaps_sim::stats::Summary;
use kollaps_transport::tcp::{TcpReceiver, TcpSender, TcpSenderConfig, TransferSize};
use kollaps_transport::udp::UdpSender;

/// Outcome of handing a packet to the dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The packet was accepted and will eventually be delivered (or lost
    /// inside the network).
    Sent,
    /// The egress queue is full; the sender must retry later. No loss signal
    /// is generated (TCP Small Queues behaviour).
    Backpressure,
    /// The packet was dropped immediately, with the reason.
    Dropped(DropReason),
}

/// A network under test: either the Kollaps collapsed emulation or one of
/// the full-state baselines.
pub trait Dataplane {
    /// Offers a packet to the network at `now`.
    fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome;

    /// The next instant at which the network has something to do (a queued
    /// packet becomes deliverable), if any.
    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime>;

    /// Packets that have reached their destination container by `now`.
    fn deliver(&mut self, now: SimTime) -> Vec<Packet>;

    /// Periodic maintenance hook (the Kollaps emulation loop). Returns the
    /// time of the next maintenance round, or `None` if not needed.
    fn tick(&mut self, _now: SimTime) -> Option<SimTime> {
        None
    }
}

/// Events reported back to the workload driver.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeEvent {
    /// A bounded TCP transfer finished (all data acknowledged).
    TcpCompleted {
        /// The completed flow.
        flow: FlowId,
        /// Completion time.
        at: SimTime,
    },
    /// A ping probe received an echo reply.
    PingReply {
        /// The probe flow.
        flow: FlowId,
        /// Echo sequence number.
        seq: u32,
        /// Measured round-trip time.
        rtt: SimDuration,
    },
}

#[derive(Debug, Clone)]
enum Ev {
    StartTcp(FlowId),
    RtoCheck(FlowId),
    UdpSend(FlowId),
    PingSend(FlowId),
    DataplaneWakeup,
    Tick,
    PumpRetry(FlowId),
}

#[derive(Debug)]
struct PingState {
    src: Addr,
    dst: Addr,
    interval: SimDuration,
    remaining: u64,
    next_seq: u32,
    in_flight: HashMap<u32, SimTime>,
    rtts: Summary,
    packet_counter: u64,
}

/// The experiment runtime.
pub struct Runtime<D: Dataplane> {
    /// The network under test.
    pub dataplane: D,
    queue: EventQueue<Ev>,
    tcp_senders: HashMap<FlowId, TcpSender>,
    tcp_receivers: HashMap<FlowId, TcpReceiver>,
    udp_senders: HashMap<FlowId, UdpSender>,
    udp_delivered: HashMap<FlowId, u64>,
    pings: HashMap<FlowId, PingState>,
    rx_meters: HashMap<FlowId, RateMeter>,
    next_flow: u64,
    pending_events: Vec<RuntimeEvent>,
    wakeup_scheduled: Option<SimTime>,
    /// Flows with an outstanding RTO-check event (at most one per flow, to
    /// keep the event count linear in simulated time rather than in packets).
    rto_scheduled: std::collections::HashSet<FlowId>,
    /// Rotating start index of the back-pressure pump round-robin (see
    /// `Ev::DataplaneWakeup`).
    pump_rotation: usize,
    sample_window: SimDuration,
}

impl<D: Dataplane> Runtime<D> {
    /// Creates a runtime over `dataplane`. Receiver-side throughput is
    /// sampled in one-second windows (like iPerf3's periodic reports).
    pub fn new(dataplane: D) -> Self {
        let mut rt = Runtime {
            dataplane,
            queue: EventQueue::new(),
            tcp_senders: HashMap::new(),
            tcp_receivers: HashMap::new(),
            udp_senders: HashMap::new(),
            udp_delivered: HashMap::new(),
            pings: HashMap::new(),
            rx_meters: HashMap::new(),
            next_flow: 1,
            pending_events: Vec::new(),
            wakeup_scheduled: None,
            rto_scheduled: std::collections::HashSet::new(),
            pump_rotation: 0,
            sample_window: SimDuration::from_secs(1),
        };
        rt.queue.schedule(SimTime::ZERO, Ev::Tick);
        rt
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Starts a TCP transfer from `src` to `dst` at `start`.
    pub fn add_tcp_flow(
        &mut self,
        src: Addr,
        dst: Addr,
        size: TransferSize,
        config: TcpSenderConfig,
        start: SimTime,
    ) -> FlowId {
        let flow = FlowId(self.next_flow);
        self.next_flow += 1;
        self.tcp_senders.insert(
            flow,
            TcpSender::new(flow, src, dst, size, config, start.max(self.now())),
        );
        self.tcp_receivers
            .insert(flow, TcpReceiver::new(flow, dst, src));
        self.rx_meters
            .insert(flow, RateMeter::new(self.sample_window));
        self.queue
            .schedule(start.max(self.now()), Ev::StartTcp(flow));
        flow
    }

    /// Stops a TCP flow: the sender is removed, in-flight packets are
    /// ignored on arrival.
    pub fn stop_tcp_flow(&mut self, flow: FlowId) {
        self.tcp_senders.remove(&flow);
    }

    /// Starts a constant-bit-rate UDP flow.
    pub fn add_udp_flow(
        &mut self,
        src: Addr,
        dst: Addr,
        rate: Bandwidth,
        start: SimTime,
        stop: Option<SimTime>,
    ) -> FlowId {
        let flow = FlowId(self.next_flow);
        self.next_flow += 1;
        let mut sender = UdpSender::new(flow, src, dst, rate, MSS, start.max(self.now()));
        if let Some(stop) = stop {
            sender.stop_at(stop);
        }
        self.udp_senders.insert(flow, sender);
        self.udp_delivered.insert(flow, 0);
        self.rx_meters
            .insert(flow, RateMeter::new(self.sample_window));
        self.queue
            .schedule(start.max(self.now()), Ev::UdpSend(flow));
        flow
    }

    /// Starts a ping probe sending `count` echo requests every `interval`.
    pub fn add_ping(
        &mut self,
        src: Addr,
        dst: Addr,
        interval: SimDuration,
        count: u64,
        start: SimTime,
    ) -> FlowId {
        let flow = FlowId(self.next_flow);
        self.next_flow += 1;
        self.pings.insert(
            flow,
            PingState {
                src,
                dst,
                interval,
                remaining: count,
                next_seq: 0,
                in_flight: HashMap::new(),
                rtts: Summary::new(),
                packet_counter: 0,
            },
        );
        self.queue
            .schedule(start.max(self.now()), Ev::PingSend(flow));
        flow
    }

    /// Stops a ping probe: no further echo requests are sent and in-flight
    /// replies are ignored on arrival. The collected RTT statistics remain
    /// readable through [`Runtime::ping_rtts`].
    pub fn stop_ping(&mut self, flow: FlowId) {
        if let Some(state) = self.pings.get_mut(&flow) {
            state.remaining = 0;
            state.in_flight.clear();
        }
    }

    /// Appends more application data to an existing TCP flow (request /
    /// response workloads reusing one connection).
    pub fn push_tcp_bytes(&mut self, flow: FlowId, bytes: u64) {
        let now = self.now();
        if let Some(sender) = self.tcp_senders.get_mut(&flow) {
            sender.push_bytes(bytes);
        }
        self.queue.schedule(now, Ev::PumpRetry(flow));
    }

    /// The sender of a TCP flow (for statistics), if still present.
    pub fn tcp_sender(&self, flow: FlowId) -> Option<&TcpSender> {
        self.tcp_senders.get(&flow)
    }

    /// Receiver-side bytes delivered in order for a TCP flow.
    pub fn tcp_received_bytes(&self, flow: FlowId) -> u64 {
        self.tcp_receivers
            .get(&flow)
            .map(|r| r.received_bytes())
            .unwrap_or(0)
    }

    /// Receiver-side throughput series (Mb/s per one-second window).
    pub fn throughput_series(&self, flow: FlowId) -> Option<&TimeSeries> {
        self.rx_meters.get(&flow).map(|m| m.series())
    }

    /// Payload bytes delivered for a UDP flow.
    pub fn udp_delivered_bytes(&self, flow: FlowId) -> u64 {
        self.udp_delivered.get(&flow).copied().unwrap_or(0)
    }

    /// RTT samples collected by a ping probe (milliseconds).
    pub fn ping_rtts(&self, flow: FlowId) -> Option<&Summary> {
        self.pings.get(&flow).map(|p| &p.rtts)
    }

    /// Runs the experiment until `deadline`, returning the workload-visible
    /// events that occurred.
    pub fn run_until(&mut self, deadline: SimTime) -> Vec<RuntimeEvent> {
        loop {
            self.sync_wakeup();
            match self.queue.pop_until(deadline) {
                Some((now, ev)) => {
                    self.handle(now, ev);
                    self.drain(now);
                }
                None => {
                    self.drain(deadline);
                    break;
                }
            }
        }
        std::mem::take(&mut self.pending_events)
    }

    fn sync_wakeup(&mut self) {
        let now = self.queue.now();
        if let Some(w) = self.dataplane.next_wakeup(now) {
            let w = w.max(now);
            let need = match self.wakeup_scheduled {
                Some(existing) => w < existing || existing < now,
                None => true,
            };
            if need && w < SimTime::MAX {
                self.queue.schedule(w, Ev::DataplaneWakeup);
                self.wakeup_scheduled = Some(w);
            }
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::StartTcp(flow) | Ev::PumpRetry(flow) => self.pump_tcp(now, flow),
            Ev::RtoCheck(flow) => {
                self.rto_scheduled.remove(&flow);
                let fired = match self.tcp_senders.get_mut(&flow) {
                    Some(s) => s.on_timer(now),
                    None => false,
                };
                if fired {
                    self.pump_tcp(now, flow);
                } else {
                    self.schedule_rto(flow);
                }
            }
            Ev::UdpSend(flow) => {
                let packets = match self.udp_senders.get_mut(&flow) {
                    Some(s) => s.poll_send(now),
                    None => Vec::new(),
                };
                for pkt in packets {
                    // UDP does not retry on back-pressure: the datagram is
                    // simply lost to the application.
                    let _ = self.dataplane.send(now, pkt);
                }
                if let Some(next) = self.udp_senders.get(&flow).and_then(|s| s.next_wakeup()) {
                    self.queue.schedule(next.max(now), Ev::UdpSend(flow));
                }
            }
            Ev::PingSend(flow) => {
                if let Some(state) = self.pings.get_mut(&flow) {
                    if state.remaining > 0 {
                        state.remaining -= 1;
                        let seq = state.next_seq;
                        state.next_seq += 1;
                        state.packet_counter += 1;
                        state.in_flight.insert(seq, now);
                        let pkt = Packet::new(
                            state.packet_counter,
                            flow,
                            state.src,
                            state.dst,
                            HEADER_SIZE + DataSize::from_bytes(56),
                            PacketKind::IcmpEchoRequest { seq },
                            now,
                        );
                        let interval = state.interval;
                        let remaining = state.remaining;
                        let _ = self.dataplane.send(now, pkt);
                        if remaining > 0 {
                            self.queue.schedule(now + interval, Ev::PingSend(flow));
                        }
                    }
                }
            }
            Ev::DataplaneWakeup => {
                self.wakeup_scheduled = None;
                // Back-pressured TCP senders get another chance whenever the
                // dataplane makes progress. Under contention the pump order
                // decides who wins the freed egress slots, so it must be
                // deterministic (HashMap order is a per-process coin flip)
                // but not biased (always-lowest-id-first would let one flow
                // starve the rest): round-robin over the sorted ids with a
                // rotating start.
                let mut flows: Vec<FlowId> = self.tcp_senders.keys().copied().collect();
                flows.sort();
                if !flows.is_empty() {
                    let start = self.pump_rotation % flows.len();
                    self.pump_rotation = self.pump_rotation.wrapping_add(1);
                    flows.rotate_left(start);
                }
                for flow in flows {
                    self.pump_tcp(now, flow);
                }
            }
            Ev::Tick => {
                if let Some(next) = self.dataplane.tick(now) {
                    self.queue.schedule(next.max(now), Ev::Tick);
                }
            }
        }
    }

    fn pump_tcp(&mut self, now: SimTime, flow: FlowId) {
        let Some(sender) = self.tcp_senders.get_mut(&flow) else {
            return;
        };
        let mut packets = sender.poll_send(now).into_iter();
        while let Some(pkt) = packets.next() {
            match self.dataplane.send(now, pkt.clone()) {
                SendOutcome::Sent | SendOutcome::Dropped(_) => {}
                SendOutcome::Backpressure => {
                    // Requeue this packet AND the rest of the batch — they
                    // are all marked outstanding, so quietly discarding them
                    // would punch artificial holes into the sequence space.
                    // Retry on the next dataplane wakeup.
                    sender.on_backpressure(&pkt);
                    for rest in packets.by_ref() {
                        sender.on_backpressure(&rest);
                    }
                    break;
                }
            }
        }
        self.schedule_rto(flow);
    }

    fn schedule_rto(&mut self, flow: FlowId) {
        if self.rto_scheduled.contains(&flow) {
            return;
        }
        if let Some(deadline) = self.tcp_senders.get(&flow).and_then(|s| s.rto_deadline()) {
            let at = deadline.max(self.queue.now());
            self.queue.schedule(at, Ev::RtoCheck(flow));
            self.rto_scheduled.insert(flow);
        }
    }

    fn drain(&mut self, now: SimTime) {
        let delivered = self.dataplane.deliver(now);
        for pkt in delivered {
            self.on_arrival(now, pkt);
        }
        self.sync_wakeup();
    }

    fn on_arrival(&mut self, now: SimTime, pkt: Packet) {
        match pkt.kind {
            PacketKind::TcpData { seq } => {
                let Some(receiver) = self.tcp_receivers.get_mut(&pkt.flow) else {
                    return;
                };
                let ack = receiver.on_data(now, seq);
                if let Some(meter) = self.rx_meters.get_mut(&pkt.flow) {
                    meter.record(now, pkt.size.saturating_sub(HEADER_SIZE));
                }
                // ACKs that hit back-pressure are dropped; TCP recovers via
                // later cumulative ACKs.
                let _ = self.dataplane.send(now, ack);
            }
            PacketKind::TcpAck { ack, .. } => {
                let completed = {
                    let Some(sender) = self.tcp_senders.get_mut(&pkt.flow) else {
                        return;
                    };
                    let was_complete = sender.is_complete();
                    sender.on_ack(now, ack);
                    !was_complete && sender.is_complete()
                };
                if completed {
                    self.pending_events.push(RuntimeEvent::TcpCompleted {
                        flow: pkt.flow,
                        at: now,
                    });
                }
                self.pump_tcp(now, pkt.flow);
            }
            PacketKind::TcpHandshake | PacketKind::TcpFin => {}
            PacketKind::Udp => {
                if let Some(bytes) = self.udp_delivered.get_mut(&pkt.flow) {
                    *bytes += pkt.size.saturating_sub(HEADER_SIZE).as_bytes();
                }
                if let Some(meter) = self.rx_meters.get_mut(&pkt.flow) {
                    meter.record(now, pkt.size.saturating_sub(HEADER_SIZE));
                }
            }
            PacketKind::IcmpEchoRequest { seq } => {
                // The destination stack answers immediately.
                let reply = Packet::new(
                    pkt.id,
                    pkt.flow,
                    pkt.dst,
                    pkt.src,
                    pkt.size,
                    PacketKind::IcmpEchoReply { seq },
                    now,
                );
                let _ = self.dataplane.send(now, reply);
            }
            PacketKind::IcmpEchoReply { seq } => {
                if let Some(state) = self.pings.get_mut(&pkt.flow) {
                    if let Some(sent) = state.in_flight.remove(&seq) {
                        let rtt = now - sent;
                        state.rtts.record(rtt.as_millis_f64());
                        self.pending_events.push(RuntimeEvent::PingReply {
                            flow: pkt.flow,
                            seq,
                            rtt,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial dataplane: fixed delay, unlimited bandwidth, optional loss
    /// of every n-th packet. Lets the runtime logic be tested independently
    /// of the Kollaps emulation.
    struct FixedDelayNet {
        delay: SimDuration,
        in_flight: Vec<(SimTime, Packet)>,
        drop_every: Option<u64>,
        counter: u64,
    }

    impl FixedDelayNet {
        fn new(delay: SimDuration) -> Self {
            FixedDelayNet {
                delay,
                in_flight: Vec::new(),
                drop_every: None,
                counter: 0,
            }
        }
    }

    impl Dataplane for FixedDelayNet {
        fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome {
            self.counter += 1;
            if let Some(n) = self.drop_every {
                if self.counter.is_multiple_of(n) && packet.is_data() {
                    return SendOutcome::Dropped(DropReason::NetemLoss);
                }
            }
            self.in_flight.push((now + self.delay, packet));
            SendOutcome::Sent
        }

        fn next_wakeup(&mut self, _now: SimTime) -> Option<SimTime> {
            self.in_flight.iter().map(|(t, _)| *t).min()
        }

        fn deliver(&mut self, now: SimTime) -> Vec<Packet> {
            let (ready, rest): (Vec<_>, Vec<_>) =
                self.in_flight.drain(..).partition(|(t, _)| *t <= now);
            self.in_flight = rest;
            ready.into_iter().map(|(_, p)| p).collect()
        }
    }

    fn addr(i: u32) -> Addr {
        Addr::container(i)
    }

    #[test]
    fn bounded_tcp_transfer_completes_and_reports() {
        let mut rt = Runtime::new(FixedDelayNet::new(SimDuration::from_millis(10)));
        let flow = rt.add_tcp_flow(
            addr(0),
            addr(1),
            TransferSize::Bytes(100 * MSS.as_bytes()),
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let events = rt.run_until(SimTime::from_secs(5));
        assert!(events
            .iter()
            .any(|e| matches!(e, RuntimeEvent::TcpCompleted { flow: f, .. } if *f == flow)));
        assert_eq!(rt.tcp_received_bytes(flow), 100 * MSS.as_bytes());
        let sender = rt.tcp_sender(flow).unwrap();
        assert!(sender.is_complete());
        assert_eq!(sender.stats().retransmissions, 0);
    }

    #[test]
    fn tcp_recovers_from_packet_loss() {
        let mut net = FixedDelayNet::new(SimDuration::from_millis(5));
        net.drop_every = Some(20);
        let mut rt = Runtime::new(net);
        let flow = rt.add_tcp_flow(
            addr(0),
            addr(1),
            TransferSize::Bytes(200 * MSS.as_bytes()),
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let events = rt.run_until(SimTime::from_secs(30));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RuntimeEvent::TcpCompleted { .. })),
            "transfer should complete despite losses"
        );
        let stats = rt.tcp_sender(flow).unwrap().stats();
        assert!(stats.retransmissions > 0);
        assert_eq!(rt.tcp_received_bytes(flow), 200 * MSS.as_bytes());
    }

    #[test]
    fn ping_measures_the_round_trip() {
        let mut rt = Runtime::new(FixedDelayNet::new(SimDuration::from_millis(17)));
        let probe = rt.add_ping(
            addr(0),
            addr(1),
            SimDuration::from_millis(100),
            20,
            SimTime::ZERO,
        );
        let events = rt.run_until(SimTime::from_secs(5));
        let replies = events
            .iter()
            .filter(|e| matches!(e, RuntimeEvent::PingReply { .. }))
            .count();
        assert_eq!(replies, 20);
        let rtts = rt.ping_rtts(probe).unwrap();
        assert_eq!(rtts.len(), 20);
        assert!(
            (rtts.mean() - 34.0).abs() < 0.01,
            "mean rtt {}",
            rtts.mean()
        );
    }

    #[test]
    fn stopped_ping_sends_no_further_probes() {
        let mut rt = Runtime::new(FixedDelayNet::new(SimDuration::from_millis(10)));
        let probe = rt.add_ping(
            addr(0),
            addr(1),
            SimDuration::from_millis(100),
            1_000,
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_millis(450));
        rt.stop_ping(probe);
        let _ = rt.run_until(SimTime::from_secs(5));
        let rtts = rt.ping_rtts(probe).unwrap();
        // Probes at 0/100/200/300/400 ms got replies; nothing after the stop.
        assert_eq!(rtts.len(), 5);
    }

    #[test]
    fn udp_delivers_at_application_rate() {
        let mut rt = Runtime::new(FixedDelayNet::new(SimDuration::from_millis(1)));
        let flow = rt.add_udp_flow(
            addr(0),
            addr(1),
            Bandwidth::from_mbps(10),
            SimTime::ZERO,
            Some(SimTime::from_secs(1)),
        );
        let _ = rt.run_until(SimTime::from_secs(2));
        let delivered = rt.udp_delivered_bytes(flow);
        let mbps = DataSize::from_bytes(delivered)
            .rate_over(SimDuration::from_secs(1))
            .as_mbps();
        assert!((9.0..=10.5).contains(&mbps), "udp delivered {mbps} Mb/s");
    }

    #[test]
    fn throughput_series_tracks_the_transfer() {
        let mut rt = Runtime::new(FixedDelayNet::new(SimDuration::from_millis(2)));
        let flow = rt.add_tcp_flow(
            addr(0),
            addr(1),
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(5));
        let series = rt.throughput_series(flow).unwrap();
        assert!(!series.is_empty());
        assert!(series.mean() > 0.0);
        rt.stop_tcp_flow(flow);
        assert!(rt.tcp_sender(flow).is_none());
    }

    #[test]
    fn push_bytes_drives_request_response_patterns() {
        let mut rt = Runtime::new(FixedDelayNet::new(SimDuration::from_millis(5)));
        let flow = rt.add_tcp_flow(
            addr(0),
            addr(1),
            TransferSize::Bytes(MSS.as_bytes()),
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let first = rt.run_until(SimTime::from_secs(1));
        assert_eq!(first.len(), 1);
        // Push a second "request" on the same connection.
        rt.push_tcp_bytes(flow, 10 * MSS.as_bytes());
        let second = rt.run_until(SimTime::from_secs(2));
        assert!(second
            .iter()
            .any(|e| matches!(e, RuntimeEvent::TcpCompleted { .. })));
        assert_eq!(rt.tcp_received_bytes(flow), 11 * MSS.as_bytes());
    }
}
