//! RTT-aware Min-Max bandwidth sharing with the work-conserving
//! maximization step (paper §3).
//!
//! On every link, each active flow `f` receives a share proportional to the
//! inverse of its round-trip time:
//!
//! ```text
//! Share(f) = ( RTT(f) · Σ_i 1/RTT(f_i) )⁻¹ · capacity
//! ```
//!
//! which is the allocation TCP Reno converges to. A flow may be unable to
//! use its share — it is limited by another link of its path, by its own
//! demand, or by the collapsed path's maximum bandwidth. In that case the
//! unused capacity is redistributed among the remaining flows of the link
//! proportionally to their original shares (the *maximization step*),
//! iterated until a fixed point. The solver below implements this as
//! weighted progressive filling: repeatedly fix demand-limited flows, then
//! saturate the most contended link, until every flow is fixed. Kollaps
//! enforces the result per destination rather than per flow.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

use kollaps_topology::model::LinkId;

/// A flow competing for bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowDemand {
    /// Opaque identifier chosen by the caller (Kollaps uses one entry per
    /// source/destination container pair).
    pub id: u64,
    /// The links of the flow's collapsed path.
    pub links: Vec<LinkId>,
    /// The flow's round-trip time (used as the fairness weight).
    pub rtt: SimDuration,
    /// Upper bound on what the flow can use: the minimum of the collapsed
    /// path's maximum bandwidth and the application demand, when known.
    pub demand: Bandwidth,
}

impl FlowDemand {
    /// Fairness weight `1 / RTT(f)` in 1/seconds (clamped to avoid division
    /// by zero for co-located containers).
    fn weight(&self) -> f64 {
        1.0 / self.rtt.as_secs_f64().max(1e-6)
    }
}

/// The allocation computed by [`allocate`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Bandwidth allocated to each flow, keyed by [`FlowDemand::id`].
    pub per_flow: HashMap<u64, Bandwidth>,
}

impl Allocation {
    /// Allocated bandwidth of a flow (zero if unknown).
    pub fn of(&self, id: u64) -> Bandwidth {
        self.per_flow.get(&id).copied().unwrap_or(Bandwidth::ZERO)
    }
}

/// Computes the RTT-aware min-max allocation for `flows` over the links with
/// the given capacities.
///
/// Links missing from `capacities` are treated as unconstrained. The
/// algorithm terminates after at most `flows.len()` rounds because every
/// round fixes at least one flow.
pub fn allocate(flows: &[FlowDemand], capacities: &BTreeMap<LinkId, Bandwidth>) -> Allocation {
    let mut allocation = Allocation::default();
    if flows.is_empty() {
        return allocation;
    }

    // Remaining capacity per constrained link. Ordered map: the solver
    // iterates it (bottleneck search) and the distributed runtime replays
    // this computation on every host, so iteration order must be stable.
    let mut remaining: BTreeMap<LinkId, f64> = capacities
        .iter()
        .filter(|(_, c)| **c != Bandwidth::MAX)
        .map(|(&l, &c)| (l, c.as_bps() as f64))
        .collect();

    let mut unfixed: Vec<usize> = (0..flows.len()).collect();

    while !unfixed.is_empty() {
        // Sum of weights of unfixed flows per link.
        let mut weight_on_link: BTreeMap<LinkId, f64> = BTreeMap::new();
        for &i in &unfixed {
            for link in &flows[i].links {
                if remaining.contains_key(link) {
                    *weight_on_link.entry(*link).or_default() += flows[i].weight();
                }
            }
        }

        // Tentative share of each unfixed flow: the minimum over its
        // constrained links of its weighted share of the remaining capacity.
        let mut share: HashMap<usize, f64> = HashMap::new();
        for &i in &unfixed {
            let mut s = f64::INFINITY;
            for link in &flows[i].links {
                if let Some(&cap) = remaining.get(link) {
                    let w = weight_on_link.get(link).copied().unwrap_or(0.0);
                    if w > 0.0 {
                        s = s.min(cap * flows[i].weight() / w);
                    }
                }
            }
            share.insert(i, s);
        }

        // 1. Fix every flow whose demand (or path cap) is below its share —
        //    these are the flows the maximization step takes capacity from.
        let demand_limited: Vec<usize> = unfixed
            .iter()
            .copied()
            .filter(|&i| {
                let cap = flows[i].demand.as_bps() as f64;
                cap <= share[&i] + 1e-9
            })
            .collect();
        if !demand_limited.is_empty() {
            for i in demand_limited {
                let granted = flows[i].demand.as_bps() as f64;
                fix_flow(&flows[i], granted, &mut remaining, &mut allocation);
                unfixed.retain(|&u| u != i);
            }
            continue;
        }

        // 2. Otherwise saturate the most contended link: the one offering the
        //    smallest capacity per unit of weight. Ties break on the lower
        //    link id so the result never depends on HashMap iteration order
        //    (the distributed runtime replays this computation on every host
        //    and requires bit-identical outcomes across processes).
        let bottleneck = weight_on_link
            .iter()
            .filter(|(_, &w)| w > 0.0)
            .map(|(&l, &w)| (l, remaining.get(&l).copied().unwrap_or(f64::INFINITY) / w))
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });

        match bottleneck {
            Some((link, per_weight)) => {
                let on_link: Vec<usize> = unfixed
                    .iter()
                    .copied()
                    .filter(|&i| flows[i].links.contains(&link))
                    .collect();
                for i in on_link {
                    let granted =
                        (per_weight * flows[i].weight()).min(flows[i].demand.as_bps() as f64);
                    fix_flow(&flows[i], granted, &mut remaining, &mut allocation);
                    unfixed.retain(|&u| u != i);
                }
            }
            None => {
                // No constrained links left: every remaining flow gets its
                // demand (or path cap).
                for &i in &unfixed {
                    let granted = flows[i].demand.as_bps() as f64;
                    fix_flow(&flows[i], granted, &mut remaining, &mut allocation);
                }
                unfixed.clear();
            }
        }
    }

    allocation
}

fn fix_flow(
    flow: &FlowDemand,
    granted_bps: f64,
    remaining: &mut BTreeMap<LinkId, f64>,
    allocation: &mut Allocation,
) {
    let granted = granted_bps.max(0.0);
    for link in &flow.links {
        if let Some(cap) = remaining.get_mut(link) {
            *cap = (*cap - granted).max(0.0);
        }
    }
    allocation
        .per_flow
        .insert(flow.id, Bandwidth::from_bps(granted.round() as u64));
}

/// Counters describing how much work [`IncrementalAllocator`] avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocatorStats {
    /// Calls answered entirely from the previous result (identical input).
    pub fast_hits: u64,
    /// Contention components whose cached grants were reused.
    pub components_reused: u64,
    /// Contention components re-solved with [`allocate`].
    pub components_recomputed: u64,
    /// Total [`IncrementalAllocator::allocate`] calls.
    pub calls: u64,
}

impl AllocatorStats {
    /// Counters accumulated since `earlier` was captured — the per-call (or
    /// per-span) delta the flight recorder attaches to allocation spans.
    pub fn since(&self, earlier: AllocatorStats) -> AllocatorStats {
        AllocatorStats {
            fast_hits: self.fast_hits - earlier.fast_hits,
            components_reused: self.components_reused - earlier.components_reused,
            components_recomputed: self.components_recomputed - earlier.components_recomputed,
            calls: self.calls - earlier.calls,
        }
    }

    /// Fraction of calls answered entirely from the previous result
    /// (0.0 before the first call).
    pub fn fast_hit_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.fast_hits as f64 / self.calls as f64
        }
    }
}

/// One cached contention component: the flows that interact through a set of
/// constrained links, plus the grants the solver produced for them.
#[derive(Debug, Clone)]
struct CachedComponent {
    /// Sorted constrained links of the component — its identity across loops.
    links: Vec<LinkId>,
    /// Member flows in input order. Ids are *not* part of the cache key:
    /// [`allocate`] only uses them to key its output, so grants transfer
    /// positionally to whatever ids the same shapes carry this loop.
    flows: Vec<FlowDemand>,
    /// Grant per member flow, aligned with `flows`.
    grants: Vec<Bandwidth>,
}

/// `true` when two demands describe the same flow irrespective of the
/// caller-chosen id (ids are positional in the emulation loop and shift
/// whenever a flow joins or leaves).
fn same_shape(a: &FlowDemand, b: &FlowDemand) -> bool {
    a.rtt == b.rtt && a.demand == b.demand && a.links == b.links
}

/// Incremental wrapper around [`allocate`]: caches the min-max solution per
/// *contention component* and re-solves only components whose flow set or
/// demands changed since the previous call.
///
/// Two flows interact only when their paths share a constrained link (the
/// solver couples flows exclusively through per-link remaining capacity), so
/// the flow set partitions into independent components and solving each in
/// isolation is **bit-identical** to one global [`allocate`] run: restricted
/// to a component, the global round sequence performs the same fixes on the
/// same operands in the same order.
///
/// Contract: link capacities are immutable within a collapsed snapshot, so
/// the cache only compares flow shapes. Callers **must** call
/// [`IncrementalAllocator::invalidate`] whenever the snapshot (and thus any
/// capacity) changes — the emulation manager does this on every delta or
/// snapshot swap.
#[derive(Debug, Default)]
pub struct IncrementalAllocator {
    valid: bool,
    last_flows: Vec<FlowDemand>,
    last_allocation: Allocation,
    components: Vec<CachedComponent>,
    stats: AllocatorStats,
}

impl IncrementalAllocator {
    /// A fresh allocator with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all cached state. Must be called when link capacities change
    /// (topology delta or snapshot swap); the next call falls back to a full
    /// recompute.
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.last_flows.clear();
        self.components.clear();
    }

    /// Work-avoidance counters since construction.
    pub fn stats(&self) -> AllocatorStats {
        self.stats
    }

    /// Computes the same allocation as `allocate(flows, capacities)`, reusing
    /// cached per-component solutions where the inputs did not change.
    pub fn allocate(
        &mut self,
        flows: &[FlowDemand],
        capacities: &BTreeMap<LinkId, Bandwidth>,
    ) -> &Allocation {
        self.stats.calls += 1;
        // Fast path: the exact same input as last loop (the steady state of
        // an emulation at scale) — ids included, so the cached map keys are
        // still right.
        if self.valid && self.last_flows.as_slice() == flows {
            self.stats.fast_hits += 1;
            return &self.last_allocation;
        }

        // Partition flows into contention components with a union-find over
        // their constrained links.
        let mut link_index: HashMap<LinkId, usize> = HashMap::new();
        let mut parent: Vec<usize> = Vec::new();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let constrained = |l: &LinkId| capacities.get(l).is_some_and(|&c| c != Bandwidth::MAX);
        for flow in flows {
            let mut first: Option<usize> = None;
            for link in flow.links.iter().filter(|l| constrained(l)) {
                let next = parent.len();
                let idx = *link_index.entry(*link).or_insert_with(|| {
                    parent.push(next);
                    next
                });
                match first {
                    None => first = Some(idx),
                    Some(f) => {
                        let (a, b) = (find(&mut parent, f), find(&mut parent, idx));
                        parent[a] = b;
                    }
                }
            }
        }

        // Group member flow indices per component root; flows touching no
        // constrained link are unconstrained and get their demand directly
        // (same arithmetic as `fix_flow` on an infinite share).
        let mut members: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut allocation = Allocation::default();
        for (i, flow) in flows.iter().enumerate() {
            let root = flow
                .links
                .iter()
                .find(|l| constrained(l))
                .map(|l| find(&mut parent, link_index[l]));
            match root {
                Some(root) => members.entry(root).or_default().push(i),
                None => {
                    let granted = (flow.demand.as_bps() as f64).max(0.0);
                    allocation
                        .per_flow
                        .insert(flow.id, Bandwidth::from_bps(granted.round() as u64));
                }
            }
        }

        // Stable component order (by first member index) keeps the cache and
        // any diagnostics deterministic.
        let mut groups: Vec<Vec<usize>> = members.into_values().collect();
        groups.sort_by_key(|g| g.first().copied());

        // Components partition the constrained links, so a component's
        // smallest link id identifies it uniquely — an O(1) cache probe.
        let cache_by_min: HashMap<LinkId, &CachedComponent> = if self.valid {
            self.components
                .iter()
                .filter_map(|c| c.links.first().map(|&l| (l, c)))
                .collect()
        } else {
            HashMap::new()
        };

        let mut next_components: Vec<CachedComponent> = Vec::with_capacity(groups.len());
        let mut reused = 0u64;
        let mut recomputed = 0u64;
        for group in groups {
            let mut links: Vec<LinkId> = group
                .iter()
                .flat_map(|&i| flows[i].links.iter().copied())
                .filter(|l| constrained(l))
                .collect();
            links.sort_unstable();
            links.dedup();

            let cached = links
                .first()
                .and_then(|l0| cache_by_min.get(l0))
                .copied()
                .filter(|c| {
                    c.links == links
                        && c.flows.len() == group.len()
                        && c.flows
                            .iter()
                            .zip(group.iter())
                            .all(|(cf, &i)| same_shape(cf, &flows[i]))
                });
            let grants: Vec<Bandwidth> = match cached {
                Some(hit) => {
                    reused += 1;
                    hit.grants.clone()
                }
                None => {
                    recomputed += 1;
                    let subset: Vec<FlowDemand> = group.iter().map(|&i| flows[i].clone()).collect();
                    let caps: BTreeMap<LinkId, Bandwidth> = links
                        .iter()
                        .filter_map(|&l| capacities.get(&l).map(|&c| (l, c)))
                        .collect();
                    let solved = allocate(&subset, &caps);
                    subset.iter().map(|f| solved.of(f.id)).collect()
                }
            };
            for (&i, &grant) in group.iter().zip(grants.iter()) {
                allocation.per_flow.insert(flows[i].id, grant);
            }
            next_components.push(CachedComponent {
                links,
                flows: group.iter().map(|&i| flows[i].clone()).collect(),
                grants,
            });
        }
        drop(cache_by_min);
        self.stats.components_reused += reused;
        self.stats.components_recomputed += recomputed;

        self.components = next_components;
        self.last_flows = flows.to_vec();
        self.last_allocation = allocation;
        self.valid = true;
        &self.last_allocation
    }
}

/// Per-link oversubscription ratios given the *demanded* (not allocated)
/// bandwidth of each flow: `max(0, (Σ demand - capacity) / Σ demand)`.
///
/// Kollaps uses this to inject packet loss proportional to the excess when
/// reliable flows push more traffic than a link can carry (paper §3,
/// "Congestion"), so that TCP's congestion avoidance sees loss even though
/// the htb qdisc itself only back-pressures.
pub fn oversubscription(
    flows: &[FlowDemand],
    usages: &HashMap<u64, Bandwidth>,
    capacities: &BTreeMap<LinkId, Bandwidth>,
) -> BTreeMap<LinkId, f64> {
    let mut demanded: BTreeMap<LinkId, f64> = BTreeMap::new();
    for flow in flows {
        let used = usages.get(&flow.id).copied().unwrap_or(Bandwidth::ZERO);
        for link in &flow.links {
            *demanded.entry(*link).or_default() += used.as_bps() as f64;
        }
    }
    let mut out = BTreeMap::new();
    for (link, demand) in demanded {
        let Some(&cap) = capacities.get(&link) else {
            continue;
        };
        if cap == Bandwidth::MAX || demand <= 0.0 {
            continue;
        }
        let cap = cap.as_bps() as f64;
        if demand > cap {
            out.insert(link, (demand - cap) / demand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbps(m: f64) -> Bandwidth {
        Bandwidth::from_mbps_f64(m)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    /// Builds the Figure 8 scenario: returns `(flows for C1..Cn, capacities)`.
    ///
    /// Link ids: 0 = C1-B1 (50), 1 = C2-B1 (50), 2 = C3-B1 (10),
    /// 3 = C4-B2 (50), 4 = C5-B2 (50), 5 = C6-B2 (10), 6 = B1-B2 (50),
    /// 7 = B2-B3 (100), 10+i = Si-B3 (50).
    fn figure8(n_clients: usize) -> (Vec<FlowDemand>, BTreeMap<LinkId, Bandwidth>) {
        let mut caps = BTreeMap::new();
        for (i, c) in [50u64, 50, 10, 50, 50, 10].iter().enumerate() {
            caps.insert(LinkId(i as u32), Bandwidth::from_mbps(*c));
        }
        caps.insert(LinkId(6), Bandwidth::from_mbps(50));
        caps.insert(LinkId(7), Bandwidth::from_mbps(100));
        for i in 0..6u32 {
            caps.insert(LinkId(10 + i), Bandwidth::from_mbps(50));
        }
        // Path links and RTTs (2 × one-way latency) per client.
        let paths: Vec<(Vec<u32>, u64, f64)> = vec![
            (vec![0, 6, 7, 10], 70, 50.0), // C1
            (vec![1, 6, 7, 11], 60, 50.0), // C2
            (vec![2, 6, 7, 12], 60, 10.0), // C3
            (vec![3, 7, 13], 50, 50.0),    // C4
            (vec![4, 7, 14], 40, 50.0),    // C5
            (vec![5, 7, 15], 40, 10.0),    // C6
        ];
        let flows = paths
            .into_iter()
            .take(n_clients)
            .enumerate()
            .map(|(i, (links, rtt, cap))| FlowDemand {
                id: i as u64,
                links: links.into_iter().map(LinkId).collect(),
                rtt: ms(rtt),
                demand: mbps(cap),
            })
            .collect();
        (flows, caps)
    }

    fn assert_close(got: Bandwidth, expected_mbps: f64, tol: f64) {
        assert!(
            (got.as_mbps() - expected_mbps).abs() < tol,
            "expected ≈{expected_mbps} Mb/s, got {:.2} Mb/s",
            got.as_mbps()
        );
    }

    #[test]
    fn single_flow_gets_the_path_capacity() {
        let (flows, caps) = figure8(1);
        let a = allocate(&flows, &caps);
        assert_close(a.of(0), 50.0, 0.01);
    }

    #[test]
    fn figure8_two_clients_rtt_weighted_split() {
        // Paper: C1 = 23.08, C2 = 26.92 Mb/s.
        let (flows, caps) = figure8(2);
        let a = allocate(&flows, &caps);
        assert_close(a.of(0), 23.08, 0.05);
        assert_close(a.of(1), 26.92, 0.05);
    }

    #[test]
    fn figure8_three_clients_maximization_step() {
        // Paper: 18.45, 21.55, 10 Mb/s — C3 is capped by its access link and
        // its unused share is redistributed proportionally.
        let (flows, caps) = figure8(3);
        let a = allocate(&flows, &caps);
        assert_close(a.of(0), 18.45, 0.05);
        assert_close(a.of(1), 21.55, 0.05);
        assert_close(a.of(2), 10.0, 0.01);
    }

    #[test]
    fn figure8_four_clients_uncontended_branch() {
        // Paper: C4 reaches 50 Mb/s because the others are capped upstream.
        let (flows, caps) = figure8(4);
        let a = allocate(&flows, &caps);
        assert_close(a.of(0), 18.45, 0.05);
        assert_close(a.of(1), 21.55, 0.05);
        assert_close(a.of(2), 10.0, 0.01);
        assert_close(a.of(3), 50.0, 0.05);
    }

    #[test]
    fn figure8_five_clients() {
        // Paper: 16.89, 19.75, 10, 23.74, 29.62 Mb/s.
        let (flows, caps) = figure8(5);
        let a = allocate(&flows, &caps);
        assert_close(a.of(0), 16.89, 0.1);
        assert_close(a.of(1), 19.75, 0.1);
        assert_close(a.of(2), 10.0, 0.01);
        assert_close(a.of(3), 23.74, 0.1);
        assert_close(a.of(4), 29.62, 0.1);
    }

    #[test]
    fn figure8_six_clients() {
        // Paper: 15.04, 17.55, 10, 21.06, 26.33, 10 Mb/s.
        let (flows, caps) = figure8(6);
        let a = allocate(&flows, &caps);
        assert_close(a.of(0), 15.04, 0.06);
        assert_close(a.of(1), 17.55, 0.06);
        assert_close(a.of(2), 10.0, 0.01);
        assert_close(a.of(3), 21.06, 0.06);
        assert_close(a.of(4), 26.33, 0.06);
        assert_close(a.of(5), 10.0, 0.01);
    }

    #[test]
    fn equal_rtts_split_evenly() {
        let caps: BTreeMap<LinkId, Bandwidth> = [(LinkId(0), Bandwidth::from_mbps(90))]
            .into_iter()
            .collect();
        let flows: Vec<FlowDemand> = (0..3)
            .map(|i| FlowDemand {
                id: i,
                links: vec![LinkId(0)],
                rtt: ms(20),
                demand: Bandwidth::MAX,
            })
            .collect();
        let a = allocate(&flows, &caps);
        for i in 0..3 {
            assert_close(a.of(i), 30.0, 0.01);
        }
    }

    #[test]
    fn allocations_never_exceed_capacity() {
        let (flows, caps) = figure8(6);
        let a = allocate(&flows, &caps);
        // Per-link sum of allocations must stay within capacity.
        for (&link, &cap) in &caps {
            let sum: f64 = flows
                .iter()
                .filter(|f| f.links.contains(&link))
                .map(|f| a.of(f.id).as_mbps())
                .sum();
            assert!(
                sum <= cap.as_mbps() + 0.01,
                "link {link:?} oversubscribed: {sum} > {}",
                cap.as_mbps()
            );
        }
    }

    #[test]
    fn work_conservation_on_the_bottleneck() {
        // With two unconstrained-demand flows the shared link must be fully
        // used.
        let (flows, caps) = figure8(2);
        let a = allocate(&flows, &caps);
        let total = a.of(0).as_mbps() + a.of(1).as_mbps();
        assert!((total - 50.0).abs() < 0.05, "total {total}");
    }

    #[test]
    fn empty_input_yields_empty_allocation() {
        let a = allocate(&[], &BTreeMap::new());
        assert!(a.per_flow.is_empty());
        assert_eq!(a.of(42), Bandwidth::ZERO);
    }

    #[test]
    fn unconstrained_links_grant_full_demand() {
        let flows = vec![FlowDemand {
            id: 7,
            links: vec![LinkId(1)],
            rtt: ms(10),
            demand: mbps(123.0),
        }];
        // No capacities at all: the flow gets its demand.
        let a = allocate(&flows, &BTreeMap::new());
        assert_close(a.of(7), 123.0, 0.01);
    }

    #[test]
    fn oversubscription_ratios() {
        let (flows, caps) = figure8(2);
        // Both flows report using 40 Mb/s → the 50 Mb/s B1-B2 link sees
        // 80 Mb/s of demand → 37.5 % excess.
        let usages: HashMap<u64, Bandwidth> =
            [(0, mbps(40.0)), (1, mbps(40.0))].into_iter().collect();
        let over = oversubscription(&flows, &usages, &caps);
        let b1b2 = over.get(&LinkId(6)).copied().unwrap();
        assert!((b1b2 - 0.375).abs() < 1e-9);
        // The 100 Mb/s B2-B3 link is not oversubscribed.
        assert!(!over.contains_key(&LinkId(7)));
        // With modest usage nothing is oversubscribed.
        let light: HashMap<u64, Bandwidth> =
            [(0, mbps(10.0)), (1, mbps(10.0))].into_iter().collect();
        assert!(oversubscription(&flows, &light, &caps).is_empty());
    }

    #[test]
    fn rtt_ordering_is_respected() {
        // Lower RTT ⇒ larger share, monotonically.
        let caps: BTreeMap<LinkId, Bandwidth> = [(LinkId(0), Bandwidth::from_mbps(100))]
            .into_iter()
            .collect();
        let flows: Vec<FlowDemand> = [10u64, 20, 40, 80]
            .iter()
            .enumerate()
            .map(|(i, &rtt)| FlowDemand {
                id: i as u64,
                links: vec![LinkId(0)],
                rtt: ms(rtt),
                demand: Bandwidth::MAX,
            })
            .collect();
        let a = allocate(&flows, &caps);
        for i in 0..3u64 {
            assert!(
                a.of(i) > a.of(i + 1),
                "share({i}) should exceed share({})",
                i + 1
            );
        }
        let total: f64 = (0..4).map(|i| a.of(i).as_mbps()).sum();
        assert!((total - 100.0).abs() < 0.01);
    }

    #[test]
    fn incremental_matches_full_allocate_exactly() {
        let (flows, caps) = figure8(6);
        let mut inc = IncrementalAllocator::new();
        // Grow the flow set one client at a time; every call must equal the
        // full recompute bit for bit.
        for n in 1..=6 {
            let prefix = &flows[..n];
            assert_eq!(*inc.allocate(prefix, &caps), allocate(prefix, &caps));
        }
        // Shrink again (flows leaving shifts positional ids down).
        for n in (1..=6).rev() {
            let prefix = &flows[..n];
            assert_eq!(*inc.allocate(prefix, &caps), allocate(prefix, &caps));
        }
    }

    #[test]
    fn steady_state_hits_the_fast_path() {
        let (flows, caps) = figure8(4);
        let mut inc = IncrementalAllocator::new();
        let first = inc.allocate(&flows, &caps).clone();
        for _ in 0..3 {
            assert_eq!(*inc.allocate(&flows, &caps), first);
        }
        let stats = inc.stats();
        assert_eq!(stats.calls, 4);
        assert_eq!(stats.fast_hits, 3);
    }

    #[test]
    fn disjoint_components_are_cached_independently() {
        // Two independent bottlenecks: flows 0-1 share link 0, flows 2-3
        // share link 1. Changing one pair must not recompute the other.
        let caps: BTreeMap<LinkId, Bandwidth> = [
            (LinkId(0), Bandwidth::from_mbps(100)),
            (LinkId(1), Bandwidth::from_mbps(60)),
        ]
        .into_iter()
        .collect();
        let flow = |id: u64, link: u32, rtt_ms: u64| FlowDemand {
            id,
            links: vec![LinkId(link)],
            rtt: ms(rtt_ms),
            demand: Bandwidth::MAX,
        };
        let flows = vec![
            flow(0, 0, 20),
            flow(1, 0, 40),
            flow(2, 1, 20),
            flow(3, 1, 20),
        ];
        let mut inc = IncrementalAllocator::new();
        assert_eq!(*inc.allocate(&flows, &caps), allocate(&flows, &caps));

        // A third flow joins link 1: component {link 0} is untouched and must
        // be served from cache, component {link 1} recomputes.
        let mut joined = flows.clone();
        joined.push(flow(4, 1, 10));
        assert_eq!(*inc.allocate(&joined, &caps), allocate(&joined, &caps));
        let stats = inc.stats();
        assert_eq!(stats.components_reused, 1, "{stats:?}");
        assert_eq!(stats.components_recomputed, 3, "{stats:?}");
    }

    #[test]
    fn grants_remap_when_positional_ids_shift() {
        // Flow ids in the emulation loop are positions; a flow leaving shifts
        // every later id down by one. The unchanged component's grants must
        // transfer to the new ids.
        let caps: BTreeMap<LinkId, Bandwidth> = [
            (LinkId(0), Bandwidth::from_mbps(80)),
            (LinkId(1), Bandwidth::from_mbps(40)),
        ]
        .into_iter()
        .collect();
        let shape = |id: u64, link: u32| FlowDemand {
            id,
            links: vec![LinkId(link)],
            rtt: ms(30),
            demand: Bandwidth::MAX,
        };
        let before = vec![shape(0, 0), shape(1, 1), shape(2, 1)];
        let mut inc = IncrementalAllocator::new();
        inc.allocate(&before, &caps);
        // Flow 0 (link 0) leaves; the link-1 pair keeps its shapes but is now
        // ids 0 and 1.
        let after = vec![shape(0, 1), shape(1, 1)];
        assert_eq!(*inc.allocate(&after, &caps), allocate(&after, &caps));
        let stats = inc.stats();
        assert_eq!(stats.components_reused, 1, "{stats:?}");
    }

    #[test]
    fn invalidate_forces_a_full_recompute() {
        let (flows, mut caps) = figure8(3);
        let mut inc = IncrementalAllocator::new();
        inc.allocate(&flows, &caps);
        // The trunk link shrinks: same flow shapes, different capacities. The
        // caller invalidates (capacities are outside the cache key).
        caps.insert(LinkId(6), Bandwidth::from_mbps(20));
        inc.invalidate();
        assert_eq!(*inc.allocate(&flows, &caps), allocate(&flows, &caps));
        assert_eq!(inc.stats().fast_hits, 0);
    }

    #[test]
    fn unconstrained_flows_match_full_allocate() {
        let caps: BTreeMap<LinkId, Bandwidth> = [(LinkId(0), Bandwidth::from_mbps(50))]
            .into_iter()
            .collect();
        let flows = vec![
            FlowDemand {
                id: 0,
                links: vec![LinkId(9)], // no capacity entry: unconstrained
                rtt: ms(10),
                demand: mbps(75.0),
            },
            FlowDemand {
                id: 1,
                links: vec![LinkId(0)],
                rtt: ms(10),
                demand: Bandwidth::MAX,
            },
        ];
        let mut inc = IncrementalAllocator::new();
        assert_eq!(*inc.allocate(&flows, &caps), allocate(&flows, &caps));
    }
}
