//! The Kollaps emulation: collapsed dataplane, Emulation Cores and the
//! per-host Emulation Manager loop.
//!
//! One [`KollapsDataplane`] models the whole deployment:
//!
//! * every application container gets an egress qdisc tree
//!   ([`kollaps_netmodel::egress::EgressTree`], the TCAL state) configured
//!   with the *collapsed* end-to-end properties towards each reachable
//!   destination;
//! * every physical host runs an Emulation Manager; containers are mapped to
//!   hosts by a placement, and managers exchange per-flow usage through the
//!   metadata bus (shared memory locally, UDP across hosts);
//! * the **emulation loop** (paper §4.1) runs every `loop_interval`:
//!   (1) clear local flow state, (2) read per-destination usage from the
//!   TCAL, (3) disseminate it, (4) recompute the RTT-aware min-max shares
//!   over the collapsed links, (5) enforce the new rates (and inject
//!   congestion loss when a link is oversubscribed);
//! * dynamic topology events are pre-computed as a sequence of collapsed
//!   snapshots and swapped in when their time comes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use kollaps_metadata::bus::{DisseminationBus, HostId, TrafficAccounting};
use kollaps_metadata::codec::{FlowUsage, MetadataMessage};
use kollaps_netmodel::egress::{EgressTree, EgressVerdict};
use kollaps_netmodel::netem::NetemConfig;
use kollaps_netmodel::packet::{Addr, Packet};
use kollaps_sim::prelude::*;
use kollaps_topology::events::{apply_action, EventSchedule};
use kollaps_topology::model::Topology;

use crate::collapse::{Addressable, CollapsedTopology};
use crate::runtime::{Dataplane, SendOutcome};
use crate::sharing::{allocate, oversubscription, FlowDemand};

/// Tuning knobs of the emulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulationConfig {
    /// Period of the emulation loop (metadata exchange + enforcement).
    pub loop_interval: SimDuration,
    /// Extra one-way delay when source and destination containers sit on
    /// different physical hosts (the "small but measurable" physical-hop
    /// delay the paper observes in Table 4).
    pub cross_host_delay: SimDuration,
    /// Extra one-way delay introduced by container networking (Docker
    /// overlay), applied to every packet.
    pub container_overhead: SimDuration,
    /// One-way delay of metadata messages on the physical network.
    pub metadata_delay: SimDuration,
    /// Enables the RTT-aware bandwidth sharing model (step 4/5 of the loop).
    pub bandwidth_sharing: bool,
    /// Enables congestion loss injection when links are oversubscribed.
    pub congestion_loss: bool,
    /// Seed for the per-destination netem jitter streams.
    pub seed: u64,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            loop_interval: SimDuration::from_millis(50),
            cross_host_delay: SimDuration::from_micros(50),
            container_overhead: SimDuration::from_micros(30),
            metadata_delay: SimDuration::from_micros(100),
            bandwidth_sharing: true,
            congestion_loss: true,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone)]
struct PendingDelivery {
    arrival: SimTime,
    seq: u64,
    packet: Packet,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.arrival
            .cmp(&other.arrival)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The Kollaps collapsed-topology dataplane.
pub struct KollapsDataplane {
    config: EmulationConfig,
    topology: Topology,
    collapsed: CollapsedTopology,
    schedule: EventSchedule,
    applied_events: usize,
    /// Egress qdisc tree per container (the TCAL of each Emulation Core).
    egress: HashMap<Addr, EgressTree>,
    /// Physical host of each container.
    placement: HashMap<Addr, HostId>,
    bus: DisseminationBus,
    pending: BinaryHeap<Reverse<PendingDelivery>>,
    next_delivery_seq: u64,
    /// Last measured usage per (src, dst) pair, from the previous loop.
    last_usage: HashMap<(Addr, Addr), Bandwidth>,
    /// Last allocation per (src, dst) pair.
    last_allocation: HashMap<(Addr, Addr), Bandwidth>,
    next_tick: SimTime,
    started: bool,
}

impl KollapsDataplane {
    /// Builds the emulation for `topology` deployed over `hosts` physical
    /// machines (containers are placed round-robin, like the deployment
    /// generator's default strategy).
    pub fn new(
        topology: Topology,
        schedule: EventSchedule,
        hosts: usize,
        config: EmulationConfig,
    ) -> Self {
        let collapsed = CollapsedTopology::build(&topology);
        let hosts = hosts.max(1);
        let host_ids: Vec<HostId> = (0..hosts as u32).map(HostId).collect();
        let mut placement = HashMap::new();
        let mut egress = HashMap::new();
        let rng = SimRng::new(config.seed);
        // `addresses()` yields (service, addr); sort by address for stable
        // round-robin placement.
        let mut addressed: Vec<(kollaps_topology::model::NodeId, Addr)> =
            collapsed.addresses().collect();
        addressed.sort_by_key(|&(_, a)| a);
        for (i, &(_, addr)) in addressed.iter().enumerate() {
            placement.insert(addr, host_ids[i % hosts]);
            egress.insert(
                addr,
                EgressTree::new(addr, rng.derive(u64::from(addr.as_u32()))),
            );
        }
        let bus = DisseminationBus::new(host_ids, config.metadata_delay);
        let mut dp = KollapsDataplane {
            config,
            topology,
            collapsed,
            schedule,
            applied_events: 0,
            egress,
            placement,
            bus,
            pending: BinaryHeap::new(),
            next_delivery_seq: 0,
            last_usage: HashMap::new(),
            last_allocation: HashMap::new(),
            next_tick: SimTime::ZERO,
            started: false,
        };
        dp.install_all_paths();
        dp
    }

    /// Convenience constructor with the default configuration.
    pub fn with_defaults(topology: Topology, hosts: usize) -> Self {
        KollapsDataplane::new(
            topology,
            EventSchedule::new(),
            hosts,
            EmulationConfig::default(),
        )
    }

    /// The collapsed topology currently enforced.
    pub fn collapsed(&self) -> &CollapsedTopology {
        &self.collapsed
    }

    /// Metadata traffic accounting (Figures 3 and 4).
    pub fn metadata_accounting(&self) -> &TrafficAccounting {
        self.bus.accounting()
    }

    /// Number of physical hosts in the deployment.
    pub fn host_count(&self) -> usize {
        self.bus.hosts().len()
    }

    /// The bandwidth allocated to the (src, dst) pair in the last emulation
    /// loop iteration, if the pair was active.
    pub fn allocation(&self, src: Addr, dst: Addr) -> Option<Bandwidth> {
        self.last_allocation.get(&(src, dst)).copied()
    }

    /// The usage measured for the (src, dst) pair in the last loop.
    pub fn measured_usage(&self, src: Addr, dst: Addr) -> Option<Bandwidth> {
        self.last_usage.get(&(src, dst)).copied()
    }

    fn install_all_paths(&mut self) {
        let collapsed = self.collapsed.clone();
        for (src_node, src_addr) in collapsed.addresses() {
            let Some(tree) = self.egress.get_mut(&src_addr) else {
                continue;
            };
            // Remove chains towards destinations that disappeared.
            let valid: Vec<Addr> = collapsed
                .addresses()
                .filter(|&(dst_node, _)| collapsed.path(src_node, dst_node).is_some())
                .map(|(_, a)| a)
                .collect();
            let stale: Vec<Addr> = tree.destinations().filter(|d| !valid.contains(d)).collect();
            for dst in stale {
                tree.remove_path(dst);
            }
            for (dst_node, dst_addr) in collapsed.addresses() {
                if dst_addr == src_addr {
                    continue;
                }
                let Some(path) = collapsed.path(src_node, dst_node) else {
                    continue;
                };
                let netem = NetemConfig {
                    delay: path.latency,
                    jitter: path.jitter,
                    loss: path.loss,
                    ..NetemConfig::default()
                };
                // The htb class starts at the collapsed maximum bandwidth; the
                // emulation loop tightens it as soon as competing flows appear.
                let rate = self
                    .last_allocation
                    .get(&(src_addr, dst_addr))
                    .copied()
                    .unwrap_or(path.max_bandwidth);
                tree.install_path(dst_addr, netem, rate);
            }
        }
    }

    fn extra_delay(&self, src: Addr, dst: Addr) -> SimDuration {
        let mut extra = self.config.container_overhead * 2;
        if self.placement.get(&src) != self.placement.get(&dst) {
            extra += self.config.cross_host_delay;
        }
        extra
    }

    /// Runs one iteration of the emulation loop at `now`.
    fn emulation_loop(&mut self, now: SimTime) {
        // Steps 1-2: read and clear per-destination usage from every TCAL.
        let interval = self.config.loop_interval;
        let mut usages: HashMap<(Addr, Addr), Bandwidth> = HashMap::new();
        for (&src, tree) in &mut self.egress {
            for (&dst, &bytes) in tree.usage() {
                let mut rate = bytes.rate_over(interval);
                // The token bucket lets a burst through above the shaped
                // rate; reporting that transient as usage would make a
                // single well-behaved flow look like it oversubscribes its
                // own link and draw injected congestion loss. Clamp to the
                // rate the class was actually configured to.
                if let Some(shaped) = tree.bandwidth(dst) {
                    rate = rate.min(shaped);
                }
                if rate.as_bps() > 0 {
                    usages.insert((src, dst), rate);
                }
            }
            tree.clear_usage();
        }

        // Step 3: disseminate per-host metadata (for traffic accounting the
        // message layout matters, not its routing — every manager ends up
        // with the same global view, which is what we compute below).
        let mut per_host: HashMap<HostId, MetadataMessage> = HashMap::new();
        for (&(src, dst), &used) in &usages {
            let Some(host) = self.placement.get(&src) else {
                continue;
            };
            let Some(path) = self.collapsed.path_by_addr(src, dst) else {
                continue;
            };
            let ids: Vec<u16> = path.links.iter().map(|l| l.0 as u16).collect();
            per_host
                .entry(*host)
                .or_default()
                .flows
                .push(FlowUsage::new(used, ids));
        }
        for (host, message) in &per_host {
            self.bus.publish(now, *host, message);
        }
        for host in self.bus.hosts().to_vec() {
            let _ = self.bus.drain(now, host);
        }

        // Step 4: recompute the shares for the active flows. Pairs whose
        // path or address assignment vanished under a dynamic event are
        // skipped gracefully: their packets are already being dropped by the
        // egress trees, so they must not panic the emulation loop.
        let mut flows = Vec::new();
        let mut flow_keys = Vec::new();
        for &(src, dst) in usages.keys() {
            let Some(path) = self.collapsed.path_by_addr(src, dst) else {
                continue;
            };
            let (Some(src_node), Some(dst_node)) = (
                self.collapsed.service_at(src),
                self.collapsed.service_at(dst),
            ) else {
                continue;
            };
            let rtt = self
                .collapsed
                .rtt(src_node, dst_node)
                .unwrap_or(SimDuration::from_millis(1));
            flows.push(FlowDemand {
                id: flow_keys.len() as u64,
                links: path.links.clone(),
                rtt,
                demand: path.max_bandwidth,
            });
            flow_keys.push((src, dst));
        }
        let allocation = if self.config.bandwidth_sharing {
            allocate(&flows, self.collapsed.link_capacities())
        } else {
            Default::default()
        };
        let usage_by_id: HashMap<u64, Bandwidth> = flow_keys
            .iter()
            .enumerate()
            .map(|(i, key)| {
                (
                    i as u64,
                    usages.get(key).copied().unwrap_or(Bandwidth::ZERO),
                )
            })
            .collect();
        let over = if self.config.congestion_loss {
            oversubscription(&flows, &usage_by_id, self.collapsed.link_capacities())
        } else {
            HashMap::new()
        };

        // Step 5: enforce. Active pairs get their computed share (or keep the
        // path maximum when sharing is disabled); inactive pairs fall back to
        // the path maximum so new flows are not throttled by stale limits.
        self.last_allocation.clear();
        let mut enforced: HashMap<(Addr, Addr), (Bandwidth, f64)> = HashMap::new();
        for (i, &(src, dst)) in flow_keys.iter().enumerate() {
            let Some(path) = self.collapsed.path_by_addr(src, dst) else {
                continue;
            };
            let rate = if self.config.bandwidth_sharing {
                allocation.of(i as u64)
            } else {
                path.max_bandwidth
            };
            // Congestion loss: combine the path's intrinsic loss with the
            // worst oversubscription along the path.
            let mut congestion = 0.0f64;
            for link in &path.links {
                if let Some(&o) = over.get(link) {
                    congestion = congestion.max(o);
                }
            }
            let loss = 1.0 - (1.0 - path.loss) * (1.0 - congestion);
            enforced.insert((src, dst), (rate, loss));
            self.last_allocation.insert((src, dst), rate);
        }
        for (src_node, src_addr) in self.collapsed.addresses().collect::<Vec<_>>() {
            let Some(tree) = self.egress.get_mut(&src_addr) else {
                continue;
            };
            for (dst_node, dst_addr) in self.collapsed.addresses().collect::<Vec<_>>() {
                if src_addr == dst_addr {
                    continue;
                }
                let Some(path) = self.collapsed.path(src_node, dst_node) else {
                    continue;
                };
                match enforced.get(&(src_addr, dst_addr)) {
                    Some(&(rate, loss)) => {
                        tree.set_bandwidth(now, dst_addr, rate);
                        tree.set_loss(dst_addr, loss);
                    }
                    None => {
                        tree.set_bandwidth(now, dst_addr, path.max_bandwidth);
                        tree.set_loss(dst_addr, path.loss);
                    }
                }
            }
        }
        self.last_usage = usages;
    }

    /// Applies every dynamic event whose time has come and re-collapses the
    /// topology if anything changed.
    fn apply_dynamic_events(&mut self, now: SimTime) {
        let due: Vec<_> = self
            .schedule
            .events()
            .iter()
            .skip(self.applied_events)
            .take_while(|e| SimTime::ZERO + e.at <= now)
            .cloned()
            .collect();
        if due.is_empty() {
            return;
        }
        for event in &due {
            apply_action(&mut self.topology, &event.action);
        }
        self.applied_events += due.len();
        self.collapsed = self.collapsed.rebuild_with_addresses(&self.topology);
        self.install_all_paths();
    }
}

impl Addressable for KollapsDataplane {
    fn collapsed(&self) -> &CollapsedTopology {
        &self.collapsed
    }
}

impl Dataplane for KollapsDataplane {
    fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome {
        // Unknown destinations (an address that never belonged to a service
        // of this deployment) are dropped up front instead of being offered
        // to the qdisc tree — same outcome the tree's classifier would
        // reach, but with no risk of accounting a doomed packet.
        if self.collapsed.service_at(packet.dst).is_none() {
            return SendOutcome::Dropped(kollaps_netmodel::packet::DropReason::Unreachable);
        }
        let Some(tree) = self.egress.get_mut(&packet.src) else {
            return SendOutcome::Dropped(kollaps_netmodel::packet::DropReason::Unreachable);
        };
        match tree.enqueue(now, packet) {
            EgressVerdict::Queued => SendOutcome::Sent,
            EgressVerdict::Backpressure => SendOutcome::Backpressure,
            EgressVerdict::Dropped(reason) => SendOutcome::Dropped(reason),
        }
    }

    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            earliest = Some(match earliest {
                Some(e) => e.min(t),
                None => t,
            });
        };
        for tree in self.egress.values_mut() {
            if let Some(t) = tree.next_wakeup(now) {
                if t < SimTime::MAX {
                    consider(t);
                }
            }
        }
        if let Some(Reverse(p)) = self.pending.peek() {
            consider(p.arrival);
        }
        earliest
    }

    fn deliver(&mut self, now: SimTime) -> Vec<Packet> {
        // Move packets that finished their collapsed-path emulation onto the
        // (fast) physical network towards the destination host.
        let mut egress_out = Vec::new();
        for tree in self.egress.values_mut() {
            egress_out.extend(tree.dequeue_ready(now));
        }
        for pkt in egress_out {
            let arrival = now + self.extra_delay(pkt.src, pkt.dst);
            let seq = self.next_delivery_seq;
            self.next_delivery_seq += 1;
            self.pending.push(Reverse(PendingDelivery {
                arrival,
                seq,
                packet: pkt,
            }));
        }
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.pending.peek() {
            if head.arrival > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked");
            out.push(p.packet);
        }
        out
    }

    fn tick(&mut self, now: SimTime) -> Option<SimTime> {
        if !self.started {
            self.started = true;
            self.next_tick = now + self.config.loop_interval;
            return Some(self.next_tick);
        }
        self.apply_dynamic_events(now);
        self.emulation_loop(now);
        self.next_tick = now + self.config.loop_interval;
        Some(self.next_tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use kollaps_sim::units::Bandwidth;
    use kollaps_topology::events::{DynamicAction, DynamicEvent, LinkChange};
    use kollaps_topology::generators;
    use kollaps_transport::tcp::{TcpSenderConfig, TransferSize};

    #[test]
    fn point_to_point_latency_is_emulated() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(20),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let probe = rt.add_ping(
            client,
            server,
            SimDuration::from_millis(100),
            50,
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(10));
        let rtts = rt.ping_rtts(probe).unwrap();
        assert_eq!(rtts.len(), 50);
        // RTT ≈ 2 × 20 ms plus the (small) container overhead.
        assert!((rtts.mean() - 40.0).abs() < 0.5, "mean rtt {}", rtts.mean());
    }

    #[test]
    fn single_flow_reaches_the_collapsed_bandwidth() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let flow = rt.add_tcp_flow(
            client,
            server,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(10));
        let bytes = rt.tcp_received_bytes(flow);
        let mbps = DataSize::from_bytes(bytes)
            .rate_over(SimDuration::from_secs(10))
            .as_mbps();
        // Goodput should sit a few percent below the 50 Mb/s shaped rate
        // (header overhead + slow start), like Table 2's -5 % column.
        assert!((42.0..=50.0).contains(&mbps), "goodput {mbps} Mb/s");
    }

    #[test]
    fn two_flows_share_a_bottleneck_by_rtt() {
        // Figure 8, first 120 seconds: C1 and C2 share the 50 Mb/s B1-B2
        // link 23.08 / 26.92 according to their RTTs.
        let (topo, clients, servers) = generators::figure8();
        let collapsed = CollapsedTopology::build(&topo);
        let c1 = collapsed.address_of(clients[0]).unwrap();
        let c2 = collapsed.address_of(clients[1]).unwrap();
        let s1 = collapsed.address_of(servers[0]).unwrap();
        let s2 = collapsed.address_of(servers[1]).unwrap();
        let dp = KollapsDataplane::with_defaults(topo, 2);
        let mut rt = Runtime::new(dp);
        let f1 = rt.add_tcp_flow(
            c1,
            s1,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let f2 = rt.add_tcp_flow(
            c2,
            s2,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(30));
        // Measure over the steady-state second half.
        let half = SimTime::from_secs(15);
        let m1 = rt
            .throughput_series(f1)
            .unwrap()
            .mean_between(half, SimTime::from_secs(30));
        let m2 = rt
            .throughput_series(f2)
            .unwrap()
            .mean_between(half, SimTime::from_secs(30));
        assert!((m1 - 23.08).abs() < 3.0, "C1 got {m1} Mb/s");
        assert!((m2 - 26.92).abs() < 3.0, "C2 got {m2} Mb/s");
        assert!(m2 > m1, "the lower-RTT flow must get the larger share");
    }

    #[test]
    fn dynamic_latency_change_is_applied() {
        let (topo, client_node, server_node) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
        );
        let mut schedule = EventSchedule::new();
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(5),
            action: DynamicAction::SetLinkProperties {
                orig: "client".into(),
                dest: "server".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(40)),
                    ..LinkChange::default()
                },
            },
        });
        let _ = (client_node, server_node);
        let dp = KollapsDataplane::new(topo, schedule, 1, EmulationConfig::default());
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let probe = rt.add_ping(
            client,
            server,
            SimDuration::from_millis(200),
            50,
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(10));
        let rtts = rt.ping_rtts(probe).unwrap();
        let samples = rtts.samples();
        let early: f64 = samples[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = samples[samples.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!((early - 20.0).abs() < 1.0, "early rtt {early}");
        assert!((late - 80.0).abs() < 2.0, "late rtt {late}");
        let _ = probe;
    }

    #[test]
    fn metadata_traffic_is_zero_on_a_single_host() {
        let (topo, _, _) = generators::dumbbell(
            4,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let collapsed = CollapsedTopology::build(&topo);
        let pairs: Vec<(Addr, Addr)> = (0..4)
            .map(|i| {
                (
                    collapsed
                        .address_of(topo.node_by_name(&format!("client-{i}")).unwrap())
                        .unwrap(),
                    collapsed
                        .address_of(topo.node_by_name(&format!("server-{i}")).unwrap())
                        .unwrap(),
                )
            })
            .collect();
        for hosts in [1usize, 4] {
            let dp = KollapsDataplane::with_defaults(topo.clone(), hosts);
            let mut rt = Runtime::new(dp);
            for &(c, s) in &pairs {
                rt.add_udp_flow(c, s, Bandwidth::from_mbps(10), SimTime::ZERO, None);
            }
            let _ = rt.run_until(SimTime::from_secs(5));
            let bytes = rt.dataplane.metadata_accounting().total_network_bytes();
            if hosts == 1 {
                assert_eq!(bytes, 0, "single host must not use the network");
            } else {
                assert!(bytes > 0, "multi-host deployments exchange metadata");
            }
        }
    }

    #[test]
    fn unknown_destination_is_dropped_not_panicked() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let mut dp = KollapsDataplane::with_defaults(topo, 1);
        let client = dp.address_of_index(0);
        let ghost = Addr::container(99);
        let pkt = Packet::new(
            1,
            kollaps_netmodel::packet::FlowId(1),
            client,
            ghost,
            kollaps_netmodel::packet::MTU,
            kollaps_netmodel::packet::PacketKind::Udp,
            SimTime::ZERO,
        );
        assert_eq!(
            dp.send(SimTime::ZERO, pkt),
            SendOutcome::Dropped(kollaps_netmodel::packet::DropReason::Unreachable)
        );
        // Driving a whole flow towards the unknown address must not panic
        // the emulation loop either — the packets are simply lost.
        let mut rt = Runtime::new(dp);
        let flow = rt.add_udp_flow(client, ghost, Bandwidth::from_mbps(1), SimTime::ZERO, None);
        let _ = rt.run_until(SimTime::from_secs(2));
        assert_eq!(rt.udp_delivered_bytes(flow), 0);
    }

    #[test]
    fn node_leave_mid_flow_degrades_gracefully() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let mut schedule = EventSchedule::new();
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(2),
            action: DynamicAction::NodeLeave {
                name: "server".into(),
            },
        });
        let dp = KollapsDataplane::new(topo, schedule, 1, EmulationConfig::default());
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let flow = rt.add_tcp_flow(
            client,
            server,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        // The emulation loop used to `expect("active path")` here; now the
        // run completes and the flow just stops making progress.
        let _ = rt.run_until(SimTime::from_secs(6));
        assert!(rt.tcp_received_bytes(flow) > 0, "flow ran before the event");
        let stalled = rt
            .throughput_series(flow)
            .unwrap()
            .mean_between(SimTime::from_secs(4), SimTime::from_secs(6));
        assert!(
            stalled < 1.0,
            "flow must stall after the node left: {stalled}"
        );
    }

    #[test]
    fn allocation_is_exposed_for_inspection() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        rt.add_tcp_flow(
            client,
            server,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(5));
        let alloc = rt.dataplane.allocation(client, server).unwrap();
        assert!((alloc.as_mbps() - 10.0).abs() < 0.5, "allocation {alloc}");
        assert!(rt.dataplane.measured_usage(client, server).is_some());
    }
}
