//! The Kollaps emulation: the collapsed dataplane as a thin composition of
//! per-host Emulation Managers.
//!
//! One [`KollapsDataplane`] models the whole deployment:
//!
//! * containers are mapped to physical hosts by a placement (round-robin by
//!   default, explicit via [`KollapsDataplane::with_placement`]);
//! * every physical host runs an [`EmulationManager`] that owns the egress
//!   qdisc trees ([`kollaps_netmodel::egress::EgressTree`], the TCAL state)
//!   of *its* containers and exchanges per-flow usage through the metadata
//!   bus (shared memory locally, UDP across hosts);
//! * the **emulation loop** (paper §4.1) runs every `loop_interval`: each
//!   manager (1) clears local flow state, (2) reads per-destination usage
//!   from its TCALs, (3) publishes it and absorbs what the network has
//!   delivered, (4) recomputes the RTT-aware min-max shares **from that
//!   received, possibly stale view only**, (5) enforces the new rates (and
//!   injects congestion loss when a link stays oversubscribed);
//! * dynamic topology events come from a [`SnapshotTimeline`] precomputed
//!   **offline** at construction (schedules are part of the experiment
//!   description, so the whole sequence of collapsed snapshots is known in
//!   advance): at runtime each due change swaps in the precomputed snapshot
//!   `Arc` and touches only the delta'd qdisc chains — no shortest-path
//!   computation ever runs inside the loop;
//! * the dataplane itself only routes packets to the owning manager, runs
//!   the physical-network delivery queue, and — because it can see every
//!   manager at once — scores how far the decentralized decisions are from
//!   the omniscient allocation ([`KollapsDataplane::convergence`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use kollaps_metadata::bus::{Bus, DisseminationBus, HostId, TrafficAccounting};
use kollaps_netmodel::egress::EgressVerdict;
use kollaps_netmodel::packet::{Addr, Packet};
use kollaps_sim::prelude::*;
use kollaps_topology::events::EventSchedule;
use kollaps_topology::model::{NodeId, Topology};
use kollaps_trace::{PhaseStats, Recorder};

use crate::collapse::{Addressable, CollapsedTopology};
use crate::manager::EmulationManager;
use crate::parallel::for_each_parallel;
use crate::runtime::{Dataplane, SendOutcome};
use crate::sharing::{AllocatorStats, FlowDemand, IncrementalAllocator};
use crate::timeline::SnapshotTimeline;

/// Tuning knobs of the emulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulationConfig {
    /// Period of the emulation loop (metadata exchange + enforcement).
    pub loop_interval: SimDuration,
    /// Extra one-way delay when source and destination containers sit on
    /// different physical hosts (the "small but measurable" physical-hop
    /// delay the paper observes in Table 4).
    pub cross_host_delay: SimDuration,
    /// Extra one-way delay introduced by container networking (Docker
    /// overlay), applied to every packet.
    pub container_overhead: SimDuration,
    /// One-way delay of metadata messages on the physical network. Managers
    /// enforce from what they have *received*, so raising this delays every
    /// host's reaction to remote flows by up to a full loop iteration.
    pub metadata_delay: SimDuration,
    /// Enables the RTT-aware bandwidth sharing model (step 4/5 of the loop).
    pub bandwidth_sharing: bool,
    /// Enables congestion loss injection when links are oversubscribed.
    pub congestion_loss: bool,
    /// Seed for the per-destination netem jitter streams.
    pub seed: u64,
    /// Worker threads for the parallel phases of the emulation loop (manager
    /// collect/enforce stepping). Only wall-clock changes with this knob —
    /// each manager's work is self-contained, so any thread count produces
    /// byte-identical results. Defaults to the `KOLLAPS_THREADS` environment
    /// variable, else 1 (sequential).
    pub threads: usize,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            loop_interval: SimDuration::from_millis(50),
            cross_host_delay: SimDuration::from_micros(50),
            container_overhead: SimDuration::from_micros(30),
            metadata_delay: SimDuration::from_micros(100),
            bandwidth_sharing: true,
            congestion_loss: true,
            seed: 42,
            threads: crate::parallel::threads_from_env(),
        }
    }
}

/// How close the decentralized, per-host enforcement tracks the omniscient
/// allocation (the one a centralized solver with instantaneous knowledge
/// would compute). The gap is the maximum relative difference between any
/// manager's enforced rate and the omniscient rate for the same flow.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConvergenceStats {
    /// Gap measured in the most recent loop iteration.
    pub last_gap: f64,
    /// Worst gap seen over the whole run.
    pub max_gap: f64,
    /// Sum of the per-iteration gaps (for the mean).
    pub sum_gap: f64,
    /// Loop iterations that contributed a measurement (at least one active
    /// flow).
    pub samples: u64,
}

impl ConvergenceStats {
    /// Mean gap over all measured loop iterations: the time-averaged
    /// inaccuracy the staleness of the metadata view costs. The max spikes
    /// whenever any flow starts; the mean is what distinguishes a fast loop
    /// with fresh metadata from a slow loop enforcing on old news.
    pub fn mean_gap(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum_gap / self.samples as f64
        }
    }
}

/// Runtime accounting of the dynamics engine: how much work applying the
/// precomputed snapshot timeline actually cost. The headline property is
/// that per-event swap work follows the **delta** (paths the change
/// affected), not the topology size — `changed_paths_*` against
/// [`DynamicsStats::pair_count`] makes that measurable, and the
/// `--bin dynamics` bench sweeps it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DynamicsStats {
    /// Wall-clock microseconds the offline timeline precompute took (paid
    /// once at construction, before the experiment starts).
    pub precompute_micros: u64,
    /// Change times precomputed in the timeline.
    pub snapshots_precomputed: usize,
    /// Change times whose snapshot has been swapped in so far.
    pub snapshots_applied: usize,
    /// Schedule events those swaps covered.
    pub events_applied: usize,
    /// Swap cost (changed + removed paths) of the most recent change.
    pub changed_paths_last: usize,
    /// Total swap cost over all applied changes.
    pub changed_paths_total: usize,
    /// Worst single-change swap cost.
    pub changed_paths_max: usize,
    /// Per-destination qdisc chains actually rewritten across all hosts.
    pub chains_touched_total: usize,
    /// Ordered service pairs in the initial snapshot — the work an online
    /// all-pairs re-collapse would redo on every event.
    pub pair_count: usize,
}

impl DynamicsStats {
    /// Mean swap cost per applied change.
    pub fn mean_swap_cost(&self) -> f64 {
        if self.snapshots_applied == 0 {
            0.0
        } else {
            self.changed_paths_total as f64 / self.snapshots_applied as f64
        }
    }
}

/// The phases of one emulation-loop iteration, in execution order. Phase
/// spans and the [`KollapsDataplane::phase_timing`] breakdown both use
/// these names.
pub const LOOP_PHASES: [&str; LOOP_PHASE_COUNT] =
    ["collect", "publish", "synchronize", "drain", "enforce"];

/// Number of loop phases. A literal (rather than `LOOP_PHASES.len()`) so the
/// static analyzer can bound-check the `phase_stats` subscripts against it.
pub const LOOP_PHASE_COUNT: usize = 5;

#[derive(Debug, Clone)]
struct PendingDelivery {
    arrival: SimTime,
    seq: u64,
    packet: Packet,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.arrival
            .cmp(&other.arrival)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The Kollaps collapsed-topology dataplane: N per-host Emulation Managers,
/// the dissemination bus between them, and the physical-network delivery
/// queue.
pub struct KollapsDataplane {
    config: EmulationConfig,
    /// The omniscient collapsed view — used for addressing, for routing
    /// packets, and as the reference the convergence metric compares the
    /// managers' local decisions against. Enforcement never reads it; the
    /// managers hold read-only `Arc` clones of the same snapshot.
    collapsed: Arc<CollapsedTopology>,
    /// Every collapsed snapshot of the experiment, precomputed offline at
    /// construction; runtime event application only swaps `Arc`s and
    /// touches the delta'd chains.
    timeline: SnapshotTimeline,
    /// Index of the next unapplied timeline delta.
    next_delta: usize,
    dynamics: DynamicsStats,
    /// One Emulation Manager per physical host, in host-id order.
    managers: Vec<EmulationManager>,
    /// Physical host of each container.
    placement: HashMap<Addr, HostId>,
    /// The dissemination transport. The in-process default is the modeled
    /// [`DisseminationBus`]; the distributed runtime swaps in a socket-backed
    /// implementation via [`KollapsDataplane::set_bus`].
    bus: Box<dyn Bus>,
    pending: BinaryHeap<Reverse<PendingDelivery>>,
    next_delivery_seq: u64,
    convergence: ConvergenceStats,
    /// Component-caching solver for the omniscient reference allocation the
    /// convergence metric recomputes every loop; invalidated on snapshot
    /// swaps like the managers' own solvers.
    omniscient: IncrementalAllocator,
    /// Per-host, per-iteration convergence gaps, recorded only when
    /// [`KollapsDataplane::record_host_gaps`] was enabled (indexed by host,
    /// aligned with `convergence.samples`).
    host_gap_series: Option<Vec<Vec<f64>>>,
    /// Flight recorder for phase spans and counters. Disabled by default —
    /// the disabled handle takes no timestamps, so emulation results are
    /// byte-identical with tracing off or on (tracing is wall-clock-only).
    recorder: Recorder,
    /// Per-phase wall-clock accumulators, indexed like [`LOOP_PHASES`].
    /// Meaningful only while the recorder is enabled.
    phase_stats: [PhaseStats; LOOP_PHASE_COUNT],
    next_tick: SimTime,
    started: bool,
}

impl KollapsDataplane {
    /// Builds the emulation for `topology` deployed over `hosts` physical
    /// machines (containers are placed round-robin, like the deployment
    /// generator's default strategy).
    pub fn new(
        topology: Topology,
        schedule: EventSchedule,
        hosts: usize,
        config: EmulationConfig,
    ) -> Self {
        KollapsDataplane::with_placement(topology, schedule, hosts, &HashMap::new(), config)
    }

    /// Builds the emulation with an explicit container placement: `pinned`
    /// maps service nodes to host indices (`0..hosts`); services it does not
    /// mention fall back to round-robin. Host indices are clamped into
    /// range — the scenario layer validates them properly and reports a
    /// typed error instead.
    pub fn with_placement(
        topology: Topology,
        schedule: EventSchedule,
        hosts: usize,
        pinned: &HashMap<NodeId, u32>,
        config: EmulationConfig,
    ) -> Self {
        // The whole dynamics of the experiment are precomputed here, before
        // any traffic flows (paper §3: schedules are part of the experiment
        // description, so nothing about a topology change is a surprise).
        let timeline = SnapshotTimeline::precompute(&topology, &schedule);
        KollapsDataplane::with_prepared(timeline, hosts, pinned, config)
    }

    /// Builds the emulation from an **already precomputed** snapshot
    /// timeline. A campaign sweeping non-topological parameters precomputes
    /// the timeline once and hands every variant a clone: the clone shares
    /// every `CollapsedTopology` snapshot (and every `CollapsedPath` inside
    /// them) structurally behind `Arc`s, so N variants pay the offline
    /// all-pairs work once, not N times. The timeline's own
    /// `precompute_micros` travels with it — variants built from the same
    /// prepared timeline report identical precompute counters.
    pub fn with_prepared(
        timeline: SnapshotTimeline,
        hosts: usize,
        pinned: &HashMap<NodeId, u32>,
        config: EmulationConfig,
    ) -> Self {
        let collapsed = Arc::clone(timeline.initial());
        let dynamics = DynamicsStats {
            precompute_micros: timeline.stats().precompute_micros,
            snapshots_precomputed: timeline.len(),
            pair_count: collapsed.pair_count(),
            ..DynamicsStats::default()
        };
        let hosts = hosts.max(1);
        let host_ids: Vec<HostId> = (0..hosts as u32).map(HostId).collect();
        let rng = SimRng::new(config.seed);
        // `addresses()` yields (service, addr); sort by address for stable
        // round-robin placement.
        let mut addressed: Vec<(NodeId, Addr)> = collapsed.addresses().collect();
        addressed.sort_by_key(|&(_, a)| a);
        let mut placement = HashMap::new();
        let mut by_host: HashMap<HostId, Vec<Addr>> =
            host_ids.iter().map(|&h| (h, Vec::new())).collect();
        for (i, &(node, addr)) in addressed.iter().enumerate() {
            let host = match pinned.get(&node) {
                Some(&h) => HostId(h.min(hosts as u32 - 1)),
                None => host_ids[i % hosts],
            };
            placement.insert(addr, host);
            by_host.entry(host).or_default().push(addr);
        }
        let managers: Vec<EmulationManager> = host_ids
            .iter()
            .map(|&h| EmulationManager::new(h, config, Arc::clone(&collapsed), &by_host[&h], &rng))
            .collect();
        let bus = Box::new(DisseminationBus::new(host_ids, config.metadata_delay));
        KollapsDataplane {
            config,
            collapsed,
            timeline,
            next_delta: 0,
            dynamics,
            managers,
            placement,
            bus,
            pending: BinaryHeap::new(),
            next_delivery_seq: 0,
            convergence: ConvergenceStats::default(),
            omniscient: IncrementalAllocator::new(),
            host_gap_series: None,
            recorder: Recorder::disabled(),
            phase_stats: [PhaseStats::default(); LOOP_PHASE_COUNT],
            next_tick: SimTime::ZERO,
            started: false,
        }
    }

    /// Convenience constructor with the default configuration.
    pub fn with_defaults(topology: Topology, hosts: usize) -> Self {
        KollapsDataplane::new(
            topology,
            EventSchedule::new(),
            hosts,
            EmulationConfig::default(),
        )
    }

    /// The collapsed topology currently enforced.
    pub fn collapsed(&self) -> &CollapsedTopology {
        &self.collapsed
    }

    /// Metadata traffic accounting (Figures 3 and 4).
    pub fn metadata_accounting(&self) -> &TrafficAccounting {
        self.bus.accounting()
    }

    /// Replaces the dissemination transport. The distributed runtime
    /// injects its socket-backed bus here before any traffic flows; the
    /// replacement must connect the same host set.
    ///
    /// # Panics
    ///
    /// Panics if the emulation loop has already run (swapping transports
    /// mid-run would lose in-flight metadata) or if the host sets differ.
    pub fn set_bus(&mut self, bus: Box<dyn Bus>) {
        assert!(
            !self.started,
            "the metadata bus can only be replaced before the emulation starts"
        );
        assert_eq!(
            bus.hosts(),
            self.bus.hosts(),
            "the replacement bus must connect the same hosts"
        );
        self.bus = bus;
    }

    /// Attaches a flight recorder: lane 0 carries the dataplane's phase
    /// spans, lane `1 + host` carries each manager's worker spans (lanes are
    /// keyed by host id, not by thread — the scoped pool respawns workers
    /// every tick). Recording is wall-clock-only and never feeds back into
    /// the simulation, so results are byte-identical with or without it.
    ///
    /// # Panics
    ///
    /// Panics if the emulation loop has already run (spans would start
    /// mid-stream with unbalanced nesting).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        assert!(
            !self.started,
            "the flight recorder can only be attached before the emulation starts"
        );
        for manager in &mut self.managers {
            let lane = 1 + manager.host().0 as usize;
            manager.set_recorder(recorder.clone(), lane);
        }
        self.recorder = recorder;
    }

    /// The attached flight recorder (the disabled no-op handle by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Per-phase wall-clock breakdown of the emulation loop, in
    /// [`LOOP_PHASES`] order. `None` unless a recorder is enabled — the
    /// breakdown is wall-clock data and must not appear in reports of
    /// untraced runs (reports are pinned byte-identical across thread
    /// counts *and* across tracing on/off).
    pub fn phase_timing(&self) -> Option<Vec<(&'static str, PhaseStats)>> {
        if !self.recorder.is_enabled() {
            return None;
        }
        Some(LOOP_PHASES.iter().copied().zip(self.phase_stats).collect())
    }

    /// Enables per-host convergence recording: from the next loop iteration
    /// on, every scored iteration appends each host's own worst gap to a
    /// per-host series (all series stay sample-aligned with
    /// [`KollapsDataplane::convergence`]). The distributed runtime merges
    /// these series across agents to reconstruct the global gap.
    pub fn record_host_gaps(&mut self) {
        if self.host_gap_series.is_none() {
            self.host_gap_series = Some(vec![Vec::new(); self.managers.len()]);
        }
    }

    /// The recorded per-host gap series, one per host in host-id order.
    /// Empty unless [`KollapsDataplane::record_host_gaps`] was called.
    pub fn host_gap_series(&self) -> &[Vec<f64>] {
        self.host_gap_series.as_deref().unwrap_or(&[])
    }

    /// Number of physical hosts in the deployment.
    pub fn host_count(&self) -> usize {
        self.managers.len()
    }

    /// The per-host Emulation Managers, in host-id order.
    pub fn managers(&self) -> &[EmulationManager] {
        &self.managers
    }

    /// The physical host a container is placed on.
    pub fn placement_of(&self, addr: Addr) -> Option<HostId> {
        self.placement.get(&addr).copied()
    }

    /// How close the decentralized enforcement tracked the omniscient
    /// allocation so far.
    pub fn convergence(&self) -> ConvergenceStats {
        self.convergence
    }

    /// Total wall-clock microseconds all managers spent inside the
    /// bandwidth-sharing solver (diagnostic only; the scaling bench divides
    /// this by loop iterations).
    pub fn allocation_micros(&self) -> u64 {
        self.managers.iter().map(|m| m.allocation_micros()).sum()
    }

    /// Work-avoidance counters of the incremental min-max solvers, summed
    /// across all managers.
    pub fn allocator_stats(&self) -> AllocatorStats {
        let mut total = AllocatorStats::default();
        for stats in self.managers.iter().map(|m| m.allocator_stats()) {
            total.calls += stats.calls;
            total.fast_hits += stats.fast_hits;
            total.components_reused += stats.components_reused;
            total.components_recomputed += stats.components_recomputed;
        }
        total
    }

    /// The precomputed snapshot timeline of this experiment.
    pub fn timeline(&self) -> &SnapshotTimeline {
        &self.timeline
    }

    /// Runtime accounting of the dynamics engine (events applied, per-event
    /// swap cost, offline precompute time).
    pub fn dynamics(&self) -> DynamicsStats {
        self.dynamics
    }

    /// Extends the precomputed timeline with injected events — the live
    /// steering path. Every event must lie strictly in the future of `now`
    /// (the session validates and reports a typed error; here it is a
    /// debug assertion), which guarantees no already-applied delta moves:
    /// the extension re-derives at most the not-yet-applied suffix, and in
    /// the common case (events after the last delta) only appends. Returns
    /// the number of deltas derived.
    pub fn extend_timeline(&mut self, now: SimTime, extra: &EventSchedule) -> usize {
        debug_assert!(
            extra.events().iter().all(|e| SimTime::ZERO + e.at > now),
            "injected events must be in the future"
        );
        let _ = now;
        let mut span = self.recorder.span(0, "timeline_extend");
        let derived = self.timeline.extend(extra);
        span.arg("events", extra.events().len() as f64);
        span.arg("deltas_derived", derived as f64);
        self.dynamics.snapshots_precomputed = self.timeline.len();
        self.dynamics.precompute_micros = self.timeline.stats().precompute_micros;
        derived
    }

    /// Links any manager currently observes oversubscribed (its last loop
    /// iteration measured more offered load than capacity), sorted and
    /// deduplicated across hosts. Live telemetry reads this to detect
    /// oversubscription onset.
    pub fn oversubscribed_links(&self) -> Vec<kollaps_topology::model::LinkId> {
        let mut links: Vec<_> = self
            .managers
            .iter()
            .flat_map(|m| m.oversubscribed_links())
            .collect();
        links.sort();
        links.dedup();
        links
    }

    /// The offered load per original-topology link implied by the usage
    /// every manager measured in its **last** loop iteration — the live
    /// counterpart of the report's end-of-run link table. Sorted by link
    /// id.
    pub fn link_usage(&self) -> Vec<(kollaps_topology::model::LinkId, Bandwidth)> {
        let mut load: HashMap<kollaps_topology::model::LinkId, u64> = HashMap::new();
        for manager in &self.managers {
            for &((src, dst), used) in manager.local_usages() {
                let Some(path) = self.collapsed.path_by_addr(src, dst) else {
                    continue;
                };
                for &link in &path.links {
                    *load.entry(link).or_default() += used.as_bps();
                }
            }
        }
        let mut usage: Vec<_> = load
            .into_iter()
            .map(|(link, bps)| (link, Bandwidth::from_bps(bps)))
            .collect();
        usage.sort_by_key(|&(link, _)| link);
        usage
    }

    /// The bandwidth the owning manager enforced for the (src, dst) pair in
    /// the last emulation loop iteration, if the pair was active.
    pub fn allocation(&self, src: Addr, dst: Addr) -> Option<Bandwidth> {
        self.manager_of(src)?.allocation(src, dst)
    }

    /// The usage the owning manager measured for the (src, dst) pair in the
    /// last loop.
    pub fn measured_usage(&self, src: Addr, dst: Addr) -> Option<Bandwidth> {
        self.manager_of(src)?.measured_usage(src, dst)
    }

    fn manager_of(&self, addr: Addr) -> Option<&EmulationManager> {
        let host = self.placement.get(&addr)?;
        self.managers.get(host.0 as usize)
    }

    fn extra_delay(&self, src: Addr, dst: Addr) -> SimDuration {
        let mut extra = self.config.container_overhead * 2;
        if self.placement.get(&src) != self.placement.get(&dst) {
            extra += self.config.cross_host_delay;
        }
        extra
    }

    /// Runs one iteration of the emulation loop at `now`: every manager
    /// measures locally, publishes, absorbs what the network delivered, and
    /// enforces from its own (possibly stale) view.
    fn emulation_loop(&mut self, now: SimTime) {
        let threads = self.config.threads;
        let traced = self.recorder.is_enabled();
        // Steps 1-2: each manager reads and clears its local TCAL usage.
        // Purely per-manager work — parallel stepping is byte-identical to
        // sequential because each worker owns a disjoint manager slice.
        let span = self.recorder.span(0, "collect");
        for_each_parallel(&mut self.managers, threads, |manager| {
            manager.collect_usage();
        });
        if traced {
            self.phase_stats[0].record(span.elapsed_micros());
        }
        drop(span);
        // Step 3: publish local usage, then drain. With a zero metadata
        // delay this iteration's publications arrive immediately (shared
        // memory semantics); with a nonzero delay managers enforce on last
        // iteration's news — the staleness the paper trades for
        // decentralization. The bus is shared, so this phase stays
        // sequential in host-id order.
        let span = self.recorder.span(0, "publish");
        for manager in &self.managers {
            manager.publish(now, self.bus.as_mut());
        }
        if traced {
            self.phase_stats[1].record(span.elapsed_micros());
        }
        drop(span);
        // Between publish and drain the bus synchronizes: the modeled bus
        // moves due messages, a socket bus blocks until every peer's
        // datagram of this iteration has arrived (the lockstep barrier).
        let span = self.recorder.span(0, "synchronize");
        self.bus.synchronize(now);
        if traced {
            self.phase_stats[2].record(span.elapsed_micros());
        }
        drop(span);
        let span = self.recorder.span(0, "drain");
        for manager in &mut self.managers {
            let deliveries = self.bus.drain(now, manager.host());
            manager.absorb(deliveries);
        }
        if traced {
            self.phase_stats[3].record(span.elapsed_micros());
        }
        drop(span);
        // Steps 4-5: each manager recomputes and enforces from what it has —
        // the hottest phase (min-max solve + qdisc writes), again split over
        // disjoint manager slices.
        let span = self.recorder.span(0, "enforce");
        for_each_parallel(&mut self.managers, threads, |manager| {
            manager.enforce(now);
        });
        if traced {
            self.phase_stats[4].record(span.elapsed_micros());
        }
        drop(span);
        self.update_convergence();
        if traced {
            self.recorder
                .counter(0, "convergence_gap", self.convergence.last_gap);
        }
    }

    /// Scores the decentralized decisions against the omniscient allocation
    /// (global instantaneous knowledge — exactly what the old centralized
    /// loop enforced).
    fn update_convergence(&mut self) {
        if !self.config.bandwidth_sharing {
            self.convergence.last_gap = 0.0;
            return;
        }
        let mut flows: Vec<FlowDemand> = Vec::new();
        let mut keys: Vec<(usize, Addr, Addr)> = Vec::new();
        for (mi, manager) in self.managers.iter().enumerate() {
            // The usage table is already sorted by pair.
            for &((src, dst), _) in manager.local_usages() {
                let Some(demand) = self.collapsed.flow_demand(keys.len() as u64, src, dst) else {
                    continue;
                };
                flows.push(demand);
                keys.push((mi, src, dst));
            }
        }
        if flows.is_empty() {
            self.convergence.last_gap = 0.0;
            return;
        }
        let omniscient = self
            .omniscient
            .allocate(&flows, self.collapsed.link_capacities());
        let mut gap = 0.0f64;
        let mut host_gaps = vec![0.0f64; self.managers.len()];
        for (i, &(mi, src, dst)) in keys.iter().enumerate() {
            let target = omniscient.of(i as u64).as_bps() as f64;
            if target <= 0.0 {
                continue;
            }
            let Some(enforced) = self.managers[mi].allocation(src, dst) else {
                continue;
            };
            let g = (enforced.as_bps() as f64 - target).abs() / target;
            gap = gap.max(g);
            host_gaps[mi] = host_gaps[mi].max(g);
        }
        self.convergence.last_gap = gap;
        self.convergence.max_gap = self.convergence.max_gap.max(gap);
        self.convergence.sum_gap += gap;
        self.convergence.samples += 1;
        if let Some(series) = &mut self.host_gap_series {
            for (host, &g) in host_gaps.iter().enumerate() {
                series[host].push(g);
            }
        }
    }

    /// Applies every precomputed change whose time has come: swaps in the
    /// offline-built snapshot and hands every manager the delta, so only
    /// the qdisc chains the change affected are touched. No topology
    /// mutation, no re-collapse and no event cloning happens here — the
    /// timeline is walked by index over its (sorted) deltas.
    fn apply_dynamic_events(&mut self, now: SimTime) {
        while let Some(delta) = self.timeline.deltas().get(self.next_delta) {
            if SimTime::ZERO + delta.at > now {
                break;
            }
            let mut span = self.recorder.span(0, "timeline_swap");
            self.collapsed = Arc::clone(&delta.snapshot);
            // Capacities changed — the omniscient solver's component cache
            // keys on flow shapes only (managers invalidate their own).
            self.omniscient.invalidate();
            let mut touched = 0;
            for manager in &mut self.managers {
                touched += manager.apply_delta(delta);
            }
            let cost = delta.swap_cost();
            span.arg("swap_cost", cost as f64);
            span.arg("chains_touched", touched as f64);
            self.dynamics.snapshots_applied += 1;
            self.dynamics.events_applied += delta.events;
            self.dynamics.changed_paths_last = cost;
            self.dynamics.changed_paths_total += cost;
            self.dynamics.changed_paths_max = self.dynamics.changed_paths_max.max(cost);
            self.dynamics.chains_touched_total += touched;
            self.next_delta += 1;
        }
    }
}

impl Addressable for KollapsDataplane {
    fn collapsed(&self) -> &CollapsedTopology {
        &self.collapsed
    }
}

impl Dataplane for KollapsDataplane {
    fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome {
        // Unknown destinations (an address that never belonged to a service
        // of this deployment) are dropped up front instead of being offered
        // to the qdisc tree — same outcome the tree's classifier would
        // reach, but with no risk of accounting a doomed packet.
        if self.collapsed.service_at(packet.dst).is_none() {
            return SendOutcome::Dropped(kollaps_netmodel::packet::DropReason::Unreachable);
        }
        let verdict = self
            .placement
            .get(&packet.src)
            .map(|h| h.0 as usize)
            .and_then(|i| self.managers.get_mut(i))
            .and_then(|manager| manager.enqueue(now, packet));
        match verdict {
            Some(EgressVerdict::Queued) => SendOutcome::Sent,
            Some(EgressVerdict::Backpressure) => SendOutcome::Backpressure,
            Some(EgressVerdict::Dropped(reason)) => SendOutcome::Dropped(reason),
            None => SendOutcome::Dropped(kollaps_netmodel::packet::DropReason::Unreachable),
        }
    }

    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            earliest = Some(match earliest {
                Some(e) => e.min(t),
                None => t,
            });
        };
        for manager in &mut self.managers {
            if let Some(t) = manager.next_wakeup(now) {
                consider(t);
            }
        }
        if let Some(Reverse(p)) = self.pending.peek() {
            consider(p.arrival);
        }
        earliest
    }

    fn deliver(&mut self, now: SimTime) -> Vec<Packet> {
        // Move packets that finished their collapsed-path emulation onto the
        // (fast) physical network towards the destination host.
        let mut egress_out = Vec::new();
        for manager in &mut self.managers {
            egress_out.extend(manager.dequeue_ready(now));
        }
        for pkt in egress_out {
            let arrival = now + self.extra_delay(pkt.src, pkt.dst);
            let seq = self.next_delivery_seq;
            self.next_delivery_seq += 1;
            self.pending.push(Reverse(PendingDelivery {
                arrival,
                seq,
                packet: pkt,
            }));
        }
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.pending.peek() {
            if head.arrival > now {
                break;
            }
            let Some(Reverse(p)) = self.pending.pop() else {
                break;
            };
            out.push(p.packet);
        }
        out
    }

    fn tick(&mut self, now: SimTime) -> Option<SimTime> {
        if !self.started {
            self.started = true;
            self.next_tick = now + self.config.loop_interval;
            return Some(self.next_tick);
        }
        let mut span = self.recorder.span(0, "tick");
        span.arg("sim_ms", now.as_millis() as f64);
        self.apply_dynamic_events(now);
        self.emulation_loop(now);
        drop(span);
        self.next_tick = now + self.config.loop_interval;
        Some(self.next_tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use kollaps_sim::units::Bandwidth;
    use kollaps_topology::events::{DynamicAction, DynamicEvent, LinkChange};
    use kollaps_topology::generators;
    use kollaps_transport::tcp::{TcpSenderConfig, TransferSize};

    #[test]
    fn point_to_point_latency_is_emulated() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(20),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let probe = rt.add_ping(
            client,
            server,
            SimDuration::from_millis(100),
            50,
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(10));
        let rtts = rt.ping_rtts(probe).unwrap();
        assert_eq!(rtts.len(), 50);
        // RTT ≈ 2 × 20 ms plus the (small) container overhead.
        assert!((rtts.mean() - 40.0).abs() < 0.5, "mean rtt {}", rtts.mean());
    }

    #[test]
    fn single_flow_reaches_the_collapsed_bandwidth() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let flow = rt.add_tcp_flow(
            client,
            server,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(10));
        let bytes = rt.tcp_received_bytes(flow);
        let mbps = DataSize::from_bytes(bytes)
            .rate_over(SimDuration::from_secs(10))
            .as_mbps();
        // Goodput should sit a few percent below the 50 Mb/s shaped rate
        // (header overhead + slow start), like Table 2's -5 % column.
        assert!((42.0..=50.0).contains(&mbps), "goodput {mbps} Mb/s");
    }

    #[test]
    fn two_flows_share_a_bottleneck_by_rtt() {
        // Figure 8, first 120 seconds: C1 and C2 share the 50 Mb/s B1-B2
        // link 23.08 / 26.92 according to their RTTs.
        let (topo, clients, servers) = generators::figure8();
        let collapsed = CollapsedTopology::build(&topo);
        let c1 = collapsed.address_of(clients[0]).unwrap();
        let c2 = collapsed.address_of(clients[1]).unwrap();
        let s1 = collapsed.address_of(servers[0]).unwrap();
        let s2 = collapsed.address_of(servers[1]).unwrap();
        let dp = KollapsDataplane::with_defaults(topo, 2);
        let mut rt = Runtime::new(dp);
        let f1 = rt.add_tcp_flow(
            c1,
            s1,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let f2 = rt.add_tcp_flow(
            c2,
            s2,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(30));
        // Measure over the steady-state second half.
        let half = SimTime::from_secs(15);
        let m1 = rt
            .throughput_series(f1)
            .unwrap()
            .mean_between(half, SimTime::from_secs(30));
        let m2 = rt
            .throughput_series(f2)
            .unwrap()
            .mean_between(half, SimTime::from_secs(30));
        assert!((m1 - 23.08).abs() < 3.0, "C1 got {m1} Mb/s");
        assert!((m2 - 26.92).abs() < 3.0, "C2 got {m2} Mb/s");
        assert!(m2 > m1, "the lower-RTT flow must get the larger share");
    }

    #[test]
    fn dynamic_latency_change_is_applied() {
        let (topo, client_node, server_node) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
        );
        let mut schedule = EventSchedule::new();
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(5),
            action: DynamicAction::SetLinkProperties {
                orig: "client".into(),
                dest: "server".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(40)),
                    ..LinkChange::default()
                },
            },
        });
        let _ = (client_node, server_node);
        let dp = KollapsDataplane::new(topo, schedule, 1, EmulationConfig::default());
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let probe = rt.add_ping(
            client,
            server,
            SimDuration::from_millis(200),
            50,
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(10));
        let rtts = rt.ping_rtts(probe).unwrap();
        let samples = rtts.samples();
        let early: f64 = samples[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = samples[samples.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!((early - 20.0).abs() < 1.0, "early rtt {early}");
        assert!((late - 80.0).abs() < 2.0, "late rtt {late}");
        let _ = probe;
    }

    /// The dynamics acceptance property at the dataplane level: applying a
    /// precomputed event touches only the qdisc chains of the paths the
    /// event affected, and the dataplane records that swap cost.
    #[test]
    fn dynamic_event_application_touches_only_the_delta() {
        let (topo, _, _) = generators::dumbbell(
            4,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let mut schedule = EventSchedule::new();
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(1),
            action: DynamicAction::SetLinkProperties {
                orig: "client-0".into(),
                dest: "bridge-left".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(25)),
                    ..LinkChange::default()
                },
            },
        });
        let dp = KollapsDataplane::new(topo, schedule, 1, EmulationConfig::default());
        // 8 services: 56 ordered pairs, precomputed as one delta of 14
        // (every pair involving client-0).
        assert_eq!(dp.timeline().len(), 1);
        assert_eq!(dp.timeline().deltas()[0].swap_cost(), 14);
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(4);
        let mut rt = Runtime::new(dp);
        rt.add_udp_flow(client, server, Bandwidth::from_mbps(5), SimTime::ZERO, None);
        let _ = rt.run_until(SimTime::from_secs(2));
        let stats = rt.dataplane.dynamics();
        assert_eq!(stats.snapshots_applied, 1);
        assert_eq!(stats.events_applied, 1);
        assert_eq!(stats.changed_paths_last, 14);
        assert_eq!(stats.changed_paths_max, 14);
        assert_eq!(stats.pair_count, 56);
        // Every touched chain belongs to the single host; far fewer than
        // the 56 chains a full reinstall would rewrite.
        assert_eq!(stats.chains_touched_total, 14);
        assert!(stats.mean_swap_cost() < stats.pair_count as f64);
    }

    #[test]
    fn metadata_traffic_is_zero_on_a_single_host() {
        let (topo, _, _) = generators::dumbbell(
            4,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let collapsed = CollapsedTopology::build(&topo);
        let pairs: Vec<(Addr, Addr)> = (0..4)
            .map(|i| {
                (
                    collapsed
                        .address_of(topo.node_by_name(&format!("client-{i}")).unwrap())
                        .unwrap(),
                    collapsed
                        .address_of(topo.node_by_name(&format!("server-{i}")).unwrap())
                        .unwrap(),
                )
            })
            .collect();
        for hosts in [1usize, 4] {
            let dp = KollapsDataplane::with_defaults(topo.clone(), hosts);
            let mut rt = Runtime::new(dp);
            for &(c, s) in &pairs {
                rt.add_udp_flow(c, s, Bandwidth::from_mbps(10), SimTime::ZERO, None);
            }
            let _ = rt.run_until(SimTime::from_secs(5));
            let bytes = rt.dataplane.metadata_accounting().total_network_bytes();
            if hosts == 1 {
                assert_eq!(bytes, 0, "single host must not use the network");
            } else {
                assert!(bytes > 0, "multi-host deployments exchange metadata");
            }
        }
    }

    #[test]
    fn unknown_destination_is_dropped_not_panicked() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let mut dp = KollapsDataplane::with_defaults(topo, 1);
        let client = dp.address_of_index(0);
        let ghost = Addr::container(99);
        let pkt = Packet::new(
            1,
            kollaps_netmodel::packet::FlowId(1),
            client,
            ghost,
            kollaps_netmodel::packet::MTU,
            kollaps_netmodel::packet::PacketKind::Udp,
            SimTime::ZERO,
        );
        assert_eq!(
            dp.send(SimTime::ZERO, pkt),
            SendOutcome::Dropped(kollaps_netmodel::packet::DropReason::Unreachable)
        );
        // Driving a whole flow towards the unknown address must not panic
        // the emulation loop either — the packets are simply lost.
        let mut rt = Runtime::new(dp);
        let flow = rt.add_udp_flow(client, ghost, Bandwidth::from_mbps(1), SimTime::ZERO, None);
        let _ = rt.run_until(SimTime::from_secs(2));
        assert_eq!(rt.udp_delivered_bytes(flow), 0);
    }

    #[test]
    fn node_leave_mid_flow_degrades_gracefully() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let mut schedule = EventSchedule::new();
        schedule.push(DynamicEvent {
            at: SimDuration::from_secs(2),
            action: DynamicAction::NodeLeave {
                name: "server".into(),
            },
        });
        let dp = KollapsDataplane::new(topo, schedule, 1, EmulationConfig::default());
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let flow = rt.add_tcp_flow(
            client,
            server,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        // The emulation loop used to `expect("active path")` here; now the
        // run completes and the flow just stops making progress.
        let _ = rt.run_until(SimTime::from_secs(6));
        assert!(rt.tcp_received_bytes(flow) > 0, "flow ran before the event");
        let stalled = rt
            .throughput_series(flow)
            .unwrap()
            .mean_between(SimTime::from_secs(4), SimTime::from_secs(6));
        assert!(
            stalled < 1.0,
            "flow must stall after the node left: {stalled}"
        );
    }

    /// Builds a 2-pair dumbbell with each client/server pair pinned to its
    /// own physical host, so the two competing flows are managed by two
    /// different Emulation Managers that only know each other via metadata.
    fn split_dumbbell(config: EmulationConfig) -> (KollapsDataplane, (Addr, Addr), (Addr, Addr)) {
        let (topo, clients, servers) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let pinned: HashMap<kollaps_topology::model::NodeId, u32> = [
            (clients[0], 0),
            (servers[0], 0),
            (clients[1], 1),
            (servers[1], 1),
        ]
        .into_iter()
        .collect();
        let collapsed = CollapsedTopology::build(&topo);
        let c0 = collapsed.address_of(clients[0]).unwrap();
        let s0 = collapsed.address_of(servers[0]).unwrap();
        let c1 = collapsed.address_of(clients[1]).unwrap();
        let s1 = collapsed.address_of(servers[1]).unwrap();
        let dp = KollapsDataplane::with_placement(topo, EventSchedule::new(), 2, &pinned, config);
        assert_eq!(dp.placement_of(c0), Some(kollaps_metadata::bus::HostId(0)));
        assert_eq!(dp.placement_of(c1), Some(kollaps_metadata::bus::HostId(1)));
        (dp, (c0, s0), (c1, s1))
    }

    /// The acceptance test of the decentralization refactor: with a nonzero
    /// metadata delay, a manager reacts to a remote flow exactly one loop
    /// iteration later than with instantaneous metadata, because it enforces
    /// only from what the bus has *delivered*.
    #[test]
    fn reaction_to_a_remote_flow_lags_by_one_loop_with_delayed_metadata() {
        let bottleneck = Bandwidth::from_mbps(50);
        for (delay_us, lagged) in [(0u64, false), (10_000, true)] {
            let config = EmulationConfig {
                metadata_delay: SimDuration::from_micros(delay_us),
                ..EmulationConfig::default()
            };
            let (dp, (c0, s0), (c1, s1)) = split_dumbbell(config);
            let mut rt = Runtime::new(dp);
            // Flow A (host 0) starts immediately; flow B (host 1) joins
            // mid-interval, so its usage is first measured — and published —
            // at the 150 ms loop boundary.
            rt.add_udp_flow(c0, s0, Bandwidth::from_mbps(40), SimTime::ZERO, None);
            rt.add_udp_flow(
                c1,
                s1,
                Bandwidth::from_mbps(40),
                SimTime::from_millis(125),
                None,
            );
            // Just after the 150 ms loop: with instantaneous metadata the
            // host-0 manager already shares the bottleneck; with a 10 ms
            // delay B's publication is still in flight, so A keeps the full
            // 50 Mb/s.
            let _ = rt.run_until(SimTime::from_millis(155));
            let at_150 = rt.dataplane.allocation(c0, s0).expect("A active");
            if lagged {
                assert_eq!(at_150, bottleneck, "stale view must keep the old rate");
                // The convergence metric sees exactly this disagreement: the
                // omniscient allocation already splits the link 25/25.
                let gap = rt.dataplane.convergence().last_gap;
                assert!(gap > 0.5, "expected a large convergence gap, got {gap}");
            } else {
                assert!(
                    (at_150.as_mbps() - 25.0).abs() < 1.0,
                    "instant metadata must share immediately: {at_150}"
                );
            }
            // One loop later the delayed publication has been absorbed and
            // both managers agree with the omniscient split again.
            let _ = rt.run_until(SimTime::from_millis(205));
            let at_200 = rt.dataplane.allocation(c0, s0).expect("A active");
            assert!(
                (at_200.as_mbps() - 25.0).abs() < 1.0,
                "after one loop the share must converge: {at_200}"
            );
            assert!(rt.dataplane.convergence().last_gap < 0.05);
            if lagged {
                assert!(rt.dataplane.convergence().max_gap > 0.5);
            }
        }
    }

    /// The property the distributed runtime's report merge rests on: the
    /// per-host gap series partition the global metric. Each scored
    /// iteration's global gap is the max over that iteration's per-host
    /// gaps, so max/last/mean are all reconstructible from the series.
    #[test]
    fn host_gap_series_partition_the_global_gap() {
        let (mut dp, (c0, s0), (c1, s1)) = split_dumbbell(EmulationConfig::default());
        dp.record_host_gaps();
        let mut rt = Runtime::new(dp);
        rt.add_udp_flow(c0, s0, Bandwidth::from_mbps(40), SimTime::ZERO, None);
        rt.add_udp_flow(
            c1,
            s1,
            Bandwidth::from_mbps(40),
            SimTime::from_millis(125),
            None,
        );
        let _ = rt.run_until(SimTime::from_secs(2));
        let stats = rt.dataplane.convergence();
        assert!(stats.samples > 0);
        let series = rt.dataplane.host_gap_series();
        assert_eq!(series.len(), 2);
        for s in series {
            assert_eq!(s.len() as u64, stats.samples, "series stay sample-aligned");
        }
        let merged: Vec<f64> = (0..stats.samples as usize)
            .map(|i| series.iter().map(|s| s[i]).fold(0.0, f64::max))
            .collect();
        let max = merged.iter().copied().fold(0.0, f64::max);
        let sum: f64 = merged.iter().sum();
        assert!((max - stats.max_gap).abs() < 1e-12);
        assert!((sum - stats.sum_gap).abs() < 1e-9);
        assert!((merged.last().unwrap() - stats.last_gap).abs() < 1e-12);
    }

    #[test]
    fn convergence_gap_is_zero_on_a_single_host() {
        let (topo, _, _) = generators::figure8();
        let config = EmulationConfig {
            metadata_delay: SimDuration::ZERO,
            ..EmulationConfig::default()
        };
        let dp = KollapsDataplane::new(topo, EventSchedule::new(), 1, config);
        let c1 = dp.address_of_index(0);
        let s1 = dp.address_of_index(6);
        let c2 = dp.address_of_index(1);
        let s2 = dp.address_of_index(7);
        let mut rt = Runtime::new(dp);
        rt.add_udp_flow(c1, s1, Bandwidth::from_mbps(40), SimTime::ZERO, None);
        rt.add_udp_flow(c2, s2, Bandwidth::from_mbps(40), SimTime::ZERO, None);
        let _ = rt.run_until(SimTime::from_secs(2));
        let stats = rt.dataplane.convergence();
        assert!(stats.samples > 0, "loop iterations must be scored");
        assert!(
            stats.max_gap < 1e-9,
            "one host sees everything locally: gap {}",
            stats.max_gap
        );
    }

    #[test]
    fn explicit_placement_pins_containers_to_hosts() {
        let (topo, clients, servers) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        // Pin everything onto host 1 of 3 (round-robin would spread them).
        let pinned: HashMap<kollaps_topology::model::NodeId, u32> = clients
            .iter()
            .chain(servers.iter())
            .map(|&n| (n, 1u32))
            .collect();
        let collapsed = CollapsedTopology::build(&topo);
        let dp = KollapsDataplane::with_placement(
            topo,
            EventSchedule::new(),
            3,
            &pinned,
            EmulationConfig::default(),
        );
        assert_eq!(dp.host_count(), 3);
        for (_, addr) in collapsed.addresses() {
            assert_eq!(
                dp.placement_of(addr),
                Some(kollaps_metadata::bus::HostId(1))
            );
        }
        assert_eq!(dp.managers()[1].container_count(), 4);
        assert_eq!(dp.managers()[0].container_count(), 0);
        assert_eq!(dp.managers()[2].container_count(), 0);
    }

    #[test]
    fn allocation_is_exposed_for_inspection() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let client = dp.address_of_index(0);
        let server = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        rt.add_tcp_flow(
            client,
            server,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(5));
        let alloc = rt.dataplane.allocation(client, server).unwrap();
        assert!((alloc.as_mbps() - 10.0).abs() < 0.5, "allocation {alloc}");
        assert!(rt.dataplane.measured_usage(client, server).is_some());
    }
}
