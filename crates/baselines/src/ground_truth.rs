//! Hop-by-hop simulation of the target topology ("bare metal").
//!
//! Every unidirectional link of the topology is a
//! [`kollaps_netmodel::link::LinkPipe`] with the link's bandwidth, latency,
//! loss and a drop-tail buffer. Packets are routed along the same shortest
//! paths Kollaps collapses, but traverse every hop explicitly — switch
//! buffers fill, packets are dropped on overflow, and TCP reacts to real
//! queueing rather than to the emulation model. This is the reference the
//! paper's deviation plots (Figures 5-7) measure against.

use std::collections::HashMap;

use kollaps_netmodel::link::{LinkConfig, LinkPipe};
use kollaps_netmodel::packet::{DropReason, Packet};
use kollaps_sim::prelude::*;

use kollaps_core::collapse::{Addressable, CollapsedTopology};
use kollaps_core::runtime::{Dataplane, SendOutcome};
use kollaps_topology::graph::TopologyGraph;
use kollaps_topology::model::{LinkId, NodeId, Topology};

/// Routing and link state for a full-state (per-hop) network simulation.
pub struct GroundTruthDataplane {
    /// Per-link pipes, keyed by the original link id.
    links: HashMap<LinkId, LinkPipe>,
    /// Forwarding tables: at node `n`, towards destination service `d`, use
    /// link `l` (the first hop of the shortest path).
    next_hop: HashMap<(NodeId, NodeId), LinkId>,
    /// Where each link leads.
    link_endpoint: HashMap<LinkId, NodeId>,
    /// Container address ↔ service node mapping (same assignment as the
    /// collapsed topology, so workloads can run on either).
    collapsed: CollapsedTopology,
    /// Extra forwarding latency applied at every switch hop (zero for bare
    /// metal; the Mininet/Maxinet wrappers raise it).
    per_hop_overhead: SimDuration,
    /// Packets that reached their destination, ready for pickup.
    arrived: Vec<Packet>,
    /// Which node each in-flight packet currently sits at is implicit: a
    /// packet is always inside some link pipe; this maps a delivered packet
    /// (by link) to the node where it pops out.
    dropped: u64,
}

impl GroundTruthDataplane {
    /// Builds the per-hop simulation of `topology`.
    pub fn new(topology: &Topology) -> Self {
        let collapsed = CollapsedTopology::build(topology);
        let graph = TopologyGraph::new(topology);
        let mut links = HashMap::new();
        let mut link_endpoint = HashMap::new();
        for spec in topology.links() {
            let mut cfg = LinkConfig::new(spec.properties.bandwidth, spec.properties.latency);
            cfg.loss = spec.properties.loss;
            links.insert(spec.id, LinkPipe::with_seed(cfg, u64::from(spec.id.0) + 1));
            link_endpoint.insert(spec.id, spec.to);
        }
        // Forwarding tables: per-source shortest paths from every node, so
        // intermediate bridges also know where to forward.
        let mut next_hop = HashMap::new();
        for node in topology.nodes() {
            let paths = graph.shortest_paths_from(node.id);
            for &service in &topology.service_ids() {
                if service == node.id {
                    continue;
                }
                if let Some(path) = paths.get(&service) {
                    if let Some(first) = path.links.first() {
                        next_hop.insert((node.id, service), *first);
                    }
                }
            }
        }
        GroundTruthDataplane {
            links,
            next_hop,
            link_endpoint,
            collapsed,
            per_hop_overhead: SimDuration::ZERO,
            arrived: Vec::new(),
            dropped: 0,
        }
    }

    /// Sets the per-switch forwarding overhead (used by the Mininet and
    /// Maxinet variants).
    pub fn set_per_hop_overhead(&mut self, overhead: SimDuration) {
        self.per_hop_overhead = overhead;
    }

    /// The address/collapse view shared with the Kollaps dataplane.
    pub fn collapsed(&self) -> &CollapsedTopology {
        &self.collapsed
    }

    /// Packets dropped inside the network so far (loss + buffer overflow).
    pub fn dropped_packets(&self) -> u64 {
        self.dropped
    }

    fn forward(&mut self, now: SimTime, at_node: NodeId, packet: Packet) -> Option<DropReason> {
        let Some(dst_node) = self.collapsed.service_at(packet.dst) else {
            self.dropped += 1;
            return Some(DropReason::Unreachable);
        };
        if at_node == dst_node {
            self.arrived.push(packet);
            return None;
        }
        let Some(&link) = self.next_hop.get(&(at_node, dst_node)) else {
            self.dropped += 1;
            return Some(DropReason::Unreachable);
        };
        let pipe = self.links.get_mut(&link).expect("link exists");
        let verdict = pipe.enqueue(now + self.per_hop_overhead, packet);
        if verdict.is_some() {
            self.dropped += 1;
        }
        verdict
    }

    /// Moves packets that finished a hop onto their next hop (or into the
    /// arrival buffer).
    fn propagate(&mut self, now: SimTime) {
        // Sorted: same-instant forwarding between pipes must not depend on
        // the process-random HashMap iteration order, or contended runs
        // stop being reproducible. The key set cannot change inside the
        // fixpoint loop, so collect and sort once.
        let mut link_ids: Vec<LinkId> = self.links.keys().copied().collect();
        link_ids.sort();
        loop {
            let mut moved = false;
            for &link in &link_ids {
                let ready = {
                    let pipe = self.links.get_mut(&link).expect("link exists");
                    pipe.deliver_ready(now)
                };
                if ready.is_empty() {
                    continue;
                }
                moved = true;
                let node = *self.link_endpoint.get(&link).expect("endpoint");
                for pkt in ready {
                    let _ = self.forward(now, node, pkt);
                }
            }
            if !moved {
                break;
            }
        }
    }
}

impl Addressable for GroundTruthDataplane {
    fn collapsed(&self) -> &CollapsedTopology {
        &self.collapsed
    }
}

impl Dataplane for GroundTruthDataplane {
    fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome {
        let Some(src_node) = self.collapsed.service_at(packet.src) else {
            return SendOutcome::Dropped(DropReason::Unreachable);
        };
        match self.forward(now, src_node, packet) {
            None => SendOutcome::Sent,
            // A full first-hop buffer behaves like a full local qdisc: the
            // sender's stack is back-pressured rather than silently losing
            // the packet it has not yet serialized.
            Some(DropReason::QueueOverflow) => SendOutcome::Backpressure,
            Some(reason) => SendOutcome::Dropped(reason),
        }
    }

    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        self.links
            .values_mut()
            .filter_map(|l| l.next_wakeup(now))
            .min()
    }

    fn deliver(&mut self, now: SimTime) -> Vec<Packet> {
        self.propagate(now);
        std::mem::take(&mut self.arrived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_core::runtime::Runtime;
    use kollaps_netmodel::packet::Addr;
    use kollaps_topology::generators;
    use kollaps_transport::tcp::{TcpSenderConfig, TransferSize};

    #[test]
    fn ping_rtt_matches_topology_latency() {
        let (topo, clients, servers) = generators::figure8();
        let dp = GroundTruthDataplane::new(&topo);
        let c1 = dp.collapsed().address_of(clients[0]).unwrap();
        let s1 = dp.collapsed().address_of(servers[0]).unwrap();
        let mut rt = Runtime::new(dp);
        let probe = rt.add_ping(c1, s1, SimDuration::from_millis(100), 30, SimTime::ZERO);
        let _ = rt.run_until(SimTime::from_secs(10));
        let rtts = rt.ping_rtts(probe).unwrap();
        // One-way latency is 35 ms (10+10+10+5), so the RTT is ≈ 70 ms plus
        // per-hop serialization of the tiny ICMP packets.
        assert!((rtts.mean() - 70.0).abs() < 1.0, "rtt {}", rtts.mean());
    }

    #[test]
    fn tcp_throughput_reaches_the_bottleneck() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let dp = GroundTruthDataplane::new(&topo);
        let c = dp.address_of_index(0);
        let s = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let flow = rt.add_tcp_flow(
            c,
            s,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let _ = rt.run_until(SimTime::from_secs(10));
        let mbps = DataSize::from_bytes(rt.tcp_received_bytes(flow))
            .rate_over(SimDuration::from_secs(10))
            .as_mbps();
        assert!((40.0..=50.5).contains(&mbps), "goodput {mbps}");
    }

    #[test]
    fn two_flows_share_a_real_bottleneck() {
        let (topo, clients, servers) = generators::dumbbell(
            2,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        let dp = GroundTruthDataplane::new(&topo);
        let addrs: Vec<(Addr, Addr)> = (0..2)
            .map(|i| {
                (
                    dp.collapsed().address_of(clients[i]).unwrap(),
                    dp.collapsed().address_of(servers[i]).unwrap(),
                )
            })
            .collect();
        let mut rt = Runtime::new(dp);
        let flows: Vec<_> = addrs
            .iter()
            .map(|&(c, s)| {
                rt.add_tcp_flow(
                    c,
                    s,
                    TransferSize::Unbounded,
                    TcpSenderConfig::default(),
                    SimTime::ZERO,
                )
            })
            .collect();
        let _ = rt.run_until(SimTime::from_secs(20));
        let total: f64 = flows
            .iter()
            .map(|&f| {
                DataSize::from_bytes(rt.tcp_received_bytes(f))
                    .rate_over(SimDuration::from_secs(20))
                    .as_mbps()
            })
            .sum();
        // The two flows together must not exceed the 50 Mb/s bottleneck, and
        // should utilise most of it.
        assert!(total <= 51.0, "total {total}");
        assert!(total >= 35.0, "total {total}");
    }

    #[test]
    fn unreachable_destination_is_reported() {
        let mut topo = Topology::new();
        topo.add_service("a", 0, "x");
        topo.add_service("b", 0, "x");
        let mut dp = GroundTruthDataplane::new(&topo);
        let a = dp.address_of_index(0);
        let b = dp.address_of_index(1);
        let pkt = Packet::new(
            1,
            kollaps_netmodel::packet::FlowId(1),
            a,
            b,
            kollaps_netmodel::packet::MTU,
            kollaps_netmodel::packet::PacketKind::Udp,
            SimTime::ZERO,
        );
        assert_eq!(
            dp.send(SimTime::ZERO, pkt),
            SendOutcome::Dropped(DropReason::Unreachable)
        );
        assert_eq!(dp.dropped_packets(), 1);
    }
}
