//! # kollaps-baselines
//!
//! The comparison systems of the Kollaps evaluation, rebuilt over the same
//! simulation substrate so that every workload can run unmodified against
//! any of them (they all implement [`kollaps_core::runtime::Dataplane`]):
//!
//! * [`ground_truth`] — the "bare-metal" reference: the *target* topology is
//!   simulated hop by hop, every link with its own serialization,
//!   propagation and drop-tail buffer. This plays the role of the real
//!   network in Figures 5-7 and Table 2.
//! * [`mininet`] — a Mininet/Mininet-HiFi-like full-state emulator: same
//!   hop-by-hop dataplane, but single-host, htb shaping capped at 1 Gb/s and
//!   a per-switch software-forwarding cost that grows with the rate of new
//!   connections (the short-flow degradation of Figure 6).
//! * [`maxinet`] — a Maxinet-like distributed emulator: adds an external
//!   OpenFlow-controller round trip on every new flow and tunnelling delay
//!   between workers (the large RTT errors of Table 4).
//! * [`trickle`] — a Trickle-like userspace bandwidth shaper: shaping happens
//!   above the socket, so a full TCP send buffer escapes unshaped every
//!   scheduling quantum; with the default buffer this badly overshoots small
//!   rates (Table 2), with a tuned buffer it is accurate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ground_truth;
pub mod maxinet;
pub mod mininet;
pub mod trickle;

pub use ground_truth::GroundTruthDataplane;
pub use maxinet::MaxinetDataplane;
pub use mininet::MininetDataplane;
pub use trickle::{TrickleConfig, TrickleDataplane};
