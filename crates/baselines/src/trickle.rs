//! Trickle-like userspace bandwidth shaper model.
//!
//! Trickle interposes on the socket API via `LD_PRELOAD` and delays the
//! application's `send` calls to approximate a target rate. Because shaping
//! happens *above* the kernel socket buffer, data that already sits in the
//! send buffer escapes unshaped every scheduling quantum. With iPerf3's
//! default (large) buffers this overshoots small target rates by a large
//! factor — Table 2 reports +104 % at 128 Kb/s — while after tuning the
//! application to use small buffers the shaper is accurate to ≈ ±2 %.

use std::collections::VecDeque;

use kollaps_netmodel::packet::Packet;
use kollaps_sim::prelude::*;

use kollaps_core::collapse::{Addressable, CollapsedTopology};
use kollaps_core::runtime::{Dataplane, SendOutcome};
use kollaps_topology::model::Topology;

use crate::ground_truth::GroundTruthDataplane;

/// Parameters of the Trickle model.
#[derive(Debug, Clone, Copy)]
pub struct TrickleConfig {
    /// Target rate the user asked Trickle to enforce.
    pub target: Bandwidth,
    /// The application's socket send-buffer size; data up to this amount per
    /// scheduling quantum bypasses the userspace shaper.
    pub socket_buffer: DataSize,
    /// Trickle's scheduling quantum (how often it re-evaluates the average).
    pub quantum: SimDuration,
}

impl TrickleConfig {
    /// The default configuration: iPerf3's default (large) send buffer,
    /// one of which escapes the userspace shaper per averaging period.
    pub fn default_buffers(target: Bandwidth) -> Self {
        TrickleConfig {
            target,
            socket_buffer: DataSize::from_kib(16),
            quantum: SimDuration::from_secs(1),
        }
    }

    /// The tuned configuration from the paper: small send buffers make the
    /// userspace average accurate.
    pub fn tuned(target: Bandwidth) -> Self {
        TrickleConfig {
            target,
            socket_buffer: DataSize::from_bytes(1460),
            quantum: SimDuration::from_secs(1),
        }
    }
}

/// Trickle-like dataplane: userspace token bucket in front of an otherwise
/// unconstrained network.
pub struct TrickleDataplane {
    inner: GroundTruthDataplane,
    config: TrickleConfig,
    bucket: TokenBucket,
    /// Bytes that bypassed shaping in the current quantum.
    bypassed_in_quantum: DataSize,
    quantum_start: SimTime,
    delayed: VecDeque<(SimTime, Packet)>,
}

impl TrickleDataplane {
    /// Builds the Trickle model over `topology` with the given configuration.
    pub fn new(topology: &Topology, config: TrickleConfig) -> Self {
        let inner = GroundTruthDataplane::new(topology);
        TrickleDataplane {
            inner,
            config,
            bucket: TokenBucket::new(config.target, DataSize::from_bytes(8 * 1460)),
            bypassed_in_quantum: DataSize::ZERO,
            quantum_start: SimTime::ZERO,
            delayed: VecDeque::new(),
        }
    }

    fn roll_quantum(&mut self, now: SimTime) {
        while now.saturating_since(self.quantum_start) >= self.config.quantum {
            self.quantum_start += self.config.quantum;
            self.bypassed_in_quantum = DataSize::ZERO;
        }
    }
}

impl Addressable for TrickleDataplane {
    fn collapsed(&self) -> &CollapsedTopology {
        self.inner.collapsed()
    }
}

impl Dataplane for TrickleDataplane {
    fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome {
        self.roll_quantum(now);
        // Control packets (ACKs) are not shaped by trickle's send hook in
        // any meaningful way for this experiment.
        if packet.is_control() {
            return self.inner.send(now, packet);
        }
        if self.bucket.try_consume(now, packet.size) {
            return self.inner.send(now, packet);
        }
        // The shaper would delay this write — but anything that fits the
        // kernel socket buffer in this quantum slips through unshaped.
        if self.bypassed_in_quantum + packet.size <= self.config.socket_buffer {
            self.bypassed_in_quantum += packet.size;
            return self.inner.send(now, packet);
        }
        // Delay the write until tokens are available.
        let wait = self.bucket.time_until_available(now, packet.size);
        if wait == SimDuration::MAX {
            return SendOutcome::Backpressure;
        }
        self.bucket.consume_debt(now, packet.size);
        self.delayed.push_back((now + wait, packet));
        SendOutcome::Sent
    }

    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        let delayed = self.delayed.iter().map(|(t, _)| *t).min();
        let inner = self.inner.next_wakeup(now);
        match (delayed, inner) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn deliver(&mut self, now: SimTime) -> Vec<Packet> {
        let mut still = VecDeque::new();
        while let Some((t, pkt)) = self.delayed.pop_front() {
            if t <= now {
                let _ = self.inner.send(now, pkt);
            } else {
                still.push_back((t, pkt));
            }
        }
        self.delayed = still;
        self.inner.deliver(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_core::runtime::Runtime;
    use kollaps_topology::generators;
    use kollaps_transport::tcp::{TcpSenderConfig, TransferSize};

    fn run_trickle(target: Bandwidth, config: TrickleConfig) -> f64 {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_gbps(10),
            SimDuration::from_millis(2),
            SimDuration::ZERO,
        );
        let _ = target;
        let dp = TrickleDataplane::new(&topo, config);
        let a = dp.address_of_index(0);
        let b = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let flow = rt.add_tcp_flow(
            a,
            b,
            TransferSize::Unbounded,
            TcpSenderConfig::default(),
            SimTime::ZERO,
        );
        let secs = 20u64;
        let _ = rt.run_until(SimTime::from_secs(secs));
        DataSize::from_bytes(rt.tcp_received_bytes(flow))
            .rate_over(SimDuration::from_secs(secs))
            .as_kbps()
    }

    #[test]
    fn default_buffers_overshoot_small_rates() {
        let target = Bandwidth::from_kbps(128);
        let observed = run_trickle(target, TrickleConfig::default_buffers(target));
        // Table 2: 262 Kb/s observed for a 128 Kb/s target (+104 %). The
        // model reproduces a large overshoot (at least +50 %).
        assert!(observed > 190.0, "observed {observed} Kb/s");
    }

    #[test]
    fn tuned_buffers_are_accurate() {
        let target = Bandwidth::from_kbps(512);
        let observed = run_trickle(target, TrickleConfig::tuned(target));
        let err = (observed - 512.0) / 512.0;
        assert!(err.abs() < 0.15, "observed {observed} Kb/s ({err:+.2})");
    }

    #[test]
    fn overshoot_shrinks_at_higher_rates() {
        let low = Bandwidth::from_kbps(128);
        let high = Bandwidth::from_mbps(128);
        let low_obs = run_trickle(low, TrickleConfig::default_buffers(low));
        let high_obs = run_trickle(high, TrickleConfig::default_buffers(high)) / 1_000.0; // Mb/s
        let low_err = (low_obs - 128.0) / 128.0;
        let high_err = (high_obs - 128.0) / 128.0;
        assert!(low_err > high_err, "low {low_err:+.2} high {high_err:+.2}");
    }
}
