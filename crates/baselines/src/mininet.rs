//! Mininet-like full-state emulator model.
//!
//! Mininet emulates every switch as a software process on a single host.
//! For the accuracy comparison this matters in three ways (paper §2, §5):
//!
//! * bandwidth limits above 1 Gb/s cannot be configured;
//! * every packet pays a software-forwarding cost at every emulated switch;
//! * that cost grows when many *new* connections arrive per second, because
//!   per-connection state is maintained in the emulated switches — this is
//!   the effect behind Mininet falling behind in the connection-per-request
//!   workload of Figure 6.

use std::collections::HashMap;

use kollaps_netmodel::packet::{FlowId, Packet};
use kollaps_sim::prelude::*;

use kollaps_core::collapse::{Addressable, CollapsedTopology};
use kollaps_core::runtime::{Dataplane, SendOutcome};
use kollaps_topology::model::Topology;

use crate::ground_truth::GroundTruthDataplane;

/// Behavioural parameters of the Mininet model.
#[derive(Debug, Clone, Copy)]
pub struct MininetConfig {
    /// Fixed software-forwarding cost per switch hop.
    pub base_forwarding_cost: SimDuration,
    /// Additional per-hop cost per concurrently tracked connection.
    pub per_connection_cost: SimDuration,
    /// Largest bandwidth Mininet can shape (1 Gb/s in the real tool).
    pub max_shaped_bandwidth: Bandwidth,
    /// How long per-connection switch state is retained.
    pub connection_tracking_window: SimDuration,
}

impl Default for MininetConfig {
    fn default() -> Self {
        MininetConfig {
            base_forwarding_cost: SimDuration::from_micros(30),
            per_connection_cost: SimDuration::from_micros(8),
            max_shaped_bandwidth: Bandwidth::from_gbps(1),
            connection_tracking_window: SimDuration::from_secs(1),
        }
    }
}

/// Mininet-like dataplane: the ground-truth hop-by-hop simulation plus the
/// software-switch overhead model.
pub struct MininetDataplane {
    inner: GroundTruthDataplane,
    config: MininetConfig,
    /// First-seen time per flow, to detect new connections.
    seen_flows: HashMap<FlowId, SimTime>,
    /// Supported: `false` when the topology requests a shaping rate the tool
    /// cannot configure (Table 2's "N/A" rows above 1 Gb/s).
    supported: bool,
}

impl MininetDataplane {
    /// Builds the Mininet model for `topology`.
    pub fn new(topology: &Topology) -> Self {
        MininetDataplane::with_config(topology, MininetConfig::default())
    }

    /// Builds the Mininet model with explicit parameters.
    pub fn with_config(topology: &Topology, config: MininetConfig) -> Self {
        let supported = topology
            .links()
            .iter()
            .all(|l| l.properties.bandwidth <= config.max_shaped_bandwidth);
        let inner = GroundTruthDataplane::new(topology);
        MininetDataplane {
            inner,
            config,
            seen_flows: HashMap::new(),
            supported,
        }
    }

    /// `false` when the requested topology cannot be emulated (link rate
    /// above the shaping maximum) — Table 2 reports these rows as `N/A`.
    pub fn is_supported(&self) -> bool {
        self.supported
    }

    fn refresh_overhead(&mut self, now: SimTime) {
        // Forget connections older than the tracking window.
        let window = self.config.connection_tracking_window;
        self.seen_flows
            .retain(|_, &mut t| now.saturating_since(t) <= window);
        let tracked = self.seen_flows.len() as u64;
        let overhead = self.config.base_forwarding_cost
            + SimDuration::from_nanos(self.config.per_connection_cost.as_nanos() * tracked);
        self.inner.set_per_hop_overhead(overhead);
    }
}

impl Addressable for MininetDataplane {
    fn collapsed(&self) -> &CollapsedTopology {
        self.inner.collapsed()
    }
}

impl Dataplane for MininetDataplane {
    fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome {
        self.seen_flows.entry(packet.flow).or_insert(now);
        self.refresh_overhead(now);
        self.inner.send(now, packet)
    }

    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        self.inner.next_wakeup(now)
    }

    fn deliver(&mut self, now: SimTime) -> Vec<Packet> {
        self.inner.deliver(now)
    }

    fn tick(&mut self, now: SimTime) -> Option<SimTime> {
        self.refresh_overhead(now);
        Some(now + SimDuration::from_millis(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_core::runtime::Runtime;
    use kollaps_topology::generators;

    #[test]
    fn gigabit_cap_marks_topologies_unsupported() {
        let (ok_topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(500),
            SimDuration::from_millis(1),
            SimDuration::ZERO,
        );
        assert!(MininetDataplane::new(&ok_topo).is_supported());
        let (big_topo, _, _) = generators::point_to_point(
            Bandwidth::from_gbps(2),
            SimDuration::from_millis(1),
            SimDuration::ZERO,
        );
        assert!(!MininetDataplane::new(&big_topo).is_supported());
    }

    #[test]
    fn ping_rtt_includes_switch_overhead() {
        let (topo, clients, servers) = generators::figure8();
        let dp = MininetDataplane::new(&topo);
        let c1 = dp.collapsed().address_of(clients[0]).unwrap();
        let s1 = dp.collapsed().address_of(servers[0]).unwrap();
        let mut rt = Runtime::new(dp);
        let probe = rt.add_ping(c1, s1, SimDuration::from_millis(50), 20, SimTime::ZERO);
        let _ = rt.run_until(SimTime::from_secs(5));
        let mean = rt.ping_rtts(probe).unwrap().mean();
        // Slightly above the 70 ms topology RTT, but well within 1 ms.
        assert!(mean > 70.0 && mean < 71.5, "rtt {mean}");
    }

    #[test]
    fn many_new_connections_inflate_forwarding_cost() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(1),
            SimDuration::ZERO,
        );
        let mut dp = MininetDataplane::new(&topo);
        let a = dp.address_of_index(0);
        let b = dp.address_of_index(1);
        // Open 200 "connections" (distinct flows) within one tracking window.
        for i in 0..200u64 {
            let pkt = Packet::new(
                i,
                FlowId(i),
                a,
                b,
                kollaps_netmodel::packet::MTU,
                kollaps_netmodel::packet::PacketKind::TcpData { seq: 0 },
                SimTime::from_millis(i),
            );
            let _ = dp.send(SimTime::from_millis(i), pkt);
        }
        assert_eq!(dp.seen_flows.len(), 200);
        // After the tracking window the state is forgotten.
        let _ = dp.tick(SimTime::from_secs(10));
        assert!(dp.seen_flows.is_empty());
    }
}
