//! Maxinet-like distributed emulator model.
//!
//! Maxinet distributes Mininet workers over a cluster and relies on an
//! external OpenFlow controller: the first packet of every flow triggers a
//! controller round trip before a forwarding rule is installed, and links
//! that cross workers are tunnelled over the physical network. Table 4 of
//! the paper attributes Maxinet's large RTT errors to exactly these two
//! effects, so they are what this model adds on top of the hop-by-hop
//! simulation.

use std::collections::{HashMap, HashSet};

use kollaps_netmodel::packet::{FlowId, Packet};
use kollaps_sim::prelude::*;

use kollaps_core::collapse::{Addressable, CollapsedTopology};
use kollaps_core::runtime::{Dataplane, SendOutcome};
use kollaps_topology::model::Topology;

use crate::ground_truth::GroundTruthDataplane;

/// Behavioural parameters of the Maxinet model.
#[derive(Debug, Clone, Copy)]
pub struct MaxinetConfig {
    /// Round trip to the external controller paid by the first packet of
    /// each flow at each switch (POX forwarding modules in the paper).
    pub controller_rtt: SimDuration,
    /// Extra delay for tunnelled (cross-worker) hops.
    pub tunnel_overhead: SimDuration,
    /// Number of worker machines the topology is spread over.
    pub workers: usize,
}

impl Default for MaxinetConfig {
    fn default() -> Self {
        MaxinetConfig {
            controller_rtt: SimDuration::from_millis(4),
            tunnel_overhead: SimDuration::from_micros(120),
            workers: 4,
        }
    }
}

/// Maxinet-like dataplane.
pub struct MaxinetDataplane {
    inner: GroundTruthDataplane,
    config: MaxinetConfig,
    /// Flows that already have rules installed.
    installed: HashSet<FlowId>,
    /// Packets held back while "the controller" installs rules.
    held: Vec<(SimTime, Packet)>,
    /// First-packet latency penalties observed (diagnostics).
    penalties: u64,
    /// Reusable map for per-flow hold release times.
    release_at: HashMap<FlowId, SimTime>,
}

impl MaxinetDataplane {
    /// Builds the Maxinet model for `topology`.
    pub fn new(topology: &Topology) -> Self {
        MaxinetDataplane::with_config(topology, MaxinetConfig::default())
    }

    /// Builds the Maxinet model with explicit parameters.
    pub fn with_config(topology: &Topology, config: MaxinetConfig) -> Self {
        let mut inner = GroundTruthDataplane::new(topology);
        // Cross-worker tunnelling shows up as a constant per-hop overhead
        // because workers host adjacent switches with probability
        // (workers-1)/workers.
        let expected_tunnel = config
            .tunnel_overhead
            .mul_f64((config.workers.max(1) as f64 - 1.0) / config.workers.max(1) as f64);
        inner.set_per_hop_overhead(expected_tunnel);
        MaxinetDataplane {
            inner,
            config,
            installed: HashSet::new(),
            held: Vec::new(),
            penalties: 0,
            release_at: HashMap::new(),
        }
    }

    /// Number of first-packet controller penalties paid so far.
    pub fn controller_penalties(&self) -> u64 {
        self.penalties
    }
}

impl Addressable for MaxinetDataplane {
    fn collapsed(&self) -> &CollapsedTopology {
        self.inner.collapsed()
    }
}

impl Dataplane for MaxinetDataplane {
    fn send(&mut self, now: SimTime, packet: Packet) -> SendOutcome {
        if self.installed.contains(&packet.flow) {
            return self.inner.send(now, packet);
        }
        // First packet of a flow: hold it for a controller round trip, then
        // consider the rule installed for the rest of the flow.
        let release = *self
            .release_at
            .entry(packet.flow)
            .or_insert(now + self.config.controller_rtt);
        self.penalties += 1;
        self.held.push((release, packet));
        SendOutcome::Sent
    }

    fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        let held = self.held.iter().map(|(t, _)| *t).min();
        let inner = self.inner.next_wakeup(now);
        match (held, inner) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn deliver(&mut self, now: SimTime) -> Vec<Packet> {
        // Release held packets whose controller round trip completed.
        let (ready, still): (Vec<_>, Vec<_>) = self.held.drain(..).partition(|(t, _)| *t <= now);
        self.held = still;
        for (_, pkt) in ready {
            self.installed.insert(pkt.flow);
            self.release_at.remove(&pkt.flow);
            let _ = self.inner.send(now, pkt);
        }
        self.inner.deliver(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_core::runtime::Runtime;
    use kollaps_topology::generators;

    #[test]
    fn first_packet_pays_the_controller_round_trip() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let dp = MaxinetDataplane::new(&topo);
        let a = dp.address_of_index(0);
        let b = dp.address_of_index(1);
        let mut rt = Runtime::new(dp);
        let probe = rt.add_ping(a, b, SimDuration::from_millis(100), 20, SimTime::ZERO);
        let _ = rt.run_until(SimTime::from_secs(5));
        let rtts = rt.ping_rtts(probe).unwrap();
        // All echo requests/replies belong to the same flow, so only the
        // first sample pays the 2×4 ms controller penalty.
        assert!(
            rtts.max() > rtts.min() + 3.0,
            "max {} min {}",
            rtts.max(),
            rtts.min()
        );
        assert!(rtts.min() >= 10.0);
        assert!(rt.dataplane.controller_penalties() >= 1);
    }

    #[test]
    fn rtt_error_exceeds_kollaps_like_accuracy() {
        // Even in steady state the tunnelling overhead keeps Maxinet's RTT
        // above the theoretical topology latency.
        let (topo, clients, servers) = generators::figure8();
        let dp = MaxinetDataplane::new(&topo);
        let c = dp.collapsed().address_of(clients[0]).unwrap();
        let s = dp.collapsed().address_of(servers[0]).unwrap();
        let mut rt = Runtime::new(dp);
        let probe = rt.add_ping(c, s, SimDuration::from_millis(100), 50, SimTime::ZERO);
        let _ = rt.run_until(SimTime::from_secs(10));
        let median = rt.ping_rtts(probe).unwrap().median();
        assert!(median > 70.0, "median {median}");
    }
}
