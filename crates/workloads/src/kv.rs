//! Key-value store and state-machine-replication workload models.
//!
//! These are application-level models driven by the *collapsed* end-to-end
//! network properties (RTT, jitter), mirroring how the real applications in
//! the paper only experience the emergent network behaviour:
//!
//! * [`memcached_throughput`] — closed-loop memtier clients against
//!   memcached servers (Figure 4): each connection issues one request at a
//!   time, so per-connection rate is `1 / (RTT + server time)` and the
//!   aggregate is capped by the servers' capacity.
//! * [`cassandra_curve`] — geo-replicated Cassandra under YCSB
//!   (Figures 10/11): read latency is governed by the local quorum, update
//!   latency by the farthest replica needed for the write quorum, and both
//!   climb as the offered load approaches the cluster's service capacity
//!   (M/M/c-style queueing).
//! * [`bft_latencies`] — BFT-SMaRt and its vote-weight-optimised variant
//!   Wheat across five regions (Figure 9): client latency is the RTT to the
//!   leader plus the consensus rounds, where the quorum is formed by the
//!   fastest replicas (Wheat) or a majority (BFT-SMaRt).

use kollaps_sim::rng::SimRng;
use kollaps_sim::stats::Summary;

/// A closed-loop memcached/memtier deployment.
///
/// `client_rtts_ms` holds, for every client, the RTT to the server it
/// queries; `connections` is the number of concurrent connections per
/// client (memtier `-c`).
pub fn memcached_throughput(
    client_rtts_ms: &[f64],
    connections: usize,
    server_op_time_us: f64,
    server_capacity_ops: f64,
) -> f64 {
    let offered: f64 = client_rtts_ms
        .iter()
        .map(|rtt| {
            let op_latency_s = rtt / 1_000.0 + server_op_time_us / 1e6;
            connections as f64 / op_latency_s
        })
        .sum();
    offered.min(server_capacity_ops)
}

/// Static description of the geo-replicated Cassandra deployment of
/// Figures 10 and 11.
#[derive(Debug, Clone, Copy)]
pub struct CassandraConfig {
    /// RTT between the YCSB clients and the local (Frankfurt) replicas, ms.
    pub local_rtt_ms: f64,
    /// RTT between the local replicas and the remote region, ms.
    pub remote_rtt_ms: f64,
    /// Jitter applied to both, ms (standard deviation).
    pub jitter_ms: f64,
    /// Per-operation service time at a replica, ms.
    pub service_time_ms: f64,
    /// Aggregate cluster capacity in operations per second.
    pub capacity_ops: f64,
    /// Fraction of operations that are reads (YCSB 50/50 in the paper).
    pub read_fraction: f64,
}

impl CassandraConfig {
    /// The Frankfurt + Sydney deployment of Figure 10.
    pub fn frankfurt_sydney() -> Self {
        CassandraConfig {
            local_rtt_ms: 1.0,
            remote_rtt_ms: 290.0,
            jitter_ms: 2.0,
            service_time_ms: 2.5,
            capacity_ops: 5_200.0,
            read_fraction: 0.5,
        }
    }

    /// The what-if deployment of Figure 11: the remote replicas move to a
    /// region at half the latency (Sydney → Seoul).
    pub fn halved_latency(self) -> Self {
        CassandraConfig {
            remote_rtt_ms: self.remote_rtt_ms / 2.0,
            ..self
        }
    }
}

/// One point of the Cassandra throughput/latency curve.
#[derive(Debug, Clone, Copy)]
pub struct CassandraPoint {
    /// Offered load (ops/s).
    pub target_ops: f64,
    /// Achieved throughput (ops/s).
    pub achieved_ops: f64,
    /// Mean operation latency (ms), across reads and updates.
    pub latency_ms: f64,
    /// Mean read latency (ms).
    pub read_latency_ms: f64,
    /// Mean update latency (ms).
    pub update_latency_ms: f64,
}

/// Computes the throughput/latency curve of the geo-replicated Cassandra
/// deployment for the given offered loads.
pub fn cassandra_curve(
    config: &CassandraConfig,
    targets: &[f64],
    seed: u64,
) -> Vec<CassandraPoint> {
    let mut rng = SimRng::new(seed);
    targets
        .iter()
        .map(|&target| {
            let utilisation = (target / config.capacity_ops).min(0.995);
            // M/M/1-style queueing inflation at the replicas.
            let queueing = config.service_time_ms * utilisation / (1.0 - utilisation);
            let mut read = Summary::new();
            let mut update = Summary::new();
            for _ in 0..500 {
                let jitter = config.jitter_ms * rng.standard_normal();
                // Reads are answered by the local replicas (consistency ONE).
                read.record(
                    (config.local_rtt_ms + config.service_time_ms + queueing + jitter).max(0.1),
                );
                // Updates need a quorum (RF=2 per region): the remote
                // region's reply is always on the critical path.
                update.record(
                    (config.remote_rtt_ms + config.service_time_ms + queueing + jitter).max(0.1),
                );
            }
            let latency_ms =
                config.read_fraction * read.mean() + (1.0 - config.read_fraction) * update.mean();
            let achieved = target.min(config.capacity_ops * 0.98);
            CassandraPoint {
                target_ops: target,
                achieved_ops: achieved,
                latency_ms,
                read_latency_ms: read.mean(),
                update_latency_ms: update.mean(),
            }
        })
        .collect()
}

/// Which state-machine-replication protocol variant to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BftSystem {
    /// BFT-SMaRt: the quorum needs a majority of all replicas.
    BftSmart,
    /// Wheat: weighted votes let the fastest replicas form the quorum.
    Wheat,
}

/// Computes per-client latency distributions (50th and 90th percentile, in
/// milliseconds) for a geo-replicated counter served by BFT-SMaRt or Wheat.
///
/// `rtt_ms[i][j]` is the RTT between regions `i` and `j`; one replica and
/// one client sit in every region; the leader is in `leader` (Virginia in
/// the original experiment).
pub fn bft_latencies(
    rtt_ms: &[Vec<f64>],
    jitter_ms: f64,
    leader: usize,
    system: BftSystem,
    seed: u64,
) -> Vec<(f64, f64)> {
    let n = rtt_ms.len();
    let mut rng = SimRng::new(seed);
    let quorum = match system {
        // With n = 5 replicas tolerating f = 1 fault, agreement needs
        // 2f+1 = 3 votes; the leader's own vote is free, so it waits for the
        // 2nd fastest remote reply.
        BftSystem::BftSmart => 3usize,
        // Wheat assigns extra vote weight to the fastest replicas, so the
        // quorum completes with the 2 fastest replies.
        BftSystem::Wheat => 2usize,
    };
    (0..n)
        .map(|client| {
            let mut samples = Summary::new();
            for _ in 0..2_000 {
                let j = |rng: &mut SimRng| jitter_ms * rng.standard_normal();
                // Client → leader.
                let to_leader = rtt_ms[client][leader] + j(&mut rng);
                // Leader runs the agreement: it needs `quorum` replica
                // round trips (counting its own vote as instantaneous);
                // consensus takes two communication steps (PROPOSE+ACCEPT).
                let mut replica_rtts: Vec<f64> = (0..n)
                    .filter(|&r| r != leader)
                    .map(|r| rtt_ms[leader][r] + j(&mut rng))
                    .collect();
                replica_rtts.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let agreement =
                    2.0 * replica_rtts[quorum.saturating_sub(2).min(replica_rtts.len() - 1)];
                samples.record((to_leader + agreement).max(0.1));
            }
            (samples.percentile(50.0), samples.percentile(90.0))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheat_matrix() -> Vec<Vec<f64>> {
        // Oregon, Ireland, Sydney, SaoPaulo, Virginia (RTT = 2 × one-way).
        let one_way = [
            [0.3, 62.0, 70.0, 91.0, 36.0],
            [62.0, 0.3, 140.0, 92.0, 38.0],
            [70.0, 140.0, 0.3, 160.0, 102.0],
            [91.0, 92.0, 160.0, 0.3, 60.0],
            [36.0, 38.0, 102.0, 60.0, 0.3],
        ];
        one_way
            .iter()
            .map(|row| row.iter().map(|x| x * 2.0).collect())
            .collect()
    }

    #[test]
    fn memcached_scales_with_connections_until_capacity() {
        let rtts = vec![1.0, 1.0, 40.0, 40.0];
        let one = memcached_throughput(&rtts, 1, 100.0, 1e9);
        let ten = memcached_throughput(&rtts, 10, 100.0, 1e9);
        assert!(ten > one * 9.0);
        // Capacity caps the aggregate.
        let capped = memcached_throughput(&rtts, 10, 100.0, 5_000.0);
        assert_eq!(capped, 5_000.0);
    }

    #[test]
    fn cassandra_curve_has_the_hockey_stick_shape() {
        let cfg = CassandraConfig::frankfurt_sydney();
        let targets: Vec<f64> = (1..=10).map(|i| i as f64 * 500.0).collect();
        let curve = cassandra_curve(&cfg, &targets, 7);
        assert_eq!(curve.len(), 10);
        // Latency grows monotonically-ish and explodes near capacity. The
        // hockey stick is sharpest in the read latency, which is all
        // queueing; the blended mean rises more gently because the 290 ms
        // remote RTT puts a floor under every update.
        assert!(curve[9].read_latency_ms > curve[0].read_latency_ms * 5.0);
        assert!(curve[9].latency_ms > curve[0].latency_ms * 1.3);
        // Updates are dominated by the remote quorum, reads by local RTT.
        assert!(curve[0].update_latency_ms > 250.0);
        assert!(curve[0].read_latency_ms < 50.0);
    }

    #[test]
    fn halved_latency_halves_update_latency() {
        let cfg = CassandraConfig::frankfurt_sydney();
        let half = cfg.halved_latency();
        let base = cassandra_curve(&cfg, &[1_000.0], 1)[0];
        let whatif = cassandra_curve(&half, &[1_000.0], 1)[0];
        let ratio = whatif.update_latency_ms / base.update_latency_ms;
        assert!((0.4..=0.6).contains(&ratio), "ratio {ratio}");
        // Reads barely change.
        assert!((whatif.read_latency_ms - base.read_latency_ms).abs() < 2.0);
    }

    #[test]
    fn wheat_is_never_slower_than_bft_smart() {
        let rtts = wheat_matrix();
        let bft = bft_latencies(&rtts, 1.5, 4, BftSystem::BftSmart, 3);
        let wheat = bft_latencies(&rtts, 1.5, 4, BftSystem::Wheat, 3);
        assert_eq!(bft.len(), 5);
        for (i, ((b50, _), (w50, _))) in bft.iter().zip(&wheat).enumerate() {
            assert!(w50 <= &(b50 * 1.02), "region {i}: wheat {w50} vs bft {b50}");
        }
    }

    #[test]
    fn remote_clients_pay_their_distance_to_the_leader() {
        let rtts = wheat_matrix();
        let bft = bft_latencies(&rtts, 1.0, 4, BftSystem::BftSmart, 9);
        // Sydney (index 2) is farthest from the Virginia leader, Virginia
        // itself is closest.
        assert!(bft[2].0 > bft[4].0);
    }
}
