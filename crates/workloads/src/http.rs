//! HTTP-like request workloads: curl (connection per request) and wrk2
//! (persistent connections, continuous requests).

use kollaps_core::runtime::{Dataplane, Runtime, RuntimeEvent};
use kollaps_netmodel::packet::{Addr, FlowId};
use kollaps_sim::prelude::*;
use kollaps_transport::tcp::{TcpSenderConfig, TransferSize};

use std::collections::HashMap;

/// Result of an HTTP-style workload run.
#[derive(Debug, Clone, Default)]
pub struct HttpReport {
    /// Completed requests.
    pub requests: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
    /// Average server throughput over the run (Mb/s).
    pub throughput_mbps: f64,
    /// Per-request completion latencies in milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Per-second delivered throughput (Mb/s), aggregated over all clients.
    pub per_second_mbps: Vec<f64>,
}

fn finalize(report: &mut HttpReport, duration: SimDuration) {
    report.throughput_mbps = DataSize::from_bytes(report.bytes)
        .rate_over(duration)
        .as_mbps();
}

/// Runs curl-like clients: every client repeatedly downloads `request_size`
/// bytes from the server, opening a **new connection** for each request
/// (paper §5.3, Figure 6). Connection setup costs one handshake round trip,
/// which is modelled by restarting the transfer in slow start.
pub fn run_curl_clients<D: Dataplane>(
    rt: &mut Runtime<D>,
    pairs: &[(Addr, Addr)],
    request_size: DataSize,
    duration: SimDuration,
) -> HttpReport {
    let start = rt.now();
    let end = start + duration;
    let mut report = HttpReport::default();
    let mut owner: HashMap<FlowId, usize> = HashMap::new();
    let mut started_at: HashMap<FlowId, SimTime> = HashMap::new();
    // One outstanding request per client at a time.
    for (i, &(server, client)) in pairs.iter().enumerate() {
        let flow = rt.add_tcp_flow(
            server,
            client,
            TransferSize::Bytes(request_size.as_bytes()),
            TcpSenderConfig::default(),
            start,
        );
        owner.insert(flow, i);
        started_at.insert(flow, start);
    }
    let step = SimDuration::from_millis(100);
    let mut now = start;
    let mut per_second: HashMap<u64, u64> = HashMap::new();
    while now < end {
        now = (now + step).min(end);
        for ev in rt.run_until(now) {
            if let RuntimeEvent::TcpCompleted { flow, at } = ev {
                let Some(&client_idx) = owner.get(&flow) else {
                    continue;
                };
                report.requests += 1;
                report.bytes += request_size.as_bytes();
                *per_second.entry(at.as_secs_f64() as u64).or_default() += request_size.as_bytes();
                if let Some(t0) = started_at.get(&flow) {
                    report.latencies_ms.push((at - *t0).as_millis_f64());
                }
                rt.stop_tcp_flow(flow);
                if at < end {
                    // New connection for the next request.
                    let (server, client) = pairs[client_idx];
                    let next = rt.add_tcp_flow(
                        server,
                        client,
                        TransferSize::Bytes(request_size.as_bytes()),
                        TcpSenderConfig::default(),
                        at,
                    );
                    owner.insert(next, client_idx);
                    started_at.insert(next, at);
                }
            }
        }
    }
    let max_sec = duration.as_secs_f64() as u64;
    report.per_second_mbps = (0..max_sec)
        .map(|s| {
            DataSize::from_bytes(per_second.get(&s).copied().unwrap_or(0))
                .rate_over(SimDuration::from_secs(1))
                .as_mbps()
        })
        .collect();
    finalize(&mut report, duration);
    report
}

/// Runs a wrk2-like workload: `connections` persistent connections to the
/// server, each with a continuous stream of `request_size` responses (the
/// default wrk2 configuration keeps 100 connections busy).
pub fn run_wrk2<D: Dataplane>(
    rt: &mut Runtime<D>,
    server: Addr,
    client: Addr,
    connections: usize,
    request_size: DataSize,
    duration: SimDuration,
) -> HttpReport {
    let start = rt.now();
    let end = start + duration;
    let mut report = HttpReport::default();
    let mut flows = Vec::new();
    for _ in 0..connections {
        let flow = rt.add_tcp_flow(
            server,
            client,
            TransferSize::Bytes(request_size.as_bytes()),
            TcpSenderConfig::default(),
            start,
        );
        flows.push(flow);
    }
    let step = SimDuration::from_millis(100);
    let mut now = start;
    let mut per_second: HashMap<u64, u64> = HashMap::new();
    while now < end {
        now = (now + step).min(end);
        for ev in rt.run_until(now) {
            if let RuntimeEvent::TcpCompleted { flow, at } = ev {
                report.requests += 1;
                report.bytes += request_size.as_bytes();
                *per_second.entry(at.as_secs_f64() as u64).or_default() += request_size.as_bytes();
                if at < end {
                    // Keep the connection busy with the next response.
                    rt.push_tcp_bytes(flow, request_size.as_bytes());
                }
            }
        }
    }
    let max_sec = duration.as_secs_f64() as u64;
    report.per_second_mbps = (0..max_sec)
        .map(|s| {
            DataSize::from_bytes(per_second.get(&s).copied().unwrap_or(0))
                .rate_over(SimDuration::from_secs(1))
                .as_mbps()
        })
        .collect();
    finalize(&mut report, duration);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_core::collapse::Addressable;
    use kollaps_core::emulation::KollapsDataplane;
    use kollaps_topology::generators;

    fn p2p(mbps: u64) -> (KollapsDataplane, Addr, Addr) {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(mbps),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let a = dp.address_of_index(0);
        let b = dp.address_of_index(1);
        (dp, a, b)
    }

    #[test]
    fn curl_clients_complete_requests() {
        let (dp, server, client) = p2p(100);
        let mut rt = Runtime::new(dp);
        let report = run_curl_clients(
            &mut rt,
            &[(server, client)],
            DataSize::from_kib(64),
            SimDuration::from_secs(10),
        );
        assert!(report.requests > 20, "only {} requests", report.requests);
        assert!(report.throughput_mbps > 1.0);
        assert_eq!(report.latencies_ms.len(), report.requests as usize);
        assert_eq!(report.per_second_mbps.len(), 10);
    }

    #[test]
    fn more_curl_clients_mean_more_throughput() {
        let (dp, server, client) = p2p(100);
        let mut rt = Runtime::new(dp);
        let one = run_curl_clients(
            &mut rt,
            &[(server, client)],
            DataSize::from_kib(64),
            SimDuration::from_secs(5),
        );
        let (dp, server, client) = p2p(100);
        let mut rt = Runtime::new(dp);
        let four = run_curl_clients(
            &mut rt,
            &[(server, client); 4],
            DataSize::from_kib(64),
            SimDuration::from_secs(5),
        );
        assert!(
            four.throughput_mbps > one.throughput_mbps * 2.0,
            "1 client {:.1} Mb/s, 4 clients {:.1} Mb/s",
            one.throughput_mbps,
            four.throughput_mbps
        );
    }

    #[test]
    fn wrk2_keeps_connections_busy() {
        let (dp, server, client) = p2p(50);
        let mut rt = Runtime::new(dp);
        let report = run_wrk2(
            &mut rt,
            server,
            client,
            10,
            DataSize::from_kib(64),
            SimDuration::from_secs(10),
        );
        assert!(report.requests > 50, "requests {}", report.requests);
        // The aggregate rate approaches the 50 Mb/s link.
        assert!(
            report.throughput_mbps > 25.0,
            "throughput {}",
            report.throughput_mbps
        );
    }
}
