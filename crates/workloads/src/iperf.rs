//! iPerf3-like bulk-transfer workload.

use kollaps_core::runtime::{Dataplane, Runtime};
use kollaps_netmodel::packet::Addr;
use kollaps_sim::prelude::*;
use kollaps_transport::tcp::{CongestionAlgorithm, TcpSenderConfig, TransferSize};

/// Result of an iPerf-style run.
#[derive(Debug, Clone)]
pub struct IperfReport {
    /// Average receiver-side goodput over the measurement window.
    pub average: Bandwidth,
    /// Per-second receiver-side throughput samples (Mb/s).
    pub per_second: Vec<f64>,
    /// Sender retransmissions.
    pub retransmissions: u64,
}

/// Runs a single long-lived TCP flow from `src` to `dst` for `duration` and
/// reports the measured goodput (like `iperf3 -c <dst> -t <duration>`).
pub fn run_iperf_tcp<D: Dataplane>(
    rt: &mut Runtime<D>,
    src: Addr,
    dst: Addr,
    algorithm: CongestionAlgorithm,
    duration: SimDuration,
) -> IperfReport {
    let start = rt.now();
    let flow = rt.add_tcp_flow(
        src,
        dst,
        TransferSize::Unbounded,
        TcpSenderConfig::with_algorithm(algorithm),
        start,
    );
    let end = start + duration;
    let _ = rt.run_until(end);
    let bytes = rt.tcp_received_bytes(flow);
    let per_second = rt
        .throughput_series(flow)
        .map(|s| s.points().iter().map(|p| p.value).collect())
        .unwrap_or_default();
    let retransmissions = rt
        .tcp_sender(flow)
        .map(|s| s.stats().retransmissions)
        .unwrap_or(0);
    rt.stop_tcp_flow(flow);
    IperfReport {
        average: DataSize::from_bytes(bytes).rate_over(duration),
        per_second,
        retransmissions,
    }
}

/// Runs a constant-bit-rate UDP flow (like `iperf3 -u -b <rate>`) and
/// reports the receiver-side delivered rate.
pub fn run_iperf_udp<D: Dataplane>(
    rt: &mut Runtime<D>,
    src: Addr,
    dst: Addr,
    rate: Bandwidth,
    duration: SimDuration,
) -> IperfReport {
    let start = rt.now();
    let end = start + duration;
    let flow = rt.add_udp_flow(src, dst, rate, start, Some(end));
    let _ = rt.run_until(end + SimDuration::from_millis(500));
    let bytes = rt.udp_delivered_bytes(flow);
    let per_second = rt
        .throughput_series(flow)
        .map(|s| s.points().iter().map(|p| p.value).collect())
        .unwrap_or_default();
    IperfReport {
        average: DataSize::from_bytes(bytes).rate_over(duration),
        per_second,
        retransmissions: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_core::collapse::Addressable;
    use kollaps_core::emulation::KollapsDataplane;
    use kollaps_topology::generators;

    #[test]
    fn tcp_iperf_measures_the_shaped_rate() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(20),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let (a, b) = (dp.address_of_index(0), dp.address_of_index(1));
        let mut rt = Runtime::new(dp);
        let report = run_iperf_tcp(
            &mut rt,
            a,
            b,
            CongestionAlgorithm::Cubic,
            SimDuration::from_secs(10),
        );
        let mbps = report.average.as_mbps();
        assert!((16.0..=20.5).contains(&mbps), "measured {mbps}");
        assert!(!report.per_second.is_empty());
    }

    #[test]
    fn udp_iperf_measures_delivery() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(2),
            SimDuration::ZERO,
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let (a, b) = (dp.address_of_index(0), dp.address_of_index(1));
        let mut rt = Runtime::new(dp);
        let report = run_iperf_udp(
            &mut rt,
            a,
            b,
            Bandwidth::from_mbps(10),
            SimDuration::from_secs(5),
        );
        let mbps = report.average.as_mbps();
        assert!((9.0..=10.5).contains(&mbps), "measured {mbps}");
    }
}
