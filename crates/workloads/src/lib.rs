//! # kollaps-workloads
//!
//! The application workloads of the Kollaps evaluation, rebuilt as traffic
//! generators and latency models over the experiment runtime:
//!
//! * [`iperf`] — iPerf3-like long-lived bulk TCP/UDP flows (Table 2,
//!   Figures 5, 7, 8).
//! * [`ping`] — ICMP echo RTT/jitter probes (Table 3, Table 4).
//! * [`http`] — curl-like connection-per-request clients and wrk2-like
//!   constant-connection request loops (Figures 5, 6, 7).
//! * [`kv`] — memcached/memtier closed-loop clients (Figure 4), the
//!   geo-replicated Cassandra/YCSB throughput-latency model (Figures 10
//!   and 11) and the BFT-SMaRt/Wheat state-machine-replication latency
//!   model (Figure 9).
//!
//! The packet-level workloads run against any [`kollaps_core::Dataplane`]
//! (the Kollaps emulation or a baseline); the application-level models
//! (Cassandra, BFT) consume the collapsed end-to-end properties, mirroring
//! how the paper's applications only experience the emergent latency,
//! jitter, loss and bandwidth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod iperf;
pub mod kv;
pub mod ping;

pub use http::{run_curl_clients, run_wrk2, HttpReport};
pub use iperf::{run_iperf_tcp, run_iperf_udp, IperfReport};
pub use kv::{
    bft_latencies, cassandra_curve, memcached_throughput, BftSystem, CassandraConfig,
    CassandraPoint,
};
pub use ping::{run_ping, PingReport};
