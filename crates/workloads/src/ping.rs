//! ICMP echo (ping) probe workload.

use kollaps_core::runtime::{Dataplane, Runtime};
use kollaps_netmodel::packet::Addr;
use kollaps_sim::prelude::*;

/// Result of a ping run.
#[derive(Debug, Clone)]
pub struct PingReport {
    /// Mean RTT in milliseconds.
    pub mean_rtt_ms: f64,
    /// Jitter, reported like `ping` does: the standard deviation of the RTT
    /// samples in milliseconds.
    pub jitter_ms: f64,
    /// Minimum observed RTT.
    pub min_rtt_ms: f64,
    /// Maximum observed RTT.
    pub max_rtt_ms: f64,
    /// Number of replies received.
    pub replies: usize,
    /// All RTT samples (ms).
    pub samples: Vec<f64>,
}

/// Sends `count` echo requests every `interval` and reports RTT statistics
/// (like `ping -c <count> -i <interval>`).
pub fn run_ping<D: Dataplane>(
    rt: &mut Runtime<D>,
    src: Addr,
    dst: Addr,
    count: u64,
    interval: SimDuration,
) -> PingReport {
    let start = rt.now();
    let probe = rt.add_ping(src, dst, interval, count, start);
    // Leave generous time for the last reply.
    let deadline = start + interval * count + SimDuration::from_secs(5);
    let _ = rt.run_until(deadline);
    let stats = rt.ping_rtts(probe).cloned().unwrap_or_default();
    PingReport {
        mean_rtt_ms: stats.mean(),
        jitter_ms: stats.std_dev(),
        min_rtt_ms: stats.min(),
        max_rtt_ms: stats.max(),
        replies: stats.len(),
        samples: stats.samples().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_core::collapse::Addressable;
    use kollaps_core::emulation::KollapsDataplane;
    use kollaps_topology::generators;

    #[test]
    fn ping_reports_rtt_and_jitter() {
        let (topo, _, _) = generators::point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(78),
            SimDuration::from_millis_f64(1.2),
        );
        let dp = KollapsDataplane::with_defaults(topo, 1);
        let (a, b) = (dp.address_of_index(0), dp.address_of_index(1));
        let mut rt = Runtime::new(dp);
        let report = run_ping(&mut rt, a, b, 500, SimDuration::from_millis(20));
        assert_eq!(report.replies, 500);
        // RTT ≈ 2 × 78 ms; jitter composes as sqrt(2) × 1.2 ms ≈ 1.7 ms.
        assert!(
            (report.mean_rtt_ms - 156.0).abs() < 2.0,
            "rtt {}",
            report.mean_rtt_ms
        );
        assert!(
            (report.jitter_ms - 1.7).abs() < 0.5,
            "jitter {}",
            report.jitter_ms
        );
        assert!(report.min_rtt_ms <= report.mean_rtt_ms);
        assert!(report.max_rtt_ms >= report.mean_rtt_ms);
    }
}
