//! Services, bridges, links and the topology container.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

/// Identifier of a node (service instance or bridge) inside a topology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifier of a (unidirectional) link inside a topology.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LinkId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// What kind of element a node is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An application container. Services are the endpoints of collapsed
    /// paths; Kollaps emulates the network *between* services.
    Service {
        /// Service name from the experiment description.
        service: String,
        /// Replica index within the service (0-based).
        replica: u32,
        /// Container image named in the experiment description.
        image: String,
    },
    /// A switch or router. Bridges only exist in the *target* topology;
    /// the collapsed emulation never materializes them.
    Bridge {
        /// Bridge name from the experiment description.
        name: String,
    },
}

impl NodeKind {
    /// `true` if this node is a service (container).
    pub fn is_service(&self) -> bool {
        matches!(self, NodeKind::Service { .. })
    }

    /// `true` if this node is a bridge.
    pub fn is_bridge(&self) -> bool {
        matches!(self, NodeKind::Bridge { .. })
    }

    /// Human-readable name: `service.replica` for services, the bridge name
    /// otherwise.
    pub fn display_name(&self) -> String {
        match self {
            NodeKind::Service {
                service, replica, ..
            } => format!("{service}.{replica}"),
            NodeKind::Bridge { name } => name.clone(),
        }
    }
}

/// A node in the topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier, dense and stable within one topology.
    pub id: NodeId,
    /// Service or bridge.
    pub kind: NodeKind,
}

/// Emulated properties of one (unidirectional) link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProperties {
    /// One-way latency.
    pub latency: SimDuration,
    /// Jitter (standard deviation of the latency distribution).
    pub jitter: SimDuration,
    /// Capacity in the link's direction.
    pub bandwidth: Bandwidth,
    /// Packet loss probability in `[0, 1]`.
    pub loss: f64,
}

impl LinkProperties {
    /// A lossless link with the given latency and bandwidth and no jitter.
    pub fn new(latency: SimDuration, bandwidth: Bandwidth) -> Self {
        LinkProperties {
            latency,
            jitter: SimDuration::ZERO,
            bandwidth,
            loss: 0.0,
        }
    }

    /// Sets the jitter, returning the modified properties.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability, returning the modified properties.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be in [0,1]");
        self.loss = loss;
        self
    }
}

impl Default for LinkProperties {
    fn default() -> Self {
        LinkProperties::new(SimDuration::ZERO, Bandwidth::MAX)
    }
}

/// A unidirectional link between two nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Identifier, stable within one topology. Ids are assigned
    /// monotonically and never reused, even after a link is removed.
    pub id: LinkId,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Emulated properties in the `from → to` direction.
    pub properties: LinkProperties,
    /// Name of the container network this link is attached to.
    pub network: String,
}

/// A complete (static) topology: the input of the Kollaps collapsing step.
///
/// All links are stored unidirectionally; the builder method
/// [`Topology::add_bidirectional_link`] creates the two opposite links with
/// identical properties, as the experiment description language does.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<LinkSpec>,
    names: HashMap<String, NodeId>,
    /// Next link id. Monotonic: ids of removed links are never reused, so a
    /// link added by a dynamic event is distinguishable from every link
    /// that ever existed (the snapshot timeline's delta detection and the
    /// metadata codec's link ids both rely on that).
    next_link: u32,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a service node with the given name, replica index and image.
    ///
    /// The node is registered under the name `"{service}.{replica}"` and —
    /// for replica 0 of single-replica services — also under the bare
    /// service name, matching how the experiment description refers to it.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same composed name already exists.
    pub fn add_service(&mut self, service: &str, replica: u32, image: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let composed = format!("{service}.{replica}");
        assert!(
            !self.names.contains_key(&composed),
            "duplicate service replica {composed}"
        );
        self.nodes.push(Node {
            id,
            kind: NodeKind::Service {
                service: service.to_string(),
                replica,
                image: image.to_string(),
            },
        });
        self.names.insert(composed, id);
        // The bare name resolves to the first replica, which is what the
        // description language means when it says `orig: c1`.
        self.names.entry(service.to_string()).or_insert(id);
        id
    }

    /// Adds a bridge node.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same name already exists.
    pub fn add_bridge(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        assert!(
            !self.names.contains_key(name),
            "duplicate bridge name {name}"
        );
        self.nodes.push(Node {
            id,
            kind: NodeKind::Bridge {
                name: name.to_string(),
            },
        });
        self.names.insert(name.to_string(), id);
        id
    }

    /// Adds a unidirectional link.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        properties: LinkProperties,
        network: &str,
    ) -> LinkId {
        let id = LinkId(self.next_link);
        self.next_link += 1;
        self.links.push(LinkSpec {
            id,
            from,
            to,
            properties,
            network: network.to_string(),
        });
        id
    }

    /// Adds a bidirectional link as two unidirectional links with identical
    /// properties, returning `(forward, backward)` ids.
    pub fn add_bidirectional_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        properties: LinkProperties,
        network: &str,
    ) -> (LinkId, LinkId) {
        let f = self.add_link(a, b, properties, network);
        let r = self.add_link(b, a, properties, network);
        (f, r)
    }

    /// Adds a bidirectional link with asymmetric up/down bandwidths (the
    /// `up:`/`down:` attributes of the description language).
    pub fn add_asymmetric_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        base: LinkProperties,
        up: Bandwidth,
        down: Bandwidth,
        network: &str,
    ) -> (LinkId, LinkId) {
        let mut fwd = base;
        fwd.bandwidth = up;
        let mut back = base;
        back.bandwidth = down;
        let f = self.add_link(a, b, fwd, network);
        let r = self.add_link(b, a, back, network);
        (f, r)
    }

    /// Removes the link with the given id. Link ids of other links are
    /// unaffected (the slot is tombstoned). Returns `true` if it existed.
    pub fn remove_link(&mut self, id: LinkId) -> bool {
        let before = self.links.len();
        self.links.retain(|l| l.id != id);
        before != self.links.len()
    }

    /// Removes every link between `a` and `b` in either direction, returning
    /// how many were removed.
    pub fn remove_links_between(&mut self, a: NodeId, b: NodeId) -> usize {
        let before = self.links.len();
        self.links
            .retain(|l| (l.from != a || l.to != b) && (l.from != b || l.to != a));
        before - self.links.len()
    }

    /// Removes a node and every link touching it. Returns `true` if the node
    /// existed. Node ids of other nodes are unaffected.
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        let Some(pos) = self.nodes.iter().position(|n| n.id == id) else {
            return false;
        };
        let removed = self.nodes.remove(pos);
        self.names.retain(|_, v| *v != id);
        let _ = removed;
        self.links.retain(|l| l.from != id && l.to != id);
        true
    }

    /// Updates the properties of a link in place. Returns `true` on success.
    pub fn set_link_properties(&mut self, id: LinkId, properties: LinkProperties) -> bool {
        if let Some(l) = self.links.iter_mut().find(|l| l.id == id) {
            l.properties = properties;
            true
        } else {
            false
        }
    }

    /// Looks up a node id by name (service name, `service.replica`, or
    /// bridge name).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// The node with the given id, if present.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// The link with the given id, if present.
    pub fn link(&self, id: LinkId) -> Option<&LinkSpec> {
        self.links.iter().find(|l| l.id == id)
    }

    /// Ids of every service node, in id order.
    pub fn service_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_service())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of every bridge node, in id order.
    pub fn bridge_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_bridge())
            .map(|n| n.id)
            .collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (unidirectional) links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All links leaving `from`.
    pub fn links_from(&self, from: NodeId) -> impl Iterator<Item = &LinkSpec> {
        self.links.iter().filter(move |l| l.from == from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props(ms: u64, mbps: u64) -> LinkProperties {
        LinkProperties::new(SimDuration::from_millis(ms), Bandwidth::from_mbps(mbps))
    }

    #[test]
    fn build_figure1_topology() {
        // The paper's Figure 1: c1, sv1, sv2, two bridges s1, s2.
        let mut t = Topology::new();
        let c1 = t.add_service("c1", 0, "iperf");
        let sv1 = t.add_service("sv", 0, "nginx");
        let sv2 = t.add_service("sv", 1, "nginx");
        let s1 = t.add_bridge("s1");
        let s2 = t.add_bridge("s2");
        t.add_bidirectional_link(c1, s1, props(10, 10), "net");
        t.add_bidirectional_link(s1, s2, props(20, 100), "net");
        t.add_bidirectional_link(s2, sv1, props(5, 50), "net");
        t.add_bidirectional_link(s2, sv2, props(5, 50), "net");
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.link_count(), 8);
        assert_eq!(t.service_ids().len(), 3);
        assert_eq!(t.bridge_ids().len(), 2);
        assert_eq!(t.node_by_name("c1"), Some(c1));
        assert_eq!(t.node_by_name("sv"), Some(sv1));
        assert_eq!(t.node_by_name("sv.1"), Some(sv2));
        assert_eq!(t.node_by_name("s2"), Some(s2));
        assert_eq!(t.node_by_name("nope"), None);
    }

    #[test]
    fn asymmetric_links_have_different_bandwidths() {
        let mut t = Topology::new();
        let a = t.add_service("a", 0, "img");
        let b = t.add_bridge("s");
        let (up, down) = t.add_asymmetric_link(
            a,
            b,
            props(10, 0),
            Bandwidth::from_mbps(10),
            Bandwidth::from_mbps(100),
            "net",
        );
        assert_eq!(t.link(up).unwrap().properties.bandwidth.as_mbps(), 10.0);
        assert_eq!(t.link(down).unwrap().properties.bandwidth.as_mbps(), 100.0);
    }

    #[test]
    fn remove_link_and_node() {
        let mut t = Topology::new();
        let a = t.add_service("a", 0, "img");
        let b = t.add_bridge("s1");
        let c = t.add_bridge("s2");
        let (f, _r) = t.add_bidirectional_link(a, b, props(1, 1), "net");
        t.add_bidirectional_link(b, c, props(1, 1), "net");
        assert!(t.remove_link(f));
        assert!(!t.remove_link(f));
        assert_eq!(t.link_count(), 3);
        assert!(t.remove_node(b));
        assert_eq!(t.link_count(), 0);
        assert_eq!(t.node_by_name("s1"), None);
        assert_eq!(t.node_count(), 2);
    }

    #[test]
    fn remove_links_between_pair() {
        let mut t = Topology::new();
        let a = t.add_bridge("a");
        let b = t.add_bridge("b");
        t.add_bidirectional_link(a, b, props(1, 1), "net");
        assert_eq!(t.remove_links_between(a, b), 2);
        assert_eq!(t.link_count(), 0);
    }

    #[test]
    fn set_link_properties_updates() {
        let mut t = Topology::new();
        let a = t.add_bridge("a");
        let b = t.add_bridge("b");
        let l = t.add_link(a, b, props(1, 1), "net");
        assert!(t.set_link_properties(l, props(99, 7)));
        assert_eq!(
            t.link(l).unwrap().properties.latency,
            SimDuration::from_millis(99)
        );
        assert!(!t.set_link_properties(LinkId(55), props(1, 1)));
    }

    #[test]
    #[should_panic]
    fn duplicate_bridge_name_panics() {
        let mut t = Topology::new();
        t.add_bridge("s1");
        t.add_bridge("s1");
    }

    #[test]
    fn link_properties_builders() {
        let p = LinkProperties::new(SimDuration::from_millis(5), Bandwidth::from_mbps(10))
            .with_jitter(SimDuration::from_millis(1))
            .with_loss(0.01);
        assert_eq!(p.jitter, SimDuration::from_millis(1));
        assert_eq!(p.loss, 0.01);
        let d = LinkProperties::default();
        assert_eq!(d.bandwidth, Bandwidth::MAX);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            NodeKind::Service {
                service: "web".into(),
                replica: 2,
                image: "nginx".into()
            }
            .display_name(),
            "web.2"
        );
        assert_eq!(NodeKind::Bridge { name: "s1".into() }.display_name(), "s1");
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", LinkId(4)), "l4");
    }
}
