//! Graph structure and shortest-path computation over a topology.
//!
//! The Emulation Manager parses the topology into a graph and computes the
//! shortest path between every pair of reachable containers (paper §3).
//! Paths are weighted by link latency, matching the intuition that routing
//! in the target network follows the lowest-latency route; ties are broken
//! by hop count and then deterministically by link id so that every
//! Emulation Manager instance computes exactly the same paths.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

use crate::model::{LinkId, LinkSpec, NodeId, Topology};

/// A path through the topology, as an ordered list of link ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Path {
    /// Links traversed, in order from source to destination.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Number of hops (links) in the path.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

/// An adjacency-list view of a [`Topology`] with shortest-path queries.
#[derive(Debug, Clone)]
pub struct TopologyGraph {
    /// Outgoing links per node.
    adjacency: HashMap<NodeId, Vec<LinkSpec>>,
    nodes: Vec<NodeId>,
    services: Vec<NodeId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueueEntry {
    cost_nanos: u64,
    hops: u32,
    node: NodeId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (cost, hops, node id) via reversed comparison.
        other
            .cost_nanos
            .cmp(&self.cost_nanos)
            .then_with(|| other.hops.cmp(&self.hops))
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl TopologyGraph {
    /// Builds the adjacency view of `topology`.
    pub fn new(topology: &Topology) -> Self {
        let mut adjacency: HashMap<NodeId, Vec<LinkSpec>> = HashMap::new();
        for node in topology.nodes() {
            adjacency.entry(node.id).or_default();
        }
        for link in topology.links() {
            adjacency.entry(link.from).or_default().push(link.clone());
        }
        // Deterministic neighbour order.
        for links in adjacency.values_mut() {
            links.sort_by_key(|l| l.id);
        }
        TopologyGraph {
            adjacency,
            nodes: topology.nodes().iter().map(|n| n.id).collect(),
            services: topology.service_ids(),
        }
    }

    /// All node ids.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// All service node ids.
    pub fn services(&self) -> &[NodeId] {
        &self.services
    }

    /// Outgoing links of `node`.
    pub fn links_from(&self, node: NodeId) -> &[LinkSpec] {
        self.adjacency.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Shortest paths (by cumulative latency) from `source` to every
    /// reachable node. Returns a map `destination → path`.
    pub fn shortest_paths_from(&self, source: NodeId) -> HashMap<NodeId, Path> {
        #[derive(Clone, Copy)]
        struct Best {
            cost_nanos: u64,
            hops: u32,
            via: Option<(NodeId, LinkId)>,
        }

        let mut best: HashMap<NodeId, Best> = HashMap::new();
        let mut heap = BinaryHeap::new();
        best.insert(
            source,
            Best {
                cost_nanos: 0,
                hops: 0,
                via: None,
            },
        );
        heap.push(QueueEntry {
            cost_nanos: 0,
            hops: 0,
            node: source,
        });

        while let Some(entry) = heap.pop() {
            let current = best.get(&entry.node).copied();
            if let Some(cur) = current {
                if entry.cost_nanos > cur.cost_nanos
                    || (entry.cost_nanos == cur.cost_nanos && entry.hops > cur.hops)
                {
                    continue;
                }
            }
            for link in self.links_from(entry.node) {
                let next_cost = entry.cost_nanos + link.properties.latency.as_nanos();
                let next_hops = entry.hops + 1;
                let better = match best.get(&link.to) {
                    None => true,
                    Some(b) => {
                        next_cost < b.cost_nanos
                            || (next_cost == b.cost_nanos && next_hops < b.hops)
                    }
                };
                if better {
                    best.insert(
                        link.to,
                        Best {
                            cost_nanos: next_cost,
                            hops: next_hops,
                            via: Some((entry.node, link.id)),
                        },
                    );
                    heap.push(QueueEntry {
                        cost_nanos: next_cost,
                        hops: next_hops,
                        node: link.to,
                    });
                }
            }
        }

        // Reconstruct paths.
        let mut out = HashMap::new();
        for (&dst, info) in &best {
            if dst == source {
                continue;
            }
            let mut links = Vec::new();
            let mut cursor = dst;
            let mut guard = 0;
            while cursor != source {
                let Some(b) = best.get(&cursor) else { break };
                let Some((prev, link)) = b.via else { break };
                links.push(link);
                cursor = prev;
                guard += 1;
                if guard > self.nodes.len() {
                    break;
                }
            }
            if cursor == source {
                links.reverse();
                out.insert(dst, Path { links });
            }
            let _ = info;
        }
        out
    }

    /// Shortest paths between every ordered pair of *services*, the input of
    /// the collapsing step. Unreachable pairs are absent from the map.
    pub fn all_pairs_service_paths(&self) -> HashMap<(NodeId, NodeId), Path> {
        let mut out = HashMap::new();
        for &src in &self.services {
            let paths = self.shortest_paths_from(src);
            for &dst in &self.services {
                if src == dst {
                    continue;
                }
                if let Some(p) = paths.get(&dst) {
                    out.insert((src, dst), p.clone());
                }
            }
        }
        out
    }

    /// `true` if `dst` is reachable from `src`.
    pub fn is_reachable(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        self.shortest_paths_from(src).contains_key(&dst)
    }
}

/// End-to-end properties of a path, composed with the formulas of paper §3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathProperties {
    /// Sum of the link latencies.
    pub latency: SimDuration,
    /// Root of the sum of squared link jitters.
    pub jitter: SimDuration,
    /// `1 - Π(1 - loss_i)`.
    pub loss: f64,
    /// Minimum link bandwidth along the path.
    pub max_bandwidth: Bandwidth,
}

impl PathProperties {
    /// Composes the end-to-end properties of `path` over `topology`.
    ///
    /// Returns `None` if any link of the path no longer exists in the
    /// topology (e.g. after a dynamic removal).
    pub fn compose(topology: &Topology, path: &Path) -> Option<PathProperties> {
        let mut latency = SimDuration::ZERO;
        let mut jitter_sq = 0.0_f64;
        let mut success = 1.0_f64;
        let mut bandwidth = Bandwidth::MAX;
        for link_id in &path.links {
            let link = topology.link(*link_id)?;
            latency += link.properties.latency;
            jitter_sq += link.properties.jitter.as_millis_f64().powi(2);
            success *= 1.0 - link.properties.loss;
            bandwidth = bandwidth.min(link.properties.bandwidth);
        }
        Some(PathProperties {
            latency,
            jitter: SimDuration::from_millis_f64(jitter_sq.sqrt()),
            loss: 1.0 - success,
            max_bandwidth: bandwidth,
        })
    }

    /// Round-trip time of a symmetric path (twice the one-way latency).
    pub fn rtt(&self) -> SimDuration {
        self.latency * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinkProperties;

    fn props(ms: u64, mbps: u64) -> LinkProperties {
        LinkProperties::new(SimDuration::from_millis(ms), Bandwidth::from_mbps(mbps))
    }

    /// Builds the Figure 1 topology from the paper and returns
    /// `(topology, c1, sv1, sv2)`.
    fn figure1() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let c1 = t.add_service("c1", 0, "iperf");
        let sv1 = t.add_service("sv", 0, "nginx");
        let sv2 = t.add_service("sv", 1, "nginx");
        let s1 = t.add_bridge("s1");
        let s2 = t.add_bridge("s2");
        t.add_bidirectional_link(c1, s1, props(10, 10), "net");
        t.add_bidirectional_link(s1, s2, props(20, 100), "net");
        t.add_bidirectional_link(s2, sv1, props(5, 50), "net");
        t.add_bidirectional_link(s2, sv2, props(5, 50), "net");
        (t, c1, sv1, sv2)
    }

    #[test]
    fn figure1_collapses_to_paper_values() {
        let (t, c1, sv1, sv2) = figure1();
        let g = TopologyGraph::new(&t);
        let paths = g.all_pairs_service_paths();

        // c1 -> sv1: 10 + 20 + 5 = 35 ms, min bandwidth 10 Mb/s.
        let p = &paths[&(c1, sv1)];
        assert_eq!(p.hop_count(), 3);
        let pp = PathProperties::compose(&t, p).unwrap();
        assert_eq!(pp.latency, SimDuration::from_millis(35));
        assert_eq!(pp.max_bandwidth, Bandwidth::from_mbps(10));

        // sv1 -> sv2: 5 + 5 = 10 ms, 50 Mb/s — the right side of Figure 1.
        let pp2 = PathProperties::compose(&t, &paths[&(sv1, sv2)]).unwrap();
        assert_eq!(pp2.latency, SimDuration::from_millis(10));
        assert_eq!(pp2.max_bandwidth, Bandwidth::from_mbps(50));

        // All 6 ordered service pairs are reachable.
        assert_eq!(paths.len(), 6);
    }

    #[test]
    fn jitter_composes_as_root_sum_of_squares() {
        let mut t = Topology::new();
        let a = t.add_service("a", 0, "x");
        let b = t.add_bridge("s");
        let c = t.add_service("c", 0, "x");
        let p1 = props(10, 100).with_jitter(SimDuration::from_millis(3));
        let p2 = props(10, 100).with_jitter(SimDuration::from_millis(4));
        t.add_link(a, b, p1, "net");
        t.add_link(b, c, p2, "net");
        let g = TopologyGraph::new(&t);
        let path = &g.all_pairs_service_paths()[&(a, c)];
        let pp = PathProperties::compose(&t, path).unwrap();
        // sqrt(3^2 + 4^2) = 5 ms.
        assert_eq!(pp.jitter, SimDuration::from_millis(5));
    }

    #[test]
    fn loss_composes_multiplicatively() {
        let mut t = Topology::new();
        let a = t.add_service("a", 0, "x");
        let b = t.add_bridge("s");
        let c = t.add_service("c", 0, "x");
        t.add_link(a, b, props(1, 10).with_loss(0.1), "net");
        t.add_link(b, c, props(1, 10).with_loss(0.2), "net");
        let g = TopologyGraph::new(&t);
        let path = &g.all_pairs_service_paths()[&(a, c)];
        let pp = PathProperties::compose(&t, path).unwrap();
        assert!((pp.loss - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn shortest_path_prefers_lower_latency() {
        let mut t = Topology::new();
        let a = t.add_service("a", 0, "x");
        let b = t.add_service("b", 0, "x");
        let s1 = t.add_bridge("s1");
        let s2 = t.add_bridge("s2");
        // Fast route a -> s1 -> b (2 ms), slow direct-ish route a -> s2 -> b (30 ms).
        t.add_link(a, s1, props(1, 10), "net");
        t.add_link(s1, b, props(1, 10), "net");
        t.add_link(a, s2, props(10, 1000), "net");
        t.add_link(s2, b, props(20, 1000), "net");
        let g = TopologyGraph::new(&t);
        let path = &g.all_pairs_service_paths()[&(a, b)];
        let pp = PathProperties::compose(&t, path).unwrap();
        assert_eq!(pp.latency, SimDuration::from_millis(2));
        assert_eq!(pp.max_bandwidth, Bandwidth::from_mbps(10));
    }

    #[test]
    fn equal_latency_ties_break_by_hop_count() {
        let mut t = Topology::new();
        let a = t.add_service("a", 0, "x");
        let b = t.add_service("b", 0, "x");
        let s1 = t.add_bridge("s1");
        let s2 = t.add_bridge("s2");
        // Two-hop route with 10 ms total vs three-hop route with 10 ms total.
        t.add_link(a, s1, props(5, 10), "net");
        t.add_link(s1, b, props(5, 10), "net");
        t.add_link(a, s2, props(4, 10), "net");
        t.add_link(s2, s1, props(3, 10), "net");
        let g = TopologyGraph::new(&t);
        let path = &g.all_pairs_service_paths()[&(a, b)];
        assert_eq!(path.hop_count(), 2);
    }

    #[test]
    fn unreachable_pairs_are_absent() {
        let mut t = Topology::new();
        let a = t.add_service("a", 0, "x");
        let b = t.add_service("b", 0, "x");
        // A link exists only from a to b, so b cannot reach a.
        let s = t.add_bridge("s");
        t.add_link(a, s, props(1, 1), "net");
        t.add_link(s, b, props(1, 1), "net");
        let g = TopologyGraph::new(&t);
        let paths = g.all_pairs_service_paths();
        assert!(paths.contains_key(&(a, b)));
        assert!(!paths.contains_key(&(b, a)));
        assert!(g.is_reachable(a, b));
        assert!(!g.is_reachable(b, a));
        assert!(g.is_reachable(a, a));
    }

    #[test]
    fn compose_fails_for_stale_paths() {
        let (mut t, c1, sv1, _) = figure1();
        let g = TopologyGraph::new(&t);
        let path = g.all_pairs_service_paths()[&(c1, sv1)].clone();
        // Remove one of the links the path uses.
        t.remove_link(path.links[0]);
        assert!(PathProperties::compose(&t, &path).is_none());
    }

    #[test]
    fn rtt_is_twice_one_way() {
        let pp = PathProperties {
            latency: SimDuration::from_millis(17),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            max_bandwidth: Bandwidth::from_mbps(1),
        };
        assert_eq!(pp.rtt(), SimDuration::from_millis(34));
    }
}
