//! Parser for the Kollaps experiment description language.
//!
//! The paper's Listing 1/2 shows a lean YAML-like syntax with four sections:
//! `services`, `bridges`, `links` under `experiment:`, plus a top-level
//! `dynamic:` section. Records inside a section are flat `key: value` lines;
//! a new record starts when the leading key of the section (`name` for
//! services and bridges, `orig` for links) repeats, and a dynamic record is
//! closed by its `time:` line.
//!
//! ```text
//! experiment:
//!   services:
//!     name: c1
//!     image: "iperf"
//!   bridges:
//!     name: s1
//!   links:
//!     orig: c1
//!     dest: s1
//!     latency: 10
//!     up: 10Mbps
//!     down: 10Mbps
//!     jitter: 0.25
//! dynamic:
//!   orig: c1
//!   dest: s1
//!   jitter: 0.5
//!   time: 120
//! ```

use std::collections::HashMap;
use std::fmt;

use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

use crate::events::{DynamicAction, DynamicEvent, EventSchedule, LinkChange};
use crate::model::{LinkProperties, Topology};

/// A parsed experiment: the initial topology plus the dynamic schedule.
#[derive(Debug, Clone, Default)]
pub struct Experiment {
    /// The static topology (services, bridges, links).
    pub topology: Topology,
    /// Scheduled dynamic events.
    pub schedule: EventSchedule,
    /// Declared services: name → (image, replicas).
    pub services: HashMap<String, (String, u32)>,
}

/// Errors produced while parsing an experiment description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line was not of the form `key: value`.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A numeric or unit-carrying value could not be parsed.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The key whose value is bad.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A record is missing a required key.
    MissingKey {
        /// The section in which the record appears.
        section: String,
        /// The missing key.
        key: String,
    },
    /// A link references a node name that was never declared.
    UnknownNode {
        /// The unknown name.
        name: String,
    },
    /// A bandwidth literal could not be parsed. Produced by the standalone
    /// [`parse_bandwidth`] entry point; inside an experiment file the error
    /// is reported as [`ParseError::BadValue`] with the line number instead.
    BadBandwidth {
        /// 1-based column (character offset) of the first offending
        /// character within the input text.
        column: usize,
        /// The full offending text.
        value: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MalformedLine { line, text } => {
                write!(f, "line {line}: expected `key: value`, got `{text}`")
            }
            ParseError::BadValue { line, key, value } => {
                write!(
                    f,
                    "line {line}: cannot parse value `{value}` for key `{key}`"
                )
            }
            ParseError::MissingKey { section, key } => {
                write!(f, "record in section `{section}` is missing key `{key}`")
            }
            ParseError::UnknownNode { name } => {
                write!(f, "link references unknown node `{name}`")
            }
            ParseError::BadBandwidth { column, value } => {
                write!(f, "column {column}: cannot parse bandwidth `{value}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a bandwidth value with its unit, e.g. `10Mbps`, `128 Kbps`,
/// `1Gbps`, `500bps`.
///
/// Errors are reported as [`ParseError::BadBandwidth`] carrying the 1-based
/// column of the offending token within `text` (the number if it does not
/// parse, the unit if it is unknown).
pub fn parse_bandwidth(text: &str) -> Result<Bandwidth, ParseError> {
    let bad = |column: usize| ParseError::BadBandwidth {
        column,
        value: text.to_string(),
    };
    // Column of the first non-whitespace character (where the number should
    // start) and of the first alphabetic character (where the unit starts),
    // both 1-based within the original text.
    let number_column = text
        .chars()
        .position(|c| !c.is_whitespace())
        .map(|i| i + 1)
        .unwrap_or(1);
    let unit_column = text
        .chars()
        .position(|c| c.is_ascii_alphabetic())
        .map(|i| i + 1);
    let cleaned: String = text
        .trim()
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect::<String>()
        .to_ascii_lowercase();
    let split = cleaned
        .find(|c: char| c.is_ascii_alphabetic())
        .unwrap_or(cleaned.len());
    let (num, unit) = cleaned.split_at(split);
    let value: f64 = num.parse().map_err(|_| bad(number_column))?;
    if value < 0.0 {
        return Err(bad(number_column));
    }
    let multiplier: f64 = match unit {
        "" | "bps" | "b/s" => 1.0,
        "kbps" | "kb/s" | "kbit" => 1e3,
        "mbps" | "mb/s" | "mbit" => 1e6,
        "gbps" | "gb/s" | "gbit" => 1e9,
        _ => return Err(bad(unit_column.unwrap_or(number_column))),
    };
    Ok(Bandwidth::from_bps((value * multiplier).round() as u64))
}

/// The sections of the description file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Services,
    Bridges,
    Links,
    Dynamic,
}

/// One flat record: keys in order of appearance with their raw values.
#[derive(Debug, Default, Clone)]
struct Record {
    entries: Vec<(String, String, usize)>,
}

impl Record {
    fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v.as_str())
    }

    fn line_of(&self, key: &str) -> usize {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, _, l)| *l)
            .unwrap_or(0)
    }

    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parses an experiment description in the Listing 1/2 syntax.
pub fn parse_experiment(input: &str) -> Result<Experiment, ParseError> {
    let mut section = Section::None;
    let mut service_records: Vec<Record> = Vec::new();
    let mut bridge_records: Vec<Record> = Vec::new();
    let mut link_records: Vec<Record> = Vec::new();
    let mut dynamic_records: Vec<Record> = Vec::new();
    let mut current = Record::default();

    let flush = |section: Section,
                 current: &mut Record,
                 services: &mut Vec<Record>,
                 bridges: &mut Vec<Record>,
                 links: &mut Vec<Record>,
                 dynamics: &mut Vec<Record>| {
        if current.is_empty() {
            return;
        }
        let rec = std::mem::take(current);
        match section {
            Section::Services => services.push(rec),
            Section::Bridges => bridges.push(rec),
            Section::Links => links.push(rec),
            Section::Dynamic => dynamics.push(rec),
            Section::None => {}
        }
    };

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        // Strip comments and surrounding whitespace.
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Section headers.
        let lowered = trimmed.to_ascii_lowercase();
        let new_section = match lowered.as_str() {
            "experiment:" => Some(Section::None),
            "services:" => Some(Section::Services),
            "bridges:" => Some(Section::Bridges),
            "links:" => Some(Section::Links),
            "dynamic:" => Some(Section::Dynamic),
            _ => None,
        };
        if let Some(s) = new_section {
            flush(
                section,
                &mut current,
                &mut service_records,
                &mut bridge_records,
                &mut link_records,
                &mut dynamic_records,
            );
            section = s;
            continue;
        }
        // Key-value line.
        let Some((key, value)) = trimmed.split_once(':') else {
            return Err(ParseError::MalformedLine {
                line: line_no,
                text: trimmed.to_string(),
            });
        };
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim().trim_matches('"').to_string();
        // Record boundaries.
        let starts_new = match section {
            Section::Services | Section::Bridges => key == "name",
            Section::Links => key == "orig",
            Section::Dynamic | Section::None => false,
        };
        if starts_new && !current.is_empty() {
            flush(
                section,
                &mut current,
                &mut service_records,
                &mut bridge_records,
                &mut link_records,
                &mut dynamic_records,
            );
        }
        current.entries.push((key.clone(), value, line_no));
        // A dynamic record is closed by its `time:` line.
        if section == Section::Dynamic && key == "time" {
            flush(
                section,
                &mut current,
                &mut service_records,
                &mut bridge_records,
                &mut link_records,
                &mut dynamic_records,
            );
        }
    }
    flush(
        section,
        &mut current,
        &mut service_records,
        &mut bridge_records,
        &mut link_records,
        &mut dynamic_records,
    );

    build_experiment(
        service_records,
        bridge_records,
        link_records,
        dynamic_records,
    )
}

fn parse_f64(rec: &Record, key: &str) -> Result<Option<f64>, ParseError> {
    match rec.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse::<f64>()
            .map(Some)
            .map_err(|_| ParseError::BadValue {
                line: rec.line_of(key),
                key: key.to_string(),
                value: v.to_string(),
            }),
    }
}

fn parse_bw_field(rec: &Record, key: &str) -> Result<Option<Bandwidth>, ParseError> {
    match rec.get(key) {
        None => Ok(None),
        Some(v) => parse_bandwidth(v)
            .map(Some)
            .map_err(|_| ParseError::BadValue {
                line: rec.line_of(key),
                key: key.to_string(),
                value: v.to_string(),
            }),
    }
}

fn require<'a>(rec: &'a Record, section: &str, key: &str) -> Result<&'a str, ParseError> {
    rec.get(key).ok_or_else(|| ParseError::MissingKey {
        section: section.to_string(),
        key: key.to_string(),
    })
}

fn build_experiment(
    services: Vec<Record>,
    bridges: Vec<Record>,
    links: Vec<Record>,
    dynamics: Vec<Record>,
) -> Result<Experiment, ParseError> {
    let mut exp = Experiment::default();

    for rec in &services {
        let name = require(rec, "services", "name")?;
        let image = rec.get("image").unwrap_or("").to_string();
        let replicas = parse_f64(rec, "replicas")?.unwrap_or(1.0).max(1.0) as u32;
        exp.services
            .insert(name.to_string(), (image.clone(), replicas));
        for r in 0..replicas {
            exp.topology.add_service(name, r, &image);
        }
    }
    for rec in &bridges {
        let name = require(rec, "bridges", "name")?;
        exp.topology.add_bridge(name);
    }
    for rec in &links {
        let orig = require(rec, "links", "orig")?;
        let dest = require(rec, "links", "dest")?;
        let from = exp
            .topology
            .node_by_name(orig)
            .ok_or_else(|| ParseError::UnknownNode {
                name: orig.to_string(),
            })?;
        let to = exp
            .topology
            .node_by_name(dest)
            .ok_or_else(|| ParseError::UnknownNode {
                name: dest.to_string(),
            })?;
        let latency_ms = parse_f64(rec, "latency")?.unwrap_or(0.0);
        let jitter_ms = parse_f64(rec, "jitter")?.unwrap_or(0.0);
        let loss = parse_f64(rec, "loss")?.unwrap_or(0.0).clamp(0.0, 1.0);
        let up = parse_bw_field(rec, "up")?
            .or(parse_bw_field(rec, "bandwidth")?)
            .unwrap_or(Bandwidth::MAX);
        let down = parse_bw_field(rec, "down")?.unwrap_or(up);
        let network = rec.get("network").unwrap_or("default").to_string();
        let base = LinkProperties {
            latency: SimDuration::from_millis_f64(latency_ms),
            jitter: SimDuration::from_millis_f64(jitter_ms),
            bandwidth: up,
            loss,
        };
        exp.topology
            .add_asymmetric_link(from, to, base, up, down, &network);
    }
    for rec in &dynamics {
        let time_s = parse_f64(rec, "time")?.ok_or(ParseError::MissingKey {
            section: "dynamic".to_string(),
            key: "time".to_string(),
        })?;
        let at = SimDuration::from_secs_f64(time_s);
        let change = LinkChange {
            latency: parse_f64(rec, "latency")?.map(SimDuration::from_millis_f64),
            jitter: parse_f64(rec, "jitter")?.map(SimDuration::from_millis_f64),
            up: parse_bw_field(rec, "up")?,
            down: parse_bw_field(rec, "down")?,
            loss: parse_f64(rec, "loss")?,
        };
        let action = match rec.get("action").map(str::to_ascii_lowercase).as_deref() {
            None => DynamicAction::SetLinkProperties {
                orig: require(rec, "dynamic", "orig")?.to_string(),
                dest: require(rec, "dynamic", "dest")?.to_string(),
                change,
            },
            Some("join") => {
                if let Some(name) = rec.get("name") {
                    DynamicAction::NodeJoin {
                        name: name.to_string(),
                    }
                } else {
                    DynamicAction::LinkJoin {
                        orig: require(rec, "dynamic", "orig")?.to_string(),
                        dest: require(rec, "dynamic", "dest")?.to_string(),
                        change,
                    }
                }
            }
            Some("leave") => {
                if let Some(name) = rec.get("name") {
                    DynamicAction::NodeLeave {
                        name: name.to_string(),
                    }
                } else {
                    DynamicAction::LinkLeave {
                        orig: require(rec, "dynamic", "orig")?.to_string(),
                        dest: require(rec, "dynamic", "dest")?.to_string(),
                    }
                }
            }
            Some(other) => {
                return Err(ParseError::BadValue {
                    line: rec.line_of("action"),
                    key: "action".to_string(),
                    value: other.to_string(),
                })
            }
        };
        exp.schedule.push(DynamicEvent { at, action });
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact experiment of Listing 1 + Listing 2 of the paper (with the
    /// links completed so that every declared node is attached).
    const LISTING: &str = r#"
experiment:
  services:
    name: c1
    image: "iperf"
    name: sv
    image: "nginx"
    replicas: 2
  bridges:
    name: s1
    name: s2
  links:
    orig: c1
    dest: s1
    latency: 10
    up: 10Mbps
    down: 10Mbps
    jitter: 0.25
    orig: s1
    dest: s2
    latency: 20
    up: 100Mbps
    down: 100Mbps
    orig: s2
    dest: sv
    latency: 5
    up: 50Mbps
    down: 50Mbps
    orig: s2
    dest: sv.1
    latency: 5
    up: 50Mbps
    down: 50Mbps
dynamic:
  orig: c1
  dest: s1
  jitter: 0.5
  time: 120
  action: leave
  name: s1
  time: 200
  action: join
  orig: c1
  dest: s2
  up: 100 Mbps
  down: 100 Mbps
  latency: 10
  time: 210
  action: leave
  name: sv
  time: 240
"#;

    #[test]
    fn parses_listing_1_and_2() {
        let exp = parse_experiment(LISTING).expect("parse");
        // Services: c1 (1 replica) + sv (2 replicas) = 3 service nodes.
        assert_eq!(exp.topology.service_ids().len(), 3);
        assert_eq!(exp.topology.bridge_ids().len(), 2);
        assert_eq!(exp.services["sv"], ("nginx".to_string(), 2));
        // 4 bidirectional links = 8 unidirectional.
        assert_eq!(exp.topology.link_count(), 8);
        // Dynamic: 4 events at 120, 200, 210, 240 seconds.
        assert_eq!(exp.schedule.len(), 4);
        let evs = exp.schedule.events();
        assert_eq!(evs[0].at, SimDuration::from_secs(120));
        assert!(matches!(
            evs[0].action,
            DynamicAction::SetLinkProperties { .. }
        ));
        assert!(matches!(&evs[1].action, DynamicAction::NodeLeave { name } if name == "s1"));
        assert!(matches!(evs[2].action, DynamicAction::LinkJoin { .. }));
        assert!(matches!(&evs[3].action, DynamicAction::NodeLeave { name } if name == "sv"));
    }

    #[test]
    fn link_properties_are_parsed_with_units() {
        let exp = parse_experiment(LISTING).unwrap();
        let c1 = exp.topology.node_by_name("c1").unwrap();
        let s1 = exp.topology.node_by_name("s1").unwrap();
        let link = exp
            .topology
            .links()
            .iter()
            .find(|l| l.from == c1 && l.to == s1)
            .unwrap();
        assert_eq!(link.properties.bandwidth, Bandwidth::from_mbps(10));
        assert_eq!(link.properties.latency, SimDuration::from_millis(10));
        assert_eq!(link.properties.jitter.as_micros(), 250);
    }

    #[test]
    fn bandwidth_parsing_units() {
        assert_eq!(parse_bandwidth("10Mbps"), Ok(Bandwidth::from_mbps(10)));
        assert_eq!(parse_bandwidth("128 Kbps"), Ok(Bandwidth::from_kbps(128)));
        assert_eq!(parse_bandwidth("1Gbps"), Ok(Bandwidth::from_gbps(1)));
        assert_eq!(parse_bandwidth("2.5 Mbps"), Ok(Bandwidth::from_kbps(2500)));
        assert_eq!(parse_bandwidth("500"), Ok(Bandwidth::from_bps(500)));
    }

    #[test]
    fn bandwidth_parse_errors_carry_the_column() {
        // A word that is not a number: the error points at the number slot.
        assert_eq!(
            parse_bandwidth("oops"),
            Err(ParseError::BadBandwidth {
                column: 1,
                value: "oops".into()
            })
        );
        // Unknown unit: the error points at the unit token.
        assert_eq!(
            parse_bandwidth("10 Tbps"),
            Err(ParseError::BadBandwidth {
                column: 4,
                value: "10 Tbps".into()
            })
        );
        // Negative rate: the error points at the number.
        assert_eq!(
            parse_bandwidth("-5Mbps"),
            Err(ParseError::BadBandwidth {
                column: 1,
                value: "-5Mbps".into()
            })
        );
        // Leading whitespace shifts the reported column.
        assert_eq!(
            parse_bandwidth("  nope"),
            Err(ParseError::BadBandwidth {
                column: 3,
                value: "  nope".into()
            })
        );
        let msg = format!("{}", parse_bandwidth("10 Tbps").unwrap_err());
        assert!(msg.contains("column 4"), "{msg}");
    }

    #[test]
    fn unknown_node_in_link_is_an_error() {
        let text =
            "experiment:\n  services:\n    name: a\n  links:\n    orig: a\n    dest: ghost\n";
        let err = parse_experiment(text).unwrap_err();
        assert!(matches!(err, ParseError::UnknownNode { name } if name == "ghost"));
    }

    #[test]
    fn malformed_line_is_an_error() {
        let text = "experiment:\n  services:\n    just some words\n";
        let err = parse_experiment(text).unwrap_err();
        assert!(matches!(err, ParseError::MalformedLine { line: 3, .. }));
    }

    #[test]
    fn bad_numeric_value_is_an_error() {
        let text =
            "experiment:\n  services:\n    name: a\n    name: b\n  links:\n    orig: a\n    dest: b\n    latency: fast\n";
        let err = parse_experiment(text).unwrap_err();
        assert!(matches!(err, ParseError::BadValue { key, .. } if key == "latency"));
    }

    #[test]
    fn dynamic_without_time_is_an_error() {
        let text = "dynamic:\n  orig: a\n  dest: b\n  jitter: 1\n";
        let err = parse_experiment(text).unwrap_err();
        assert!(matches!(err, ParseError::MissingKey { key, .. } if key == "time"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\nexperiment:\n\n  services:\n    name: a # trailing comment\n    image: \"img\"\n";
        let exp = parse_experiment(text).unwrap();
        assert_eq!(exp.topology.service_ids().len(), 1);
    }

    #[test]
    fn bare_bandwidth_key_is_accepted() {
        let text = "experiment:\n  services:\n    name: a\n    name: b\n  links:\n    orig: a\n    dest: b\n    bandwidth: 5Mbps\n";
        let exp = parse_experiment(text).unwrap();
        let a = exp.topology.node_by_name("a").unwrap();
        let link = exp.topology.links_from(a).next().unwrap();
        assert_eq!(link.properties.bandwidth, Bandwidth::from_mbps(5));
    }

    #[test]
    fn error_display_is_informative() {
        let err = ParseError::BadValue {
            line: 7,
            key: "up".into(),
            value: "fast".into(),
        };
        assert!(format!("{err}").contains("line 7"));
        let err = ParseError::UnknownNode { name: "x".into() };
        assert!(format!("{err}").contains('x'));
    }
}
