//! # kollaps-topology
//!
//! Topology description and analysis for the Kollaps reproduction.
//!
//! An experiment is described (paper §3, Listings 1 and 2) as a set of
//! **services** (containers), **bridges** (switches/routers) and **links**
//! with latency, jitter, bandwidth and loss, plus a schedule of **dynamic
//! events** that change the topology while the experiment runs.
//!
//! * [`model`] — services, bridges, links and the [`model::Topology`]
//!   container with a builder-style API.
//! * [`dsl`] — parser for the YAML-like experiment description language of
//!   Listing 1/2, including bandwidth unit parsing (`10Mbps`, `1Gbps`, …).
//! * [`xml`] — parser for the ModelNet-like XML syntax the paper also
//!   accepts, to ease porting of existing topology files.
//! * [`events`] — the dynamic event schedule (link property changes, link
//!   and node joins/leaves).
//! * [`graph`] — adjacency structure, Dijkstra shortest paths and all-pairs
//!   path computation between services, the input of Kollaps' topology
//!   collapsing.
//! * [`generators`] — canonical topologies used in the evaluation:
//!   point-to-point, dumbbell, the Figure 8 parking-lot, Barabási–Albert
//!   scale-free graphs and the AWS geo-distributed matrices.
//! * [`geo`] — inter-region latency/jitter data embedded from the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsl;
pub mod events;
pub mod generators;
pub mod geo;
pub mod graph;
pub mod model;
pub mod xml;

pub use events::{DynamicAction, DynamicEvent, EventSchedule};
pub use graph::{Path, TopologyGraph};
pub use model::{LinkId, LinkProperties, LinkSpec, NodeId, NodeKind, Topology};
