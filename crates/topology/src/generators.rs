//! Canonical topology generators used throughout the evaluation.
//!
//! * [`point_to_point`] — the Table 2 / Table 3 client–server pair.
//! * [`dumbbell`] — the Figure 3 metadata-scaling topology.
//! * [`figure8`] — the §5.4 decentralized-throttling parking-lot topology.
//! * [`star`] — a single switch with N attached services.
//! * [`barabasi_albert`] — preferential-attachment scale-free topologies
//!   (Table 4), which are representative of Internet-like graphs.

use kollaps_sim::rng::SimRng;
use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

use crate::model::{LinkProperties, NodeId, Topology};

/// A simple client–server pair connected by a single bidirectional link.
///
/// Returns `(topology, client, server)`.
pub fn point_to_point(
    bandwidth: Bandwidth,
    latency: SimDuration,
    jitter: SimDuration,
) -> (Topology, NodeId, NodeId) {
    let mut t = Topology::new();
    let client = t.add_service("client", 0, "iperf3-client");
    let server = t.add_service("server", 0, "iperf3-server");
    let props = LinkProperties::new(latency, bandwidth).with_jitter(jitter);
    t.add_bidirectional_link(client, server, props, "p2p");
    (t, client, server)
}

/// The dumbbell topology of the metadata-scaling experiment (Figure 3):
/// `pairs` clients on one side, `pairs` servers on the other, one shared
/// bottleneck link between the two bridges.
///
/// Returns `(topology, clients, servers)`.
pub fn dumbbell(
    pairs: usize,
    edge_bandwidth: Bandwidth,
    bottleneck_bandwidth: Bandwidth,
    edge_latency: SimDuration,
    bottleneck_latency: SimDuration,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut t = Topology::new();
    let left = t.add_bridge("bridge-left");
    let right = t.add_bridge("bridge-right");
    t.add_bidirectional_link(
        left,
        right,
        LinkProperties::new(bottleneck_latency, bottleneck_bandwidth),
        "dumbbell",
    );
    let mut clients = Vec::new();
    let mut servers = Vec::new();
    for i in 0..pairs {
        let c = t.add_service(&format!("client-{i}"), 0, "iperf3-client");
        let s = t.add_service(&format!("server-{i}"), 0, "iperf3-server");
        t.add_bidirectional_link(
            c,
            left,
            LinkProperties::new(edge_latency, edge_bandwidth),
            "dumbbell",
        );
        t.add_bidirectional_link(
            s,
            right,
            LinkProperties::new(edge_latency, edge_bandwidth),
            "dumbbell",
        );
        clients.push(c);
        servers.push(s);
    }
    (t, clients, servers)
}

/// The exact topology of the decentralized bandwidth-throttling experiment
/// (paper §5.4, Figure 8).
///
/// Six clients C1–C6, three bridges B1–B3, six servers S1–S6:
/// * C1,C2,C3 → B1 with 50, 50, 10 Mb/s and 10, 5, 5 ms;
/// * C4,C5,C6 → B2 with the same pattern;
/// * every server → B3 with 50 Mb/s, 5 ms;
/// * B1 → B2 at 50 Mb/s / 10 ms and B2 → B3 at 100 Mb/s / 10 ms.
///
/// Returns `(topology, clients, servers)` with clients/servers in index
/// order (C1..C6, S1..S6).
pub fn figure8() -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut t = Topology::new();
    let b1 = t.add_bridge("B1");
    let b2 = t.add_bridge("B2");
    let b3 = t.add_bridge("B3");

    let client_specs = [(50, 10u64), (50, 5), (10, 5), (50, 10), (50, 5), (10, 5)];
    let mut clients = Vec::new();
    for (i, (mbps, ms)) in client_specs.iter().enumerate() {
        let c = t.add_service(&format!("C{}", i + 1), 0, "iperf3-client");
        let bridge = if i < 3 { b1 } else { b2 };
        t.add_bidirectional_link(
            c,
            bridge,
            LinkProperties::new(SimDuration::from_millis(*ms), Bandwidth::from_mbps(*mbps)),
            "fig8",
        );
        clients.push(c);
    }
    let mut servers = Vec::new();
    for i in 0..6 {
        let s = t.add_service(&format!("S{}", i + 1), 0, "iperf3-server");
        t.add_bidirectional_link(
            s,
            b3,
            LinkProperties::new(SimDuration::from_millis(5), Bandwidth::from_mbps(50)),
            "fig8",
        );
        servers.push(s);
    }
    t.add_bidirectional_link(
        b1,
        b2,
        LinkProperties::new(SimDuration::from_millis(10), Bandwidth::from_mbps(50)),
        "fig8",
    );
    t.add_bidirectional_link(
        b2,
        b3,
        LinkProperties::new(SimDuration::from_millis(10), Bandwidth::from_mbps(100)),
        "fig8",
    );
    (t, clients, servers)
}

/// A star topology: one central bridge, `n` services around it.
///
/// Returns `(topology, services)`.
pub fn star(n: usize, bandwidth: Bandwidth, latency: SimDuration) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let hub = t.add_bridge("hub");
    let mut services = Vec::new();
    for i in 0..n {
        let s = t.add_service(&format!("node-{i}"), 0, "generic");
        t.add_bidirectional_link(s, hub, LinkProperties::new(latency, bandwidth), "star");
        services.push(s);
    }
    (t, services)
}

/// Parameters of a [`barabasi_albert`] scale-free topology.
#[derive(Debug, Clone, Copy)]
pub struct ScaleFreeParams {
    /// Total number of elements (end nodes + switches), e.g. 1000/2000/4000
    /// in Table 4.
    pub total_elements: usize,
    /// Fraction of elements that are switches (Table 4 uses ≈ 1/3).
    pub switch_fraction: f64,
    /// Edges added per new switch in the preferential-attachment process.
    pub attachment: usize,
    /// Minimum per-link latency in milliseconds.
    pub min_latency_ms: f64,
    /// Maximum per-link latency in milliseconds.
    pub max_latency_ms: f64,
    /// Bandwidth of core (switch–switch) links.
    pub core_bandwidth: Bandwidth,
    /// Bandwidth of access (node–switch) links.
    pub access_bandwidth: Bandwidth,
}

impl Default for ScaleFreeParams {
    fn default() -> Self {
        ScaleFreeParams {
            total_elements: 1_000,
            switch_fraction: 1.0 / 3.0,
            attachment: 2,
            min_latency_ms: 1.0,
            max_latency_ms: 10.0,
            core_bandwidth: Bandwidth::from_gbps(1),
            access_bandwidth: Bandwidth::from_mbps(100),
        }
    }
}

/// Generates an Internet-like scale-free topology with the preferential
/// attachment (Barabási–Albert) algorithm over the switches, then attaches
/// end nodes (services) to switches chosen with degree-proportional
/// probability — the construction used for the Table 4 large-scale
/// experiment.
///
/// Returns `(topology, end_nodes, switches)`.
pub fn barabasi_albert(
    params: &ScaleFreeParams,
    rng: &mut SimRng,
) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let n_switches = ((params.total_elements as f64 * params.switch_fraction).round() as usize)
        .max(params.attachment + 1);
    let n_nodes = params.total_elements.saturating_sub(n_switches);

    let mut t = Topology::new();
    let mut switches = Vec::with_capacity(n_switches);
    // Degree-weighted target list: every edge endpoint appears once, so
    // sampling uniformly from it is preferential attachment.
    let mut endpoints: Vec<usize> = Vec::new();

    let latency = |rng: &mut SimRng| {
        let ms = params.min_latency_ms
            + rng.next_f64() * (params.max_latency_ms - params.min_latency_ms);
        SimDuration::from_millis_f64(ms)
    };

    // Seed clique of `attachment + 1` switches.
    let seed = params.attachment + 1;
    for i in 0..n_switches {
        switches.push(t.add_bridge(&format!("sw-{i}")));
    }
    for i in 0..seed {
        for j in (i + 1)..seed {
            t.add_bidirectional_link(
                switches[i],
                switches[j],
                LinkProperties::new(latency(rng), params.core_bandwidth),
                "core",
            );
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    // Preferential attachment for the remaining switches.
    for i in seed..n_switches {
        let mut chosen = Vec::new();
        let mut guard = 0;
        while chosen.len() < params.attachment && guard < 1_000 {
            let target = endpoints[rng.gen_index(endpoints.len())];
            if target != i && !chosen.contains(&target) {
                chosen.push(target);
            }
            guard += 1;
        }
        for &target in &chosen {
            t.add_bidirectional_link(
                switches[i],
                switches[target],
                LinkProperties::new(latency(rng), params.core_bandwidth),
                "core",
            );
            endpoints.push(i);
            endpoints.push(target);
        }
    }
    // Attach end nodes preferentially to well-connected switches.
    let mut nodes = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let id = t.add_service(&format!("node-{i}"), 0, "ping");
        let sw_idx = endpoints[rng.gen_index(endpoints.len())];
        t.add_bidirectional_link(
            id,
            switches[sw_idx],
            LinkProperties::new(latency(rng), params.access_bandwidth),
            "access",
        );
        nodes.push(id);
    }
    (t, nodes, switches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{PathProperties, TopologyGraph};

    #[test]
    fn point_to_point_has_two_services_one_link() {
        let (t, c, s) = point_to_point(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(10),
            SimDuration::ZERO,
        );
        assert_eq!(t.service_ids(), vec![c, s]);
        assert_eq!(t.link_count(), 2);
    }

    #[test]
    fn dumbbell_shape() {
        let (t, clients, servers) = dumbbell(
            10,
            Bandwidth::from_mbps(100),
            Bandwidth::from_mbps(50),
            SimDuration::from_millis(1),
            SimDuration::from_millis(10),
        );
        assert_eq!(clients.len(), 10);
        assert_eq!(servers.len(), 10);
        assert_eq!(t.bridge_ids().len(), 2);
        // 1 bottleneck + 20 edges, all bidirectional.
        assert_eq!(t.link_count(), 2 * 21);
        // Every client-server path crosses the 50 Mb/s bottleneck.
        let g = TopologyGraph::new(&t);
        let paths = g.all_pairs_service_paths();
        let pp = PathProperties::compose(&t, &paths[&(clients[0], servers[0])]).unwrap();
        assert_eq!(pp.max_bandwidth, Bandwidth::from_mbps(50));
        assert_eq!(pp.latency, SimDuration::from_millis(12));
    }

    #[test]
    fn figure8_matches_paper_description() {
        let (t, clients, servers) = figure8();
        assert_eq!(clients.len(), 6);
        assert_eq!(servers.len(), 6);
        assert_eq!(t.bridge_ids().len(), 3);
        let g = TopologyGraph::new(&t);
        let paths = g.all_pairs_service_paths();
        // C1 -> S1 path: C1-B1 (50), B1-B2 (50), B2-B3 (100), B3-S1 (50):
        // bottleneck 50 Mb/s, latency 10+10+10+5 = 35 ms.
        let pp = PathProperties::compose(&t, &paths[&(clients[0], servers[0])]).unwrap();
        assert_eq!(pp.max_bandwidth, Bandwidth::from_mbps(50));
        assert_eq!(pp.latency, SimDuration::from_millis(35));
        // C3 is limited by its own 10 Mb/s access link.
        let pp3 = PathProperties::compose(&t, &paths[&(clients[2], servers[2])]).unwrap();
        assert_eq!(pp3.max_bandwidth, Bandwidth::from_mbps(10));
        // C4 does not cross the B1-B2 link: latency 10+10+5 = 25 ms.
        let pp4 = PathProperties::compose(&t, &paths[&(clients[3], servers[3])]).unwrap();
        assert_eq!(pp4.latency, SimDuration::from_millis(25));
        assert_eq!(pp4.max_bandwidth, Bandwidth::from_mbps(50));
    }

    #[test]
    fn star_connects_everyone() {
        let (t, services) = star(8, Bandwidth::from_mbps(10), SimDuration::from_millis(2));
        assert_eq!(services.len(), 8);
        let g = TopologyGraph::new(&t);
        assert_eq!(g.all_pairs_service_paths().len(), 8 * 7);
    }

    #[test]
    fn scale_free_sizes_match_table4_split() {
        let mut rng = SimRng::new(42);
        let params = ScaleFreeParams {
            total_elements: 1_000,
            ..ScaleFreeParams::default()
        };
        let (t, nodes, switches) = barabasi_albert(&params, &mut rng);
        // Table 4: 1000 elements ≈ 666 end nodes + 334 switches.
        assert_eq!(nodes.len() + switches.len(), 1_000);
        assert!((switches.len() as i64 - 333).abs() <= 2);
        assert_eq!(t.service_ids().len(), nodes.len());
    }

    #[test]
    fn scale_free_is_connected() {
        let mut rng = SimRng::new(7);
        let params = ScaleFreeParams {
            total_elements: 200,
            ..ScaleFreeParams::default()
        };
        let (t, nodes, _) = barabasi_albert(&params, &mut rng);
        let g = TopologyGraph::new(&t);
        let paths = g.shortest_paths_from(nodes[0]);
        for &n in &nodes[1..] {
            assert!(paths.contains_key(&n), "node {n} unreachable");
        }
    }

    #[test]
    fn scale_free_has_hubs() {
        // Preferential attachment should produce a heavy-tailed degree
        // distribution: the best-connected switch has far more links than
        // the attachment parameter.
        let mut rng = SimRng::new(3);
        let params = ScaleFreeParams {
            total_elements: 600,
            ..ScaleFreeParams::default()
        };
        let (t, _, switches) = barabasi_albert(&params, &mut rng);
        let max_degree = switches
            .iter()
            .map(|&s| t.links_from(s).count())
            .max()
            .unwrap();
        assert!(
            max_degree >= 4 * params.attachment,
            "max degree {max_degree}"
        );
    }

    #[test]
    fn scale_free_latencies_within_bounds() {
        let mut rng = SimRng::new(11);
        let params = ScaleFreeParams {
            total_elements: 150,
            min_latency_ms: 2.0,
            max_latency_ms: 5.0,
            ..ScaleFreeParams::default()
        };
        let (t, _, _) = barabasi_albert(&params, &mut rng);
        for l in t.links() {
            let ms = l.properties.latency.as_millis_f64();
            assert!((2.0..=5.0).contains(&ms), "latency {ms} out of bounds");
        }
    }
}
