//! Geo-distributed (AWS-like) latency and jitter data used by the
//! evaluation.
//!
//! The paper measures inter-region latency/jitter on Amazon EC2 and then
//! reproduces those conditions inside Kollaps:
//!
//! * Table 3 lists the measured latency and jitter from `us-east-1` to
//!   twelve other regions (used for the jitter-accuracy experiment);
//! * the BFT-SMaRt / Wheat reproduction (Figure 9) uses the five regions of
//!   Sousa & Bessani \[78\];
//! * the memcached scalability experiment (Figure 4) uses four regions;
//! * the Cassandra experiments (Figures 10/11) use Frankfurt and Sydney
//!   (and Seoul for the what-if scenario).
//!
//! The EC2 measurements themselves are not available to this reproduction,
//! so the matrices below embed the paper's published numbers where given
//! (Table 3) and publicly documented inter-region RTTs elsewhere; the
//! experiment harness treats them as the "measured on EC2" ground truth.

use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

use crate::model::{LinkProperties, NodeId, Topology};

/// Latency/jitter from `us-east-1` to each destination region (Table 3).
///
/// Entries are `(region, one-way latency ms, jitter ms)`. The paper reports
/// these as measured RTT-level latencies; the emulation assigns them to the
/// single link of a two-node topology, so we keep the same numbers.
pub const TABLE3_FROM_US_EAST_1: &[(&str, f64, f64)] = &[
    ("us-east-1", 6.0, 0.5607),
    ("us-east-2", 17.0, 1.2411),
    ("ca-central-1", 24.0, 1.2451),
    ("us-west-1", 70.0, 1.3627),
    ("eu-west-1", 78.0, 1.2000),
    ("eu-west-2", 85.0, 1.6609),
    ("eu-north-1", 119.0, 1.2850),
    ("ap-northeast-1", 170.0, 1.4217),
    ("ap-south-1", 194.0, 2.0233),
    ("ap-northeast-2", 200.0, 1.8364),
    ("ap-southeast-2", 208.0, 1.4277),
    ("ap-southeast-1", 249.0, 1.2111),
];

/// A named region participating in a geo-distributed deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region(pub &'static str);

/// The five regions of the BFT-SMaRt / Wheat experiment \[78\] (Figure 9).
pub const WHEAT_REGIONS: &[Region] = &[
    Region("Oregon"),
    Region("Ireland"),
    Region("Sydney"),
    Region("SaoPaulo"),
    Region("Virginia"),
];

/// The four regions of the memcached scalability experiment (Figure 4).
pub const MEMCACHED_REGIONS: &[Region] = &[
    Region("Frankfurt"),
    Region("Ireland"),
    Region("Virginia"),
    Region("Sydney"),
];

/// One-way latency in milliseconds between two named regions.
///
/// Symmetric; intra-region latency is ~0.3 ms. Values follow publicly
/// documented EC2 inter-region RTTs (halved to one-way).
pub fn one_way_latency_ms(a: Region, b: Region) -> f64 {
    if a == b {
        return 0.3;
    }
    let key = |r: Region| r.0;
    let (x, y) = if key(a) < key(b) {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    };
    let table: &[(&str, &str, f64)] = &[
        // Wheat / Figure 9 regions.
        ("Ireland", "Oregon", 62.0),
        ("Ireland", "SaoPaulo", 92.0),
        ("Ireland", "Sydney", 140.0),
        ("Ireland", "Virginia", 38.0),
        ("Oregon", "SaoPaulo", 91.0),
        ("Oregon", "Sydney", 70.0),
        ("Oregon", "Virginia", 36.0),
        ("SaoPaulo", "Sydney", 160.0),
        ("SaoPaulo", "Virginia", 60.0),
        ("Sydney", "Virginia", 102.0),
        // Additional regions for the memcached and Cassandra experiments.
        ("Frankfurt", "Ireland", 12.0),
        ("Frankfurt", "Virginia", 44.0),
        ("Frankfurt", "Sydney", 145.0),
        ("Frankfurt", "SaoPaulo", 102.0),
        ("Frankfurt", "Oregon", 79.0),
        ("Frankfurt", "Seoul", 118.0),
        ("Ireland", "Seoul", 120.0),
        ("Seoul", "Sydney", 72.0),
        ("Seoul", "Virginia", 92.0),
        ("Ireland", "Sydney2", 140.0),
    ];
    for (p, q, ms) in table {
        if *p == x && *q == y {
            return *ms;
        }
    }
    // Fall back to a conservative intercontinental latency so an unknown
    // pair never silently becomes a zero-latency link.
    100.0
}

/// Typical jitter (ms) applied to an inter-region link of the given latency,
/// following the shape of Table 3 (jitter grows slowly with distance).
pub fn typical_jitter_ms(latency_ms: f64) -> f64 {
    0.5 + latency_ms * 0.007
}

/// A geo-distributed topology: one bridge per region, inter-region links
/// with the latencies above, and `services_per_region` containers attached
/// to each regional bridge.
///
/// Returns the topology plus, for each region (in input order), the node
/// ids of its services.
pub fn build_geo_topology(
    regions: &[Region],
    services_per_region: usize,
    inter_region_bandwidth: Bandwidth,
    image: &str,
) -> (Topology, Vec<Vec<NodeId>>) {
    let mut topo = Topology::new();
    let mut bridges = Vec::new();
    for region in regions {
        bridges.push(topo.add_bridge(&format!("br-{}", region.0)));
    }
    // Full mesh between regional bridges.
    for i in 0..regions.len() {
        for j in (i + 1)..regions.len() {
            let lat = one_way_latency_ms(regions[i], regions[j]);
            let props =
                LinkProperties::new(SimDuration::from_millis_f64(lat), inter_region_bandwidth)
                    .with_jitter(SimDuration::from_millis_f64(typical_jitter_ms(lat)));
            topo.add_bidirectional_link(bridges[i], bridges[j], props, "geo");
        }
    }
    // Services attach to their regional bridge over a fast local link.
    let mut per_region = Vec::new();
    for (i, region) in regions.iter().enumerate() {
        let mut ids = Vec::new();
        for r in 0..services_per_region {
            let id = topo.add_service(&format!("{}-{}", region.0, r), 0, image);
            let props =
                LinkProperties::new(SimDuration::from_millis_f64(0.3), Bandwidth::from_gbps(10));
            topo.add_bidirectional_link(id, bridges[i], props, "geo");
            ids.push(id);
        }
        per_region.push(ids);
    }
    (topo, per_region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{PathProperties, TopologyGraph};

    #[test]
    fn table3_has_twelve_destinations() {
        assert_eq!(TABLE3_FROM_US_EAST_1.len(), 12);
        // Latency grows monotonically in the paper's ordering.
        for w in TABLE3_FROM_US_EAST_1.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn latency_matrix_is_symmetric_and_positive() {
        for &a in WHEAT_REGIONS {
            for &b in WHEAT_REGIONS {
                let ab = one_way_latency_ms(a, b);
                let ba = one_way_latency_ms(b, a);
                assert_eq!(ab, ba);
                assert!(ab > 0.0);
                if a == b {
                    assert!(ab < 1.0);
                }
            }
        }
    }

    #[test]
    fn geo_topology_end_to_end_latency_matches_matrix() {
        let (topo, per_region) =
            build_geo_topology(WHEAT_REGIONS, 1, Bandwidth::from_mbps(1_000), "bft-smart");
        assert_eq!(per_region.len(), 5);
        let g = TopologyGraph::new(&topo);
        let paths = g.all_pairs_service_paths();
        let oregon = per_region[0][0];
        let ireland = per_region[1][0];
        let p = PathProperties::compose(&topo, &paths[&(oregon, ireland)]).unwrap();
        // 0.3 (access) + 62 (inter-region) + 0.3 (access) ms.
        let expected = 62.0 + 0.6;
        assert!((p.latency.as_millis_f64() - expected).abs() < 1e-6);
    }

    #[test]
    fn jitter_grows_with_distance() {
        assert!(typical_jitter_ms(200.0) > typical_jitter_ms(10.0));
        assert!(typical_jitter_ms(6.0) > 0.0);
    }

    #[test]
    fn unknown_pairs_fall_back_conservatively() {
        let lat = one_way_latency_ms(Region("Atlantis"), Region("Mu"));
        assert_eq!(lat, 100.0);
    }
}
