//! Parser for the ModelNet-like XML topology syntax.
//!
//! Kollaps accepts an XML syntax compatible with ModelNet topology files to
//! ease porting of existing descriptions (paper §3). The format is a flat
//! list of vertices and edges:
//!
//! ```xml
//! <topology>
//!   <vertices>
//!     <vertex int_idx="0" role="gateway" />
//!     <vertex int_idx="1" role="virtnode" int_vn="1" />
//!   </vertices>
//!   <edges>
//!     <edge int_src="1" int_dst="0" int_delayms="10" dbl_kbps="10000" int_idx="0" />
//!   </edges>
//! </topology>
//! ```
//!
//! `role="virtnode"` vertices become services; every other role becomes a
//! bridge. Edges are interpreted as bidirectional unless a reverse edge with
//! its own attributes is present, in which case each direction keeps its own
//! properties.

use std::collections::HashMap;
use std::fmt;

use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

use crate::model::{LinkProperties, NodeId, Topology};

/// Errors from the XML topology parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// An element is missing a required attribute.
    MissingAttribute {
        /// Element name (`vertex` or `edge`).
        element: String,
        /// The missing attribute.
        attribute: String,
    },
    /// An attribute value could not be parsed as a number.
    BadNumber {
        /// The attribute name.
        attribute: String,
        /// The offending value.
        value: String,
    },
    /// An edge references a vertex index that was never declared.
    UnknownVertex {
        /// The unknown index.
        index: u32,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> is missing attribute `{attribute}`")
            }
            XmlError::BadNumber { attribute, value } => {
                write!(f, "attribute `{attribute}` has non-numeric value `{value}`")
            }
            XmlError::UnknownVertex { index } => {
                write!(f, "edge references undeclared vertex {index}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

/// A start/empty tag with its attributes.
#[derive(Debug, Clone)]
struct Tag {
    name: String,
    attributes: HashMap<String, String>,
}

/// Extracts all tags from the document in order (a minimal scanner, not a
/// general XML parser — enough for the flat ModelNet format).
fn scan_tags(input: &str) -> Vec<Tag> {
    let mut tags = Vec::new();
    let mut rest = input;
    while let Some(start) = rest.find('<') {
        let Some(end_rel) = rest[start..].find('>') else {
            break;
        };
        let inner = &rest[start + 1..start + end_rel];
        rest = &rest[start + end_rel + 1..];
        let inner = inner.trim().trim_end_matches('/').trim();
        if inner.starts_with('/') || inner.starts_with('!') || inner.starts_with('?') {
            continue;
        }
        let mut parts = inner.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or("").to_ascii_lowercase();
        let mut attributes = HashMap::new();
        if let Some(attr_text) = parts.next() {
            let mut chars = attr_text.char_indices().peekable();
            while let Some(&(i, _)) = chars.peek() {
                // Find `key="value"` pairs.
                let Some(eq) = attr_text[i..].find('=') else {
                    break;
                };
                let key = attr_text[i..i + eq].trim().to_ascii_lowercase();
                let after = i + eq + 1;
                let Some(q1) = attr_text[after..].find('"') else {
                    break;
                };
                let vstart = after + q1 + 1;
                let Some(q2) = attr_text[vstart..].find('"') else {
                    break;
                };
                let value = attr_text[vstart..vstart + q2].to_string();
                if !key.is_empty() {
                    attributes.insert(key, value);
                }
                // Advance the iterator past the closing quote.
                let next_pos = vstart + q2 + 1;
                while let Some(&(j, _)) = chars.peek() {
                    if j < next_pos {
                        chars.next();
                    } else {
                        break;
                    }
                }
                if chars.peek().is_none() {
                    break;
                }
            }
        }
        tags.push(Tag { name, attributes });
    }
    tags
}

fn parse_attr_u32(tag: &Tag, attr: &str) -> Result<u32, XmlError> {
    let v = tag
        .attributes
        .get(attr)
        .ok_or_else(|| XmlError::MissingAttribute {
            element: tag.name.clone(),
            attribute: attr.to_string(),
        })?;
    v.parse().map_err(|_| XmlError::BadNumber {
        attribute: attr.to_string(),
        value: v.clone(),
    })
}

fn parse_attr_f64(tag: &Tag, attr: &str) -> Result<Option<f64>, XmlError> {
    match tag.attributes.get(attr) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| XmlError::BadNumber {
            attribute: attr.to_string(),
            value: v.clone(),
        }),
    }
}

/// Parses a ModelNet-like XML topology.
pub fn parse_modelnet_xml(input: &str) -> Result<Topology, XmlError> {
    let tags = scan_tags(input);
    let mut topo = Topology::new();
    let mut by_index: HashMap<u32, NodeId> = HashMap::new();

    for tag in tags.iter().filter(|t| t.name == "vertex") {
        let idx = parse_attr_u32(tag, "int_idx")?;
        let role = tag
            .attributes
            .get("role")
            .map(String::as_str)
            .unwrap_or("gateway");
        let id = if role.eq_ignore_ascii_case("virtnode") {
            topo.add_service(&format!("vn-{idx}"), 0, "modelnet-node")
        } else {
            topo.add_bridge(&format!("gw-{idx}"))
        };
        by_index.insert(idx, id);
    }

    for tag in tags.iter().filter(|t| t.name == "edge") {
        let src = parse_attr_u32(tag, "int_src")?;
        let dst = parse_attr_u32(tag, "int_dst")?;
        let from = *by_index
            .get(&src)
            .ok_or(XmlError::UnknownVertex { index: src })?;
        let to = *by_index
            .get(&dst)
            .ok_or(XmlError::UnknownVertex { index: dst })?;
        let delay_ms = parse_attr_f64(tag, "int_delayms")?
            .or(parse_attr_f64(tag, "dbl_delayms")?)
            .unwrap_or(0.0);
        let kbps = parse_attr_f64(tag, "dbl_kbps")?
            .or(parse_attr_f64(tag, "int_kbps")?)
            .unwrap_or(f64::MAX);
        let loss = parse_attr_f64(tag, "dbl_plr")?
            .unwrap_or(0.0)
            .clamp(0.0, 1.0);
        let bandwidth = if kbps == f64::MAX {
            Bandwidth::MAX
        } else {
            Bandwidth::from_bps((kbps * 1_000.0) as u64)
        };
        let props = LinkProperties {
            latency: SimDuration::from_millis_f64(delay_ms.max(0.0)),
            jitter: SimDuration::ZERO,
            bandwidth,
            loss,
        };
        topo.add_link(from, to, props, "modelnet");
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
<topology>
  <vertices>
    <vertex int_idx="0" role="gateway" />
    <vertex int_idx="1" role="virtnode" int_vn="1" />
    <vertex int_idx="2" role="virtnode" int_vn="2" />
  </vertices>
  <edges>
    <edge int_src="1" int_dst="0" int_delayms="10" dbl_kbps="10000" int_idx="0" />
    <edge int_src="0" int_dst="1" int_delayms="10" dbl_kbps="10000" int_idx="1" />
    <edge int_src="2" int_dst="0" int_delayms="5" dbl_kbps="50000" int_idx="2" />
    <edge int_src="0" int_dst="2" int_delayms="5" dbl_kbps="50000" int_idx="3" />
  </edges>
</topology>
"#;

    #[test]
    fn parses_vertices_and_edges() {
        let t = parse_modelnet_xml(SAMPLE).unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.service_ids().len(), 2);
        assert_eq!(t.bridge_ids().len(), 1);
        assert_eq!(t.link_count(), 4);
        let vn1 = t.node_by_name("vn-1").unwrap();
        let link = t.links_from(vn1).next().unwrap();
        assert_eq!(link.properties.latency, SimDuration::from_millis(10));
        assert_eq!(link.properties.bandwidth, Bandwidth::from_mbps(10));
    }

    #[test]
    fn missing_attribute_is_an_error() {
        let bad = r#"<topology><vertices><vertex role="gateway"/></vertices></topology>"#;
        let err = parse_modelnet_xml(bad).unwrap_err();
        assert!(
            matches!(err, XmlError::MissingAttribute { attribute, .. } if attribute == "int_idx")
        );
    }

    #[test]
    fn bad_number_is_an_error() {
        let bad = r#"<vertex int_idx="zero" role="gateway"/>"#;
        let err = parse_modelnet_xml(bad).unwrap_err();
        assert!(matches!(err, XmlError::BadNumber { .. }));
    }

    #[test]
    fn unknown_vertex_reference_is_an_error() {
        let bad = r#"
<vertex int_idx="0" role="gateway"/>
<edge int_src="0" int_dst="9" int_delayms="1"/>
"#;
        let err = parse_modelnet_xml(bad).unwrap_err();
        assert!(matches!(err, XmlError::UnknownVertex { index: 9 }));
    }

    #[test]
    fn loss_attribute_is_applied() {
        let doc = r#"
<vertex int_idx="0" role="virtnode"/>
<vertex int_idx="1" role="virtnode"/>
<edge int_src="0" int_dst="1" int_delayms="1" dbl_kbps="1000" dbl_plr="0.05"/>
"#;
        let t = parse_modelnet_xml(doc).unwrap();
        assert_eq!(t.links()[0].properties.loss, 0.05);
    }

    #[test]
    fn comments_and_closing_tags_are_ignored() {
        let doc = r#"
<?xml version="1.0"?>
<!-- generated -->
<topology>
  <vertices>
    <vertex int_idx="0" role="virtnode"/>
  </vertices>
</topology>
"#;
        let t = parse_modelnet_xml(doc).unwrap();
        assert_eq!(t.node_count(), 1);
    }
}
