//! Dynamic topology events.
//!
//! Kollaps supports modifying any link property, and adding or removing
//! links, bridges and services while the experiment runs (paper §3,
//! Listing 2). Events are applied to the topology graph; the emulation core
//! pre-computes the resulting sequence of collapsed snapshots offline so
//! that sub-second dynamics can be enforced accurately at runtime.

use serde::{Deserialize, Serialize};

use kollaps_sim::time::SimDuration;
use kollaps_sim::units::Bandwidth;

use crate::model::{LinkProperties, Topology};

/// Optional property overrides carried by a link-related event.
///
/// Absent fields keep their previous value (for property changes) or take
/// defaults (for link joins).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkChange {
    /// New one-way latency.
    pub latency: Option<SimDuration>,
    /// New jitter.
    pub jitter: Option<SimDuration>,
    /// New upload (orig → dest) bandwidth.
    pub up: Option<Bandwidth>,
    /// New download (dest → orig) bandwidth.
    pub down: Option<Bandwidth>,
    /// New loss probability.
    pub loss: Option<f64>,
}

/// What a dynamic event does to the topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DynamicAction {
    /// Changes properties of the existing link(s) between two nodes.
    SetLinkProperties {
        /// Source node name.
        orig: String,
        /// Destination node name.
        dest: String,
        /// The property overrides.
        change: LinkChange,
    },
    /// Adds a (bidirectional) link between two existing nodes.
    LinkJoin {
        /// Source node name.
        orig: String,
        /// Destination node name.
        dest: String,
        /// Properties of the new link.
        change: LinkChange,
    },
    /// Removes every link between two nodes.
    LinkLeave {
        /// Source node name.
        orig: String,
        /// Destination node name.
        dest: String,
    },
    /// Removes a named node (service or bridge) and all its links.
    NodeLeave {
        /// Node name.
        name: String,
    },
    /// Re-adds a previously known bridge by name.
    ///
    /// Service joins are handled by the orchestrator (new containers); at
    /// the topology level a join only needs the node to exist again so that
    /// subsequent `LinkJoin` events can attach to it.
    NodeJoin {
        /// Node name.
        name: String,
    },
}

/// A scheduled change to the topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicEvent {
    /// When the change takes effect, relative to experiment start.
    pub at: SimDuration,
    /// The change itself.
    pub action: DynamicAction,
}

/// An ordered schedule of dynamic events.
///
/// The schedule is **always sorted** by [`DynamicEvent::at`] (stable for
/// equal timestamps): [`EventSchedule::push`] inserts in order and every
/// bulk constructor ([`EventSchedule::from_events`], which external
/// deserializers such as the `kollaps_dynamics` trace parser go through)
/// normalizes on construction. Consumers — the emulation loop's due-event
/// scan and the `dedup` in [`EventSchedule::change_times`] — rely on this
/// invariant.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventSchedule {
    events: Vec<DynamicEvent>,
}

impl EventSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        EventSchedule::default()
    }

    /// Builds a schedule from events in **any** order, normalizing to
    /// chronological order (stable: events with equal timestamps keep their
    /// relative order). Every path that materializes a schedule from
    /// external data (JSON traces, generated event lists) must come through
    /// here so the sortedness invariant holds from construction on.
    pub fn from_events(mut events: Vec<DynamicEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        EventSchedule { events }
    }

    /// Adds an event, keeping the schedule sorted by time. The insertion
    /// point is found by binary search (stable for equal timestamps: the
    /// new event goes after existing ones with the same time), so building
    /// a schedule of `n` events costs `O(n log n)` comparisons plus the
    /// element moves — not the full re-sort per insert it used to be.
    pub fn push(&mut self, event: DynamicEvent) {
        let at = event.at;
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, event);
    }

    /// Merges every event of `other` into this schedule, preserving order.
    pub fn merge(&mut self, other: &EventSchedule) {
        if other.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.events.len() + other.events.len());
        let mut ours = std::mem::take(&mut self.events).into_iter().peekable();
        let mut theirs = other.events.iter().cloned().peekable();
        loop {
            match (ours.peek(), theirs.peek()) {
                (Some(a), Some(b)) => {
                    // `<=` keeps the merge stable: our events win ties.
                    if a.at <= b.at {
                        merged.push(ours.next().expect("peeked"));
                    } else {
                        merged.push(theirs.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(ours.next().expect("peeked")),
                (None, Some(_)) => merged.push(theirs.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.events = merged;
    }

    /// The events in chronological order.
    pub fn events(&self) -> &[DynamicEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct timestamps at which the topology changes, in order
    /// (well-defined because the schedule is sorted by construction).
    pub fn change_times(&self) -> Vec<SimDuration> {
        let mut times: Vec<SimDuration> = self.events.iter().map(|e| e.at).collect();
        times.dedup();
        times
    }

    /// Events taking effect exactly at `at`.
    pub fn events_at(&self, at: SimDuration) -> impl Iterator<Item = &DynamicEvent> {
        self.events.iter().filter(move |e| e.at == at)
    }
}

/// Applies a dynamic action to a topology in place.
///
/// Unknown node names are ignored (a warning-free no-op): the paper's
/// deployment generator validates names up front, and at runtime a stale
/// event must never crash the emulation.
pub fn apply_action(topology: &mut Topology, action: &DynamicAction) {
    match action {
        DynamicAction::SetLinkProperties { orig, dest, change } => {
            let (Some(a), Some(b)) = (topology.node_by_name(orig), topology.node_by_name(dest))
            else {
                return;
            };
            let updates: Vec<_> = topology
                .links()
                .iter()
                .filter(|l| (l.from == a && l.to == b) || (l.from == b && l.to == a))
                .map(|l| (l.id, l.from == a, l.properties))
                .collect();
            for (id, is_forward, old) in updates {
                let mut props = old;
                if let Some(lat) = change.latency {
                    props.latency = lat;
                }
                if let Some(j) = change.jitter {
                    props.jitter = j;
                }
                if let Some(loss) = change.loss {
                    props.loss = loss;
                }
                if is_forward {
                    if let Some(up) = change.up {
                        props.bandwidth = up;
                    }
                } else if let Some(down) = change.down {
                    props.bandwidth = down;
                }
                topology.set_link_properties(id, props);
            }
        }
        DynamicAction::LinkJoin { orig, dest, change } => {
            let (Some(a), Some(b)) = (topology.node_by_name(orig), topology.node_by_name(dest))
            else {
                return;
            };
            let base = LinkProperties {
                latency: change.latency.unwrap_or(SimDuration::ZERO),
                jitter: change.jitter.unwrap_or(SimDuration::ZERO),
                bandwidth: Bandwidth::MAX,
                loss: change.loss.unwrap_or(0.0),
            };
            let up = change.up.unwrap_or(Bandwidth::MAX);
            let down = change.down.unwrap_or(up);
            topology.add_asymmetric_link(a, b, base, up, down, "default");
        }
        DynamicAction::LinkLeave { orig, dest } => {
            let (Some(a), Some(b)) = (topology.node_by_name(orig), topology.node_by_name(dest))
            else {
                return;
            };
            topology.remove_links_between(a, b);
        }
        DynamicAction::NodeLeave { name } => {
            // A service name may refer to several replicas; remove them all.
            let ids: Vec<_> = topology
                .nodes()
                .iter()
                .filter(|n| {
                    n.kind.display_name() == *name
                        || matches!(&n.kind, crate::model::NodeKind::Service { service, .. } if service == name)
                        || matches!(&n.kind, crate::model::NodeKind::Bridge { name: b } if b == name)
                })
                .map(|n| n.id)
                .collect();
            for id in ids {
                topology.remove_node(id);
            }
        }
        DynamicAction::NodeJoin { name } => {
            if topology.node_by_name(name).is_none() {
                topology.add_bridge(name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kollaps_sim::units::Bandwidth;

    fn base_topology() -> Topology {
        let mut t = Topology::new();
        let c1 = t.add_service("c1", 0, "iperf");
        let s1 = t.add_bridge("s1");
        let s2 = t.add_bridge("s2");
        let sv = t.add_service("sv", 0, "nginx");
        t.add_bidirectional_link(
            c1,
            s1,
            LinkProperties::new(SimDuration::from_millis(10), Bandwidth::from_mbps(10)),
            "net",
        );
        t.add_bidirectional_link(
            s1,
            s2,
            LinkProperties::new(SimDuration::from_millis(20), Bandwidth::from_mbps(100)),
            "net",
        );
        t.add_bidirectional_link(
            s2,
            sv,
            LinkProperties::new(SimDuration::from_millis(5), Bandwidth::from_mbps(50)),
            "net",
        );
        t
    }

    #[test]
    fn schedule_stays_sorted() {
        let mut s = EventSchedule::new();
        s.push(DynamicEvent {
            at: SimDuration::from_secs(200),
            action: DynamicAction::NodeLeave { name: "s1".into() },
        });
        s.push(DynamicEvent {
            at: SimDuration::from_secs(120),
            action: DynamicAction::SetLinkProperties {
                orig: "c1".into(),
                dest: "s1".into(),
                change: LinkChange {
                    jitter: Some(SimDuration::from_millis_f64(0.5)),
                    ..LinkChange::default()
                },
            },
        });
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].at, SimDuration::from_secs(120));
        assert_eq!(s.change_times().len(), 2);
        assert_eq!(s.events_at(SimDuration::from_secs(200)).count(), 1);
    }

    #[test]
    fn from_events_normalizes_arbitrary_order() {
        let leave = |secs: u64, name: &str| DynamicEvent {
            at: SimDuration::from_secs(secs),
            action: DynamicAction::NodeLeave { name: name.into() },
        };
        // Out of order, with a duplicate timestamp to check stability.
        let schedule = EventSchedule::from_events(vec![
            leave(30, "c"),
            leave(10, "a"),
            leave(30, "d"),
            leave(20, "b"),
        ]);
        let times: Vec<u64> = schedule
            .events()
            .iter()
            .map(|e| e.at.as_secs_f64() as u64)
            .collect();
        assert_eq!(times, [10, 20, 30, 30]);
        // Stable: "c" was listed before "d" at t=30 and stays first.
        assert!(
            matches!(&schedule.events()[2].action, DynamicAction::NodeLeave { name } if name == "c")
        );
        assert_eq!(schedule.change_times().len(), 3);
    }

    #[test]
    fn push_inserts_in_order_and_is_stable_for_equal_times() {
        let mut s = EventSchedule::new();
        for (secs, name) in [(5u64, "x"), (1, "a"), (5, "y"), (3, "m"), (5, "z")] {
            s.push(DynamicEvent {
                at: SimDuration::from_secs(secs),
                action: DynamicAction::NodeLeave { name: name.into() },
            });
        }
        let order: Vec<(u64, String)> = s
            .events()
            .iter()
            .map(|e| {
                let DynamicAction::NodeLeave { name } = &e.action else {
                    unreachable!()
                };
                (e.at.as_secs_f64() as u64, name.clone())
            })
            .collect();
        assert_eq!(
            order,
            [
                (1, "a".to_string()),
                (3, "m".to_string()),
                (5, "x".to_string()),
                (5, "y".to_string()),
                (5, "z".to_string()),
            ]
        );
    }

    #[test]
    fn merge_interleaves_two_sorted_schedules() {
        let ev = |secs: u64, name: &str| DynamicEvent {
            at: SimDuration::from_secs(secs),
            action: DynamicAction::NodeLeave { name: name.into() },
        };
        let mut a = EventSchedule::from_events(vec![ev(1, "a1"), ev(4, "a4")]);
        let b = EventSchedule::from_events(vec![ev(2, "b2"), ev(4, "b4"), ev(6, "b6")]);
        a.merge(&b);
        let times: Vec<u64> = a
            .events()
            .iter()
            .map(|e| e.at.as_secs_f64() as u64)
            .collect();
        assert_eq!(times, [1, 2, 4, 4, 6]);
        // Ties go to the receiving schedule's events.
        assert!(matches!(&a.events()[2].action, DynamicAction::NodeLeave { name } if name == "a4"));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn set_properties_updates_both_directions() {
        let mut t = base_topology();
        apply_action(
            &mut t,
            &DynamicAction::SetLinkProperties {
                orig: "c1".into(),
                dest: "s1".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(99)),
                    up: Some(Bandwidth::from_mbps(1)),
                    down: Some(Bandwidth::from_mbps(2)),
                    ..LinkChange::default()
                },
            },
        );
        let c1 = t.node_by_name("c1").unwrap();
        let s1 = t.node_by_name("s1").unwrap();
        let fwd = t
            .links()
            .iter()
            .find(|l| l.from == c1 && l.to == s1)
            .unwrap();
        let back = t
            .links()
            .iter()
            .find(|l| l.from == s1 && l.to == c1)
            .unwrap();
        assert_eq!(fwd.properties.latency, SimDuration::from_millis(99));
        assert_eq!(back.properties.latency, SimDuration::from_millis(99));
        assert_eq!(fwd.properties.bandwidth, Bandwidth::from_mbps(1));
        assert_eq!(back.properties.bandwidth, Bandwidth::from_mbps(2));
    }

    #[test]
    fn link_join_and_leave() {
        let mut t = base_topology();
        let before = t.link_count();
        apply_action(
            &mut t,
            &DynamicAction::LinkJoin {
                orig: "c1".into(),
                dest: "s2".into(),
                change: LinkChange {
                    latency: Some(SimDuration::from_millis(10)),
                    up: Some(Bandwidth::from_mbps(100)),
                    down: Some(Bandwidth::from_mbps(100)),
                    ..LinkChange::default()
                },
            },
        );
        assert_eq!(t.link_count(), before + 2);
        apply_action(
            &mut t,
            &DynamicAction::LinkLeave {
                orig: "c1".into(),
                dest: "s2".into(),
            },
        );
        assert_eq!(t.link_count(), before);
    }

    #[test]
    fn node_leave_removes_links_and_join_restores_bridge() {
        let mut t = base_topology();
        apply_action(&mut t, &DynamicAction::NodeLeave { name: "s1".into() });
        assert!(t.node_by_name("s1").is_none());
        // Links c1<->s1 and s1<->s2 are gone (4 of the original 6).
        assert_eq!(t.link_count(), 2);
        apply_action(&mut t, &DynamicAction::NodeJoin { name: "s1".into() });
        assert!(t.node_by_name("s1").is_some());
    }

    #[test]
    fn service_leave_by_service_name_removes_all_replicas() {
        let mut t = Topology::new();
        t.add_service("sv", 0, "img");
        t.add_service("sv", 1, "img");
        t.add_service("other", 0, "img");
        apply_action(&mut t, &DynamicAction::NodeLeave { name: "sv".into() });
        assert_eq!(t.service_ids().len(), 1);
        assert!(t.node_by_name("other").is_some());
    }

    #[test]
    fn unknown_names_are_ignored() {
        let mut t = base_topology();
        let links = t.link_count();
        apply_action(
            &mut t,
            &DynamicAction::LinkLeave {
                orig: "ghost".into(),
                dest: "s1".into(),
            },
        );
        apply_action(
            &mut t,
            &DynamicAction::NodeLeave {
                name: "ghost".into(),
            },
        );
        assert_eq!(t.link_count(), links);
    }
}
