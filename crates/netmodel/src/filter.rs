//! The u32 traffic-control filter, modelled as a two-level hash table.
//!
//! The real `u32` classifier does not provide a hashing mechanism, only a
//! 256-entry index, so Kollaps builds a two-level structure: the first level
//! is indexed by the third octet of the destination IP and the second level
//! by the fourth octet, which yields constant-time lookup for the
//! 10.1.0.0/16 container network without collisions.

use std::collections::HashMap;

use crate::packet::Addr;

/// Identifier of a per-destination qdisc chain (htb class + netem qdisc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Two-level destination classifier.
///
/// The outer table is indexed by the destination's third octet and each
/// inner table by the fourth octet, mirroring the layout the Kollaps TCAL
/// installs with `tc filter add ... u32`.
#[derive(Debug, Default)]
pub struct U32Filter {
    levels: HashMap<u8, HashMap<u8, ClassId>>,
    rules: usize,
}

impl U32Filter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        U32Filter::default()
    }

    /// Installs (or replaces) the classification rule for `dst`.
    pub fn insert(&mut self, dst: Addr, class: ClassId) {
        let inner = self.levels.entry(dst.third_octet()).or_default();
        if inner.insert(dst.fourth_octet(), class).is_none() {
            self.rules += 1;
        }
    }

    /// Removes the rule for `dst`, returning the class it pointed to.
    pub fn remove(&mut self, dst: Addr) -> Option<ClassId> {
        let inner = self.levels.get_mut(&dst.third_octet())?;
        let removed = inner.remove(&dst.fourth_octet());
        if removed.is_some() {
            self.rules -= 1;
            if inner.is_empty() {
                self.levels.remove(&dst.third_octet());
            }
        }
        removed
    }

    /// Looks up the class for a destination address.
    pub fn classify(&self, dst: Addr) -> Option<ClassId> {
        self.levels
            .get(&dst.third_octet())
            .and_then(|inner| inner.get(&dst.fourth_octet()))
            .copied()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules
    }

    /// `true` when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules == 0
    }

    /// Number of first-level buckets in use (diagnostic; bounded by 256).
    pub fn first_level_buckets(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_after_insert() {
        let mut f = U32Filter::new();
        let a = Addr::new(10, 1, 2, 3);
        f.insert(a, ClassId(11));
        assert_eq!(f.classify(a), Some(ClassId(11)));
        assert_eq!(f.classify(Addr::new(10, 1, 2, 4)), None);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn replace_keeps_rule_count() {
        let mut f = U32Filter::new();
        let a = Addr::new(10, 1, 0, 1);
        f.insert(a, ClassId(1));
        f.insert(a, ClassId(2));
        assert_eq!(f.len(), 1);
        assert_eq!(f.classify(a), Some(ClassId(2)));
    }

    #[test]
    fn remove_cleans_up_empty_buckets() {
        let mut f = U32Filter::new();
        let a = Addr::new(10, 1, 7, 9);
        f.insert(a, ClassId(5));
        assert_eq!(f.remove(a), Some(ClassId(5)));
        assert_eq!(f.remove(a), None);
        assert!(f.is_empty());
        assert_eq!(f.first_level_buckets(), 0);
    }

    #[test]
    fn no_collisions_across_a_slash16() {
        // Every container in a /16 must classify to its own class.
        let mut f = U32Filter::new();
        let n = 4_096u32;
        for i in 0..n {
            f.insert(Addr::container(i), ClassId(i));
        }
        assert_eq!(f.len(), n as usize);
        for i in 0..n {
            assert_eq!(f.classify(Addr::container(i)), Some(ClassId(i)));
        }
        // First level only uses as many buckets as distinct third octets.
        assert_eq!(f.first_level_buckets(), (n as usize).div_ceil(256));
    }

    #[test]
    fn same_third_octet_different_fourth() {
        let mut f = U32Filter::new();
        f.insert(Addr::new(10, 1, 5, 1), ClassId(1));
        f.insert(Addr::new(10, 1, 5, 2), ClassId(2));
        assert_eq!(f.classify(Addr::new(10, 1, 5, 1)), Some(ClassId(1)));
        assert_eq!(f.classify(Addr::new(10, 1, 5, 2)), Some(ClassId(2)));
        assert_eq!(f.first_level_buckets(), 1);
    }
}
