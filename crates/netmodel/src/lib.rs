//! # kollaps-netmodel
//!
//! Packet-level models of the dataplane pieces Kollaps drives on a real
//! Linux host, plus the switch/link primitives used by the full-state
//! baselines.
//!
//! The original system shapes traffic with Linux Traffic Control:
//!
//! * an **HTB qdisc** per destination enforces the bandwidth allocated to
//!   flows towards that destination ([`htb`]),
//! * a **netem qdisc** applies latency, jitter and packet loss ([`netem`]),
//! * a **u32 filter** organised as a two-level hash table on the third and
//!   fourth octet of the destination IP steers packets to the right chain
//!   ([`filter`]),
//! * when the htb queue fills up the kernel *back-pressures* the sender
//!   (TCP Small Queues) instead of dropping, which is why Kollaps has to
//!   inject loss explicitly upon congestion.
//!
//! This crate reproduces those behaviours in simulation:
//!
//! * [`packet`] — addresses, flows and packets.
//! * [`netem::NetemQdisc`] — delay/jitter/loss stage.
//! * [`htb::HtbQdisc`] — token-bucket shaping stage with back-pressure.
//! * [`filter::U32Filter`] — the two-level destination hash.
//! * [`egress::EgressTree`] — the per-container egress pipeline
//!   (filter → netem → htb) with per-destination usage accounting, i.e.
//!   what the TCAL manipulates.
//! * [`link::LinkPipe`] — a physical link with serialization delay,
//!   propagation delay and a finite drop-tail queue, used by the
//!   ground-truth and Mininet-like per-hop emulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod egress;
pub mod filter;
pub mod htb;
pub mod link;
pub mod netem;
pub mod packet;

pub use egress::{EgressTree, EgressVerdict};
pub use filter::U32Filter;
pub use htb::{HtbConfig, HtbQdisc, HtbVerdict};
pub use link::{LinkConfig, LinkPipe};
pub use netem::{NetemConfig, NetemQdisc};
pub use packet::{Addr, DropReason, FlowId, Packet, PacketKind};
