//! Model of the hierarchical token bucket (`htb`) queueing discipline.
//!
//! Kollaps creates one htb class per destination and sets its rate to the
//! bandwidth currently allocated to flows towards that destination. Two
//! behaviours of the real kernel matter for emulation accuracy and are
//! reproduced here:
//!
//! * shaping is done with a token bucket, so short bursts up to the burst
//!   size pass unshaped and the long-run rate converges to the configured
//!   rate (this is where Table 2's systematic ≈ -5 % offset comes from:
//!   the shaped goodput excludes header overhead);
//! * when the queue is full the kernel does **not** drop packets — TCP Small
//!   Queues back-pressures the sender instead, which is why congestion-based
//!   loss has to be injected explicitly by the emulation manager.

use serde::{Deserialize, Serialize};

use std::collections::VecDeque;

use kollaps_sim::time::{SimDuration, SimTime};
use kollaps_sim::token_bucket::TokenBucket;
use kollaps_sim::units::{Bandwidth, DataSize};

use crate::packet::Packet;

/// Configuration of an htb class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HtbConfig {
    /// Guaranteed/shaped rate.
    pub rate: Bandwidth,
    /// Ceiling rate (we keep ceil == rate like the Kollaps TCAL does).
    pub ceil: Bandwidth,
    /// Token bucket burst size.
    pub burst: DataSize,
    /// Maximum queue occupancy in packets before back-pressure kicks in.
    pub queue_limit: usize,
}

impl HtbConfig {
    /// A class shaped to `rate` with kernel-like defaults for burst and
    /// queue length.
    pub fn with_rate(rate: Bandwidth) -> Self {
        // The kernel sizes the burst to at least rate/HZ plus one MTU;
        // a 10 ms worth of data (capped to sane bounds) approximates that.
        let burst_bytes = (rate.as_bps() / 8 / 100).clamp(3_000, 1_000_000);
        // Size the queue so its worst-case drain time stays around 50 ms
        // (BQL-style). A fixed large limit would add hundreds of
        // milliseconds of bufferbloat on slow classes — more than the
        // 200 ms minimum RTO — and collapse TCP with spurious timeouts.
        let queue_limit = if rate == Bandwidth::MAX {
            1_000
        } else {
            (rate.as_bps() as f64 / 8.0 * 0.050 / 1_500.0) as usize
        };
        HtbConfig {
            rate,
            ceil: rate,
            burst: DataSize::from_bytes(burst_bytes),
            queue_limit: queue_limit.clamp(16, 1_000),
        }
    }
}

impl Default for HtbConfig {
    fn default() -> Self {
        HtbConfig::with_rate(Bandwidth::MAX)
    }
}

/// Outcome of offering a packet to an htb class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtbVerdict {
    /// The packet was queued (or is immediately transmittable).
    Queued,
    /// The queue is full: the sender must hold the packet and retry later
    /// (models TCP Small Queues back-pressure; no packet is lost).
    Backpressure,
}

/// An htb class instance shaping traffic towards one destination.
#[derive(Debug)]
pub struct HtbQdisc {
    config: HtbConfig,
    bucket: TokenBucket,
    /// FIFO of (enqueue time, packet).
    queue: VecDeque<(SimTime, Packet)>,
    queued_bytes: DataSize,
    transmitted_bytes: DataSize,
    transmitted_packets: u64,
    /// Virtual clock of the last dequeue: even when the caller polls late,
    /// packets are accounted as leaving at the instant their tokens became
    /// available, so downstream stages (netem) see exact timing.
    dequeue_cursor: SimTime,
}

impl HtbQdisc {
    /// Creates a class with the given configuration.
    pub fn new(config: HtbConfig) -> Self {
        HtbQdisc {
            bucket: TokenBucket::new(config.rate, config.burst),
            config,
            queue: VecDeque::new(),
            queued_bytes: DataSize::ZERO,
            transmitted_bytes: DataSize::ZERO,
            transmitted_packets: 0,
            dequeue_cursor: SimTime::ZERO,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &HtbConfig {
        &self.config
    }

    /// Changes the shaped rate at runtime (what the TCAL does on every
    /// emulation-loop iteration).
    pub fn set_rate(&mut self, now: SimTime, rate: Bandwidth) {
        self.config.rate = rate;
        self.config.ceil = rate;
        self.bucket.set_rate(now, rate);
        // The bucket's token state is now normalized at `now`; dequeues must
        // not be backdated before it, or ready-time prediction and token
        // consumption would disagree and stall the queue.
        self.dequeue_cursor = self.dequeue_cursor.max(now);
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes currently queued.
    pub fn queued_bytes(&self) -> DataSize {
        self.queued_bytes
    }

    /// Total bytes dequeued (transmitted) so far — the per-destination usage
    /// counter the Kollaps emulation loop reads back.
    pub fn transmitted_bytes(&self) -> DataSize {
        self.transmitted_bytes
    }

    /// Total packets dequeued so far.
    pub fn transmitted_packets(&self) -> u64 {
        self.transmitted_packets
    }

    /// `true` when another packet would exceed the queue limit.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.config.queue_limit
    }

    /// Offers a packet to the class at time `now`.
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> HtbVerdict {
        if self.is_full() {
            return HtbVerdict::Backpressure;
        }
        self.queued_bytes += packet.size;
        self.queue.push_back((now, packet));
        HtbVerdict::Queued
    }

    /// The earliest time at which the head-of-line packet can be dequeued,
    /// or `None` when the queue is empty. The returned instant may lie
    /// before `now` when the caller polls late; it is the exact token-
    /// availability time of the head packet.
    pub fn next_ready(&mut self, _now: SimTime) -> Option<SimTime> {
        let &(enqueued_at, ref head) = self.queue.front()?;
        let at = self.dequeue_cursor.max(enqueued_at);
        let wait = self.bucket.time_until_available(at, head.size);
        if wait == SimDuration::MAX {
            Some(SimTime::MAX)
        } else {
            Some(at + wait)
        }
    }

    /// Dequeues every packet whose tokens are available by `now`, tagged
    /// with the exact instant its tokens became available — the moment the
    /// packet left the shaper. A single call can emit at most one burst
    /// worth of data immediately; subsequent packets are paced by the token
    /// refill rate, exactly like the kernel qdisc, even when the caller
    /// polls less often than the packet rate.
    pub fn dequeue_ready_timed(&mut self, now: SimTime) -> Vec<(SimTime, Packet)> {
        let mut out = Vec::new();
        while let Some(&(enqueued_at, ref head)) = self.queue.front() {
            let head_size = head.size;
            let at = self.dequeue_cursor.max(enqueued_at);
            let wait = self.bucket.time_until_available(at, head_size);
            if wait == SimDuration::MAX {
                break;
            }
            let ready = at + wait;
            if ready > now {
                break;
            }
            if !self.bucket.try_consume(ready, head_size) {
                break;
            }
            self.dequeue_cursor = ready;
            let (_, pkt) = self.queue.pop_front().expect("non-empty");
            self.queued_bytes = self.queued_bytes.saturating_sub(pkt.size);
            self.transmitted_bytes += pkt.size;
            self.transmitted_packets += 1;
            out.push((ready, pkt));
        }
        out
    }

    /// Dequeues every packet whose tokens are available by `now`, without
    /// the per-packet timestamps of [`HtbQdisc::dequeue_ready_timed`].
    pub fn dequeue_ready(&mut self, now: SimTime) -> Vec<Packet> {
        self.dequeue_ready_timed(now)
            .into_iter()
            .map(|(_, p)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, FlowId, PacketKind, MTU};

    fn pkt(id: u64) -> Packet {
        Packet::new(
            id,
            FlowId(1),
            Addr::container(0),
            Addr::container(1),
            MTU,
            PacketKind::Udp,
            SimTime::ZERO,
        )
    }

    #[test]
    fn unlimited_class_is_immediate() {
        let mut q = HtbQdisc::new(HtbConfig::default());
        q.enqueue(SimTime::ZERO, pkt(1));
        q.enqueue(SimTime::ZERO, pkt(2));
        assert_eq!(q.dequeue_ready(SimTime::ZERO).len(), 2);
        assert_eq!(q.transmitted_packets(), 2);
    }

    #[test]
    fn shaped_rate_is_respected_over_time() {
        // 10 Mb/s = 1.25 MB/s. Enqueue 2 MB worth of MTU packets and count
        // how many bytes exit in the first second.
        let rate = Bandwidth::from_mbps(10);
        let mut q = HtbQdisc::new(HtbConfig {
            queue_limit: 10_000,
            ..HtbConfig::with_rate(rate)
        });
        let n_packets = 2_000_000 / MTU.as_bytes();
        for i in 0..n_packets {
            assert_eq!(q.enqueue(SimTime::ZERO, pkt(i)), HtbVerdict::Queued);
        }
        let mut sent = DataSize::ZERO;
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs(1);
        loop {
            for p in q.dequeue_ready(now) {
                sent += p.size;
            }
            match q.next_ready(now) {
                Some(t) if t <= end => now = t,
                _ => break,
            }
        }
        let mbps = sent.rate_over(SimDuration::from_secs(1)).as_mbps();
        // Within the burst allowance of the target rate.
        assert!((9.5..=11.0).contains(&mbps), "observed {mbps} Mb/s");
    }

    #[test]
    fn backpressure_instead_of_drop() {
        let mut q = HtbQdisc::new(HtbConfig {
            queue_limit: 2,
            ..HtbConfig::with_rate(Bandwidth::from_kbps(64))
        });
        assert_eq!(q.enqueue(SimTime::ZERO, pkt(1)), HtbVerdict::Queued);
        assert_eq!(q.enqueue(SimTime::ZERO, pkt(2)), HtbVerdict::Queued);
        assert_eq!(q.enqueue(SimTime::ZERO, pkt(3)), HtbVerdict::Backpressure);
        // Nothing was lost: two packets remain queued.
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn rate_change_applies_to_queued_packets() {
        let mut q = HtbQdisc::new(HtbConfig::with_rate(Bandwidth::from_kbps(8)));
        for i in 0..100 {
            q.enqueue(SimTime::ZERO, pkt(i));
        }
        // Drain the initial burst allowance so the slow rate is the limiter.
        let drained = q.dequeue_ready(SimTime::ZERO).len();
        assert!(drained < 100);
        let slow_next = q.next_ready(SimTime::ZERO).unwrap();
        // At 8 Kb/s the next MTU packet needs ~1.5 s worth of tokens.
        assert!(slow_next > SimTime::from_millis(500));
        // Bump to 100 Mb/s: packets become ready almost immediately.
        q.set_rate(SimTime::ZERO, Bandwidth::from_mbps(100));
        let fast_next = q.next_ready(SimTime::ZERO).unwrap();
        assert!(fast_next < slow_next);
    }

    #[test]
    fn usage_counters_accumulate() {
        let mut q = HtbQdisc::new(HtbConfig::default());
        for i in 0..10 {
            q.enqueue(SimTime::ZERO, pkt(i));
        }
        let _ = q.dequeue_ready(SimTime::ZERO);
        assert_eq!(q.transmitted_bytes().as_bytes(), 10 * MTU.as_bytes());
        assert_eq!(q.queued_bytes(), DataSize::ZERO);
    }

    #[test]
    fn zero_rate_class_never_dequeues() {
        let mut q = HtbQdisc::new(HtbConfig::with_rate(Bandwidth::ZERO));
        // Burst tokens start full (3000 bytes = two MTU packets); exhaust
        // them and check that further packets stall forever.
        for i in 0..3 {
            q.enqueue(SimTime::ZERO, pkt(i));
        }
        assert_eq!(q.dequeue_ready(SimTime::ZERO).len(), 2);
        assert_eq!(q.next_ready(SimTime::from_secs(100)), Some(SimTime::MAX));
        assert!(q.dequeue_ready(SimTime::from_secs(1_000)).is_empty());
    }
}
