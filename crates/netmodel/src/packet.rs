//! Packets, addresses and flow identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

use kollaps_sim::time::SimTime;
use kollaps_sim::units::DataSize;

/// An IPv4-style address identifying a container's interface on an emulated
/// network.
///
/// Kollaps' u32 filter hashes the third and fourth octets of the destination
/// address, so addresses keep the dotted-quad structure even though the
/// simulation never sends real IP packets.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Addr(u32);

impl Addr {
    /// Builds an address from its four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Builds an address from a raw 32-bit value.
    pub const fn from_u32(raw: u32) -> Self {
        Addr(raw)
    }

    /// The raw 32-bit value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Third octet — the first level of the u32 filter hash.
    pub const fn third_octet(self) -> u8 {
        (self.0 >> 8) as u8
    }

    /// Fourth octet — the second level of the u32 filter hash.
    pub const fn fourth_octet(self) -> u8 {
        self.0 as u8
    }

    /// Allocates the `index`-th address of the 10.1.0.0/16 container network
    /// used by the deployment generator.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in the /16 (65536 addresses).
    pub fn container(index: u32) -> Self {
        assert!(index < 65_536, "container index out of /16 range: {index}");
        Addr::new(10, 1, (index >> 8) as u8, index as u8)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Identifier of a transport-level flow (a 5-tuple in the real world).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// What a packet carries, as far as the emulation needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// TCP data segment carrying `seq` as the first byte's sequence number.
    TcpData {
        /// Sequence number of the first payload byte.
        seq: u64,
    },
    /// TCP acknowledgement carrying the cumulative ack number.
    TcpAck {
        /// Next expected sequence number.
        ack: u64,
        /// Number of duplicate-ack repetitions observed by the receiver
        /// model (used for fast retransmit).
        dup: u8,
    },
    /// TCP connection setup (SYN / SYN-ACK collapsed into one round trip).
    TcpHandshake,
    /// TCP connection teardown.
    TcpFin,
    /// UDP datagram.
    Udp,
    /// ICMP echo request (ping).
    IcmpEchoRequest {
        /// Echo sequence number.
        seq: u32,
    },
    /// ICMP echo reply.
    IcmpEchoReply {
        /// Echo sequence number being answered.
        seq: u32,
    },
}

/// Why a packet was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Random loss configured on a netem qdisc or an emulated link.
    NetemLoss,
    /// Congestion loss injected by the Kollaps emulation manager when the
    /// demanded bandwidth exceeds the collapsed-link capacity.
    CongestionInjected,
    /// A finite switch/router queue overflowed (full-state baselines).
    QueueOverflow,
    /// The destination is unreachable in the current topology snapshot.
    Unreachable,
}

/// A simulated packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Globally unique packet id (monotonically assigned by the engine).
    pub id: u64,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Source container address.
    pub src: Addr,
    /// Destination container address.
    pub dst: Addr,
    /// Wire size including headers.
    pub size: DataSize,
    /// Transport-level content.
    pub kind: PacketKind,
    /// When the sending application handed the packet to the stack.
    pub sent_at: SimTime,
}

impl Packet {
    /// Creates a packet; `sent_at` is stamped by the caller (usually the
    /// transport layer at the moment of the send call).
    pub fn new(
        id: u64,
        flow: FlowId,
        src: Addr,
        dst: Addr,
        size: DataSize,
        kind: PacketKind,
        sent_at: SimTime,
    ) -> Self {
        Packet {
            id,
            flow,
            src,
            dst,
            size,
            kind,
            sent_at,
        }
    }

    /// `true` for packets that carry application payload (TCP data or UDP).
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::TcpData { .. } | PacketKind::Udp)
    }

    /// `true` for pure control packets (acks, handshakes, ICMP).
    pub fn is_control(&self) -> bool {
        !self.is_data()
    }
}

/// Standard Ethernet-ish MTU used by the transport models.
pub const MTU: DataSize = DataSize::from_bytes(1_500);
/// TCP/IP header overhead assumed per segment.
pub const HEADER_SIZE: DataSize = DataSize::from_bytes(40);
/// Maximum segment payload = MTU minus headers.
pub const MSS: DataSize = DataSize::from_bytes(1_460);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_octets_round_trip() {
        let a = Addr::new(10, 1, 3, 7);
        assert_eq!(a.octets(), [10, 1, 3, 7]);
        assert_eq!(a.third_octet(), 3);
        assert_eq!(a.fourth_octet(), 7);
        assert_eq!(format!("{a}"), "10.1.3.7");
        assert_eq!(Addr::from_u32(a.as_u32()), a);
    }

    #[test]
    fn container_addressing_spans_the_slash16() {
        assert_eq!(Addr::container(0), Addr::new(10, 1, 0, 0));
        assert_eq!(Addr::container(255), Addr::new(10, 1, 0, 255));
        assert_eq!(Addr::container(256), Addr::new(10, 1, 1, 0));
        assert_eq!(Addr::container(65_535), Addr::new(10, 1, 255, 255));
    }

    #[test]
    #[should_panic]
    fn container_addressing_rejects_overflow() {
        let _ = Addr::container(65_536);
    }

    #[test]
    fn addresses_are_unique_per_index() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..4_096 {
            assert!(seen.insert(Addr::container(i)));
        }
    }

    #[test]
    fn packet_classification() {
        let data = Packet::new(
            1,
            FlowId(9),
            Addr::container(0),
            Addr::container(1),
            MTU,
            PacketKind::TcpData { seq: 0 },
            SimTime::ZERO,
        );
        assert!(data.is_data());
        assert!(!data.is_control());
        let ack = Packet {
            kind: PacketKind::TcpAck { ack: 1460, dup: 0 },
            size: HEADER_SIZE,
            ..data.clone()
        };
        assert!(ack.is_control());
        let ping = Packet {
            kind: PacketKind::IcmpEchoRequest { seq: 1 },
            ..data
        };
        assert!(ping.is_control());
    }

    #[test]
    fn mtu_mss_consistency() {
        assert_eq!(MSS.as_bytes() + HEADER_SIZE.as_bytes(), MTU.as_bytes());
    }
}
