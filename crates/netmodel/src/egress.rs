//! Per-container egress pipeline: u32 filter → netem → htb.
//!
//! This is the structure the Kollaps TCAL installs inside every application
//! container. For each *destination* there is one netem qdisc (latency,
//! jitter, loss) feeding one htb class (bandwidth). The emulation loop reads
//! back per-destination transmitted-byte counters from here and adjusts the
//! htb rates and netem loss.

use std::collections::HashMap;

use kollaps_sim::rng::SimRng;
use kollaps_sim::time::SimTime;
use kollaps_sim::units::{Bandwidth, DataSize};

use crate::filter::{ClassId, U32Filter};
use crate::htb::{HtbConfig, HtbQdisc, HtbVerdict};
use crate::netem::{NetemConfig, NetemQdisc};
use crate::packet::{Addr, DropReason, Packet};

/// Outcome of pushing a packet into the egress tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressVerdict {
    /// Accepted; it will pop out of [`EgressTree::dequeue_ready`] later.
    Queued,
    /// The htb class for this destination is full — the sender must retry
    /// (TCP Small Queues back-pressure).
    Backpressure,
    /// Dropped by the netem stage (random or injected loss) or because the
    /// destination has no installed chain.
    Dropped(DropReason),
}

/// One per-destination chain: an htb class whose child qdisc is netem, the
/// same parent/child arrangement the Kollaps TCAL installs. Packets are
/// first shaped by the class (this is where back-pressure originates, so the
/// sender can never queue more than the class limit), then delayed/lossed by
/// netem on their way out.
#[derive(Debug)]
struct Chain {
    htb: HtbQdisc,
    netem: NetemQdisc,
    /// `true` while this chain's [`ClassId`] is in [`EgressTree::active`] —
    /// an O(1) membership test for the per-packet enqueue path.
    listed_active: bool,
}

/// The egress qdisc tree of a single container.
#[derive(Debug)]
pub struct EgressTree {
    owner: Addr,
    filter: U32Filter,
    chains: HashMap<ClassId, Chain>,
    by_dst: HashMap<Addr, ClassId>,
    next_class: u32,
    rng: SimRng,
    /// Bytes read but not yet cleared by the emulation loop, per destination.
    usage_since_clear: HashMap<Addr, DataSize>,
    /// Chains currently holding packets. Wakeup and dequeue scans touch only
    /// these; with hundreds of installed per-destination chains and a
    /// handful of active flows this is the difference between O(flows) and
    /// O(destinations) per event.
    active: Vec<ClassId>,
}

impl EgressTree {
    /// Creates an empty tree for the container with address `owner`.
    pub fn new(owner: Addr, rng: SimRng) -> Self {
        EgressTree {
            owner,
            filter: U32Filter::new(),
            chains: HashMap::new(),
            by_dst: HashMap::new(),
            next_class: 1,
            rng,
            usage_since_clear: HashMap::new(),
            active: Vec::new(),
        }
    }

    /// The owning container's address.
    pub fn owner(&self) -> Addr {
        self.owner
    }

    /// Installs (or replaces) the chain towards `dst` with the given netem
    /// and htb settings — the TCAL `init`/`update` path.
    pub fn install_path(&mut self, dst: Addr, netem: NetemConfig, bandwidth: Bandwidth) {
        let rng = self.rng.derive(u64::from(dst.as_u32()));
        match self.by_dst.get(&dst) {
            Some(&class) => {
                let chain = self.chains.get_mut(&class).expect("chain exists");
                chain.netem.set_config(netem);
                chain.htb.set_rate(SimTime::ZERO, bandwidth);
            }
            None => {
                let class = ClassId(self.next_class);
                self.next_class += 1;
                self.filter.insert(dst, class);
                self.by_dst.insert(dst, class);
                self.chains.insert(
                    class,
                    Chain {
                        htb: HtbQdisc::new(HtbConfig::with_rate(bandwidth)),
                        netem: NetemQdisc::new(netem, rng),
                        listed_active: false,
                    },
                );
            }
        }
    }

    /// Removes the chain towards `dst` (dynamic topologies: link/service
    /// removal). Any packets still queued in the chain are discarded.
    pub fn remove_path(&mut self, dst: Addr) -> bool {
        let Some(class) = self.by_dst.remove(&dst) else {
            return false;
        };
        self.filter.remove(dst);
        self.chains.remove(&class);
        true
    }

    /// `true` if a chain towards `dst` is installed.
    pub fn has_path(&self, dst: Addr) -> bool {
        self.by_dst.contains_key(&dst)
    }

    /// Destinations with installed chains.
    pub fn destinations(&self) -> impl Iterator<Item = Addr> + '_ {
        self.by_dst.keys().copied()
    }

    /// Updates only the shaped bandwidth towards `dst` (emulation loop
    /// enforcement step).
    pub fn set_bandwidth(&mut self, now: SimTime, dst: Addr, rate: Bandwidth) -> bool {
        if let Some(chain) = self.chain_mut(dst) {
            chain.htb.set_rate(now, rate);
            true
        } else {
            false
        }
    }

    /// Updates only the loss probability towards `dst` (congestion loss
    /// injection).
    pub fn set_loss(&mut self, dst: Addr, loss: f64) -> bool {
        if let Some(chain) = self.chain_mut(dst) {
            chain.netem.set_loss(loss);
            true
        } else {
            false
        }
    }

    /// Currently configured rate towards `dst`, if a chain is installed.
    pub fn bandwidth(&self, dst: Addr) -> Option<Bandwidth> {
        self.chain(dst).map(|c| c.htb.config().rate)
    }

    /// Currently configured netem settings towards `dst`.
    pub fn netem_config(&self, dst: Addr) -> Option<NetemConfig> {
        self.chain(dst).map(|c| *c.netem.config())
    }

    /// Offers a packet to the tree at `now`.
    ///
    /// The htb class is the entry stage: when its queue is at the limit the
    /// verdict is [`EgressVerdict::Backpressure`], mirroring TSQ, which
    /// throttles the socket on not-yet-transmitted data instead of dropping.
    /// netem loss/overflow is applied when the packet passes the shaper, so
    /// a lossy path reports [`EgressVerdict::Queued`] here and the packet
    /// simply never emerges — exactly what the sender's transport observes
    /// on real hardware.
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> EgressVerdict {
        let Some(class) = self.filter.classify(packet.dst) else {
            return EgressVerdict::Dropped(DropReason::Unreachable);
        };
        let chain = self.chains.get_mut(&class).expect("classified chain");
        match chain.htb.enqueue(now, packet) {
            HtbVerdict::Queued => {
                if !chain.listed_active {
                    chain.listed_active = true;
                    self.active.push(class);
                }
                EgressVerdict::Queued
            }
            HtbVerdict::Backpressure => EgressVerdict::Backpressure,
        }
    }

    /// The earliest instant at which a queued packet may become deliverable.
    pub fn next_wakeup(&mut self, now: SimTime) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for &class in &self.active {
            let Some(chain) = self.chains.get_mut(&class) else {
                continue;
            };
            let candidates = [
                chain.netem.next_release(),
                if chain.htb.is_empty() {
                    None
                } else {
                    chain.htb.next_ready(now)
                },
            ];
            for c in candidates.into_iter().flatten() {
                earliest = Some(match earliest {
                    Some(e) => e.min(c),
                    None => c,
                });
            }
        }
        earliest
    }

    /// Moves packets whose shaping completed by `now` into the netem stage
    /// (stamped with the exact instant they left the shaper, so late polls
    /// do not distort timing) and returns every packet whose netem delay has
    /// also elapsed — packets leaving the container towards the physical
    /// network.
    pub fn dequeue_ready(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        let mut idx = 0;
        while idx < self.active.len() {
            let class = self.active[idx];
            let Some(chain) = self.chains.get_mut(&class) else {
                self.active.swap_remove(idx);
                continue;
            };
            for (left_shaper_at, pkt) in chain.htb.dequeue_ready_timed(now) {
                // The shaped bytes are what the TCAL usage counters report,
                // whether or not netem subsequently drops the packet.
                *self.usage_since_clear.entry(pkt.dst).or_default() += pkt.size;
                // netem loss (intrinsic link loss + injected congestion
                // loss) applies past the shaper; a dropped packet is simply
                // never released.
                let _ = chain.netem.enqueue(left_shaper_at, pkt);
            }
            out.extend(chain.netem.release_ready(now));
            if chain.htb.is_empty() && chain.netem.is_empty() {
                chain.listed_active = false;
                self.active.swap_remove(idx);
            } else {
                idx += 1;
            }
        }
        out
    }

    /// Per-destination transmitted bytes since the last
    /// [`EgressTree::clear_usage`] call — step (2) of the emulation loop.
    pub fn usage(&self) -> &HashMap<Addr, DataSize> {
        &self.usage_since_clear
    }

    /// Clears the usage counters — step (1) of the emulation loop.
    pub fn clear_usage(&mut self) {
        self.usage_since_clear.clear();
    }

    /// Total bytes ever transmitted towards `dst`.
    pub fn total_transmitted(&self, dst: Addr) -> DataSize {
        self.chain(dst)
            .map(|c| c.htb.transmitted_bytes())
            .unwrap_or(DataSize::ZERO)
    }

    /// Number of installed chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Packets dropped inside the netem stage (random/injected loss plus
    /// overflow of the netem limit under persistent overload).
    pub fn dropped_packets(&self) -> u64 {
        self.chains
            .values()
            .map(|c| c.netem.dropped_loss() + c.netem.dropped_overflow())
            .sum()
    }

    fn chain(&self, dst: Addr) -> Option<&Chain> {
        self.by_dst.get(&dst).and_then(|c| self.chains.get(c))
    }

    fn chain_mut(&mut self, dst: Addr) -> Option<&mut Chain> {
        let class = *self.by_dst.get(&dst)?;
        self.chains.get_mut(&class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketKind, MTU};
    use kollaps_sim::time::SimDuration;

    fn tree() -> EgressTree {
        EgressTree::new(Addr::container(0), SimRng::new(7))
    }

    fn pkt(id: u64, dst: Addr) -> Packet {
        Packet::new(
            id,
            FlowId(1),
            Addr::container(0),
            dst,
            MTU,
            PacketKind::Udp,
            SimTime::ZERO,
        )
    }

    #[test]
    fn unknown_destination_is_unreachable() {
        let mut t = tree();
        let verdict = t.enqueue(SimTime::ZERO, pkt(1, Addr::container(9)));
        assert_eq!(verdict, EgressVerdict::Dropped(DropReason::Unreachable));
    }

    #[test]
    fn install_then_send_applies_delay() {
        let mut t = tree();
        let dst = Addr::container(1);
        t.install_path(
            dst,
            NetemConfig::with_delay(SimDuration::from_millis(25)),
            Bandwidth::from_mbps(100),
        );
        assert!(t.has_path(dst));
        assert_eq!(t.enqueue(SimTime::ZERO, pkt(1, dst)), EgressVerdict::Queued);
        assert!(t.dequeue_ready(SimTime::from_millis(24)).is_empty());
        let out = t.dequeue_ready(SimTime::from_millis(25));
        assert_eq!(out.len(), 1);
        assert_eq!(t.usage().get(&dst).copied(), Some(MTU));
    }

    #[test]
    fn usage_clear_resets_counters() {
        let mut t = tree();
        let dst = Addr::container(1);
        t.install_path(dst, NetemConfig::default(), Bandwidth::from_mbps(100));
        t.enqueue(SimTime::ZERO, pkt(1, dst));
        let _ = t.dequeue_ready(SimTime::ZERO);
        assert!(!t.usage().is_empty());
        t.clear_usage();
        assert!(t.usage().is_empty());
        assert_eq!(t.total_transmitted(dst), MTU);
    }

    #[test]
    fn per_destination_isolation() {
        let mut t = tree();
        let d1 = Addr::container(1);
        let d2 = Addr::container(2);
        t.install_path(
            d1,
            NetemConfig::with_delay(SimDuration::from_millis(5)),
            Bandwidth::from_mbps(10),
        );
        t.install_path(
            d2,
            NetemConfig::with_delay(SimDuration::from_millis(50)),
            Bandwidth::from_mbps(10),
        );
        t.enqueue(SimTime::ZERO, pkt(1, d1));
        t.enqueue(SimTime::ZERO, pkt(2, d2));
        let early = t.dequeue_ready(SimTime::from_millis(5));
        assert_eq!(early.len(), 1);
        assert_eq!(early[0].dst, d1);
        let late = t.dequeue_ready(SimTime::from_millis(50));
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].dst, d2);
    }

    #[test]
    fn bandwidth_update_changes_rate() {
        let mut t = tree();
        let dst = Addr::container(1);
        t.install_path(dst, NetemConfig::default(), Bandwidth::from_mbps(10));
        assert_eq!(t.bandwidth(dst), Some(Bandwidth::from_mbps(10)));
        assert!(t.set_bandwidth(SimTime::ZERO, dst, Bandwidth::from_mbps(3)));
        assert_eq!(t.bandwidth(dst), Some(Bandwidth::from_mbps(3)));
        assert!(!t.set_bandwidth(SimTime::ZERO, Addr::container(5), Bandwidth::ZERO));
    }

    #[test]
    fn loss_injection_drops_packets() {
        let mut t = tree();
        let dst = Addr::container(1);
        t.install_path(dst, NetemConfig::default(), Bandwidth::from_mbps(100));
        assert!(t.set_loss(dst, 1.0));
        // Loss applies past the shaper: the packet is accepted but never
        // emerges, and the drop is counted.
        assert_eq!(t.enqueue(SimTime::ZERO, pkt(1, dst)), EgressVerdict::Queued);
        assert!(t.dequeue_ready(SimTime::from_secs(1)).is_empty());
        assert_eq!(t.dropped_packets(), 1);
    }

    #[test]
    fn remove_path_uninstalls_chain() {
        let mut t = tree();
        let dst = Addr::container(1);
        t.install_path(dst, NetemConfig::default(), Bandwidth::from_mbps(1));
        assert!(t.remove_path(dst));
        assert!(!t.remove_path(dst));
        assert!(!t.has_path(dst));
        assert_eq!(
            t.enqueue(SimTime::ZERO, pkt(1, dst)),
            EgressVerdict::Dropped(DropReason::Unreachable)
        );
    }

    #[test]
    fn next_wakeup_tracks_earliest_stage() {
        let mut t = tree();
        let d1 = Addr::container(1);
        let d2 = Addr::container(2);
        t.install_path(
            d1,
            NetemConfig::with_delay(SimDuration::from_millis(30)),
            Bandwidth::from_mbps(100),
        );
        t.install_path(
            d2,
            NetemConfig::with_delay(SimDuration::from_millis(10)),
            Bandwidth::from_mbps(100),
        );
        t.enqueue(SimTime::ZERO, pkt(1, d1));
        t.enqueue(SimTime::ZERO, pkt(2, d2));
        // Both packets clear the (unconstrained) shaper immediately...
        assert_eq!(t.next_wakeup(SimTime::ZERO), Some(SimTime::ZERO));
        assert!(t.dequeue_ready(SimTime::ZERO).is_empty());
        // ...after which the earlier of the two netem delays is next.
        assert_eq!(t.next_wakeup(SimTime::ZERO), Some(SimTime::from_millis(10)));
    }

    #[test]
    fn reinstall_updates_existing_chain() {
        let mut t = tree();
        let dst = Addr::container(1);
        t.install_path(dst, NetemConfig::default(), Bandwidth::from_mbps(10));
        t.install_path(
            dst,
            NetemConfig::with_delay(SimDuration::from_millis(7)),
            Bandwidth::from_mbps(20),
        );
        assert_eq!(t.chain_count(), 1);
        assert_eq!(t.bandwidth(dst), Some(Bandwidth::from_mbps(20)));
        assert_eq!(
            t.netem_config(dst).unwrap().delay,
            SimDuration::from_millis(7)
        );
    }
}
