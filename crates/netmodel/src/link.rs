//! A physical link with serialization, propagation and a finite queue.
//!
//! [`LinkPipe`] is the hop primitive used by the *full-state* emulations:
//! the ground-truth ("bare-metal") network, the Mininet-like and the
//! Maxinet-like baselines simulate every link and switch port of the target
//! topology with one of these. Unlike the htb model, a full queue here
//! *drops* packets like a real switch buffer would.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use kollaps_sim::time::{SimDuration, SimTime};
use kollaps_sim::units::{Bandwidth, DataSize};

use crate::packet::{DropReason, Packet};

/// Static properties of a physical (or emulated-in-full) link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Link capacity.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Random loss probability in `[0, 1]` applied per packet.
    pub loss: f64,
    /// Buffer size in bytes at the transmitting end (drop-tail).
    pub buffer: DataSize,
    /// Upper bound of the per-packet forwarding jitter (see
    /// `FORWARDING_JITTER_NANOS`); zero makes the pipe perfectly periodic,
    /// which only exact-timing tests want.
    pub forwarding_jitter: SimDuration,
}

impl LinkConfig {
    /// A link with the given bandwidth and latency, no loss, and a buffer
    /// sized by the round-trip bandwidth-delay product (at least 64 KiB),
    /// the classic switch buffer sizing rule — a shallower buffer makes
    /// every congestion event a multi-segment burst loss, which TCP without
    /// SACK recovers from one segment per RTT.
    pub fn new(bandwidth: Bandwidth, latency: SimDuration) -> Self {
        let bdp = bandwidth.data_in(latency * 2).as_bytes();
        LinkConfig {
            bandwidth,
            latency,
            loss: 0.0,
            buffer: DataSize::from_bytes(bdp.max(64 * 1024)),
            forwarding_jitter: SimDuration::from_nanos(FORWARDING_JITTER_NANOS),
        }
    }

    /// Disables the per-packet forwarding jitter (exact-timing tests).
    pub fn without_jitter(mut self) -> Self {
        self.forwarding_jitter = SimDuration::ZERO;
        self
    }
}

/// A packet that has been accepted by the transmitter.
///
/// `arrival` is when it reaches the far end.
#[derive(Debug, Clone)]
struct InFlight {
    arrival: SimTime,
    packet: Packet,
}

/// One direction of a physical link.
///
/// The link is work-conserving: serialization of the next packet starts as
/// soon as the transmitter is free, and the departure/arrival schedule is
/// computed analytically at enqueue time.
#[derive(Debug)]
pub struct LinkPipe {
    config: LinkConfig,
    /// Bytes whose serialization has not finished yet (buffer occupancy).
    queued_bytes: DataSize,
    /// Serialization-completion times and sizes of buffered packets, in
    /// FIFO order (completion times are monotone).
    serializing: VecDeque<(SimTime, DataSize)>,
    /// Time the transmitter becomes free.
    busy_until: SimTime,
    /// Accepted packets in serialization order.
    in_flight: VecDeque<InFlight>,
    /// Arrival time of the most recently accepted packet (store-and-forward
    /// FIFO: arrivals are monotone even under per-packet jitter).
    last_arrival: SimTime,
    delivered_bytes: DataSize,
    delivered_packets: u64,
    dropped_overflow: u64,
    drop_seed: u64,
}

/// Bound on the per-packet forwarding jitter (50 µs). Real links are not
/// perfectly periodic — NIC interrupt coalescing, switch scheduling and
/// clock drift shift every forwarding by a few microseconds. A perfectly
/// deterministic pipe lets competing ACK-clocked flows phase-lock (one
/// flow's arrivals landing exactly one slot behind its own departures keeps
/// a drop-tail buffer pegged at exactly full and starves everyone else
/// indefinitely); this jitter restores the decorrelation real hardware has.
const FORWARDING_JITTER_NANOS: u64 = 50_000;

impl LinkPipe {
    /// Creates a link pipe with the given configuration.
    pub fn new(config: LinkConfig) -> Self {
        LinkPipe::with_seed(config, 0)
    }

    /// Creates a link pipe whose loss/jitter stream is derived from `seed`.
    /// Topologies should pass a distinct per-link value (e.g. the link id):
    /// identically-seeded links produce identical jitter sequences, which
    /// preserves exactly the cross-flow phase alignment the jitter exists to
    /// break.
    pub fn with_seed(config: LinkConfig, seed: u64) -> Self {
        LinkPipe {
            config,
            queued_bytes: DataSize::ZERO,
            serializing: VecDeque::new(),
            busy_until: SimTime::ZERO,
            in_flight: VecDeque::new(),
            last_arrival: SimTime::ZERO,
            delivered_bytes: DataSize::ZERO,
            delivered_packets: 0,
            dropped_overflow: 0,
            drop_seed: 0x9E37_79B9_7F4A_7C15 ^ seed.wrapping_mul(0xA076_1D64_78BD_642F),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Replaces the link properties (dynamic topology events).
    pub fn set_config(&mut self, config: LinkConfig) {
        self.config = config;
    }

    /// Bytes sitting in the transmit queue.
    pub fn queued_bytes(&self) -> DataSize {
        self.queued_bytes
    }

    /// Packets dropped due to buffer overflow so far.
    pub fn dropped_overflow(&self) -> u64 {
        self.dropped_overflow
    }

    /// Total bytes delivered to the far end so far.
    pub fn delivered_bytes(&self) -> DataSize {
        self.delivered_bytes
    }

    /// Total packets delivered to the far end so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Offers a packet to the link at `now`. Returns the drop reason if the
    /// packet was discarded (buffer overflow or random loss).
    pub fn enqueue(&mut self, now: SimTime, packet: Packet) -> Option<DropReason> {
        self.expire_buffer(now);
        if self.config.loss > 0.0 && self.random_drop() {
            return Some(DropReason::NetemLoss);
        }
        if self.queued_bytes + packet.size > self.config.buffer {
            self.dropped_overflow += 1;
            return Some(DropReason::QueueOverflow);
        }
        let ser = self.config.bandwidth.transmission_delay(packet.size);
        if ser == SimDuration::MAX {
            // A zero-bandwidth link never delivers; treat as overflow.
            self.dropped_overflow += 1;
            return Some(DropReason::QueueOverflow);
        }
        self.queued_bytes += packet.size;
        let start = self.busy_until.max(now);
        let finish = start + ser;
        self.busy_until = finish;
        self.serializing.push_back((finish, packet.size));
        let jitter = SimDuration::from_nanos(self.next_jitter());
        let arrival = (finish + self.config.latency + jitter).max(self.last_arrival);
        self.last_arrival = arrival;
        self.in_flight.push_back(InFlight { arrival, packet });
        None
    }

    /// The next instant a packet arrives at the far end of this link.
    pub fn next_wakeup(&mut self, _now: SimTime) -> Option<SimTime> {
        self.in_flight.front().map(|f| f.arrival)
    }

    /// Returns every packet that has arrived at the far end by `now`.
    ///
    /// Delivery is FIFO: packets leave in serialization order even if a
    /// dynamic latency decrease would let a later packet "overtake" an
    /// earlier one, which is what a real store-and-forward queue does.
    pub fn deliver_ready(&mut self, now: SimTime) -> Vec<Packet> {
        self.expire_buffer(now);
        let mut out = Vec::new();
        while let Some(front) = self.in_flight.front() {
            if front.arrival > now {
                break;
            }
            let f = self.in_flight.pop_front().expect("non-empty");
            self.delivered_bytes += f.packet.size;
            self.delivered_packets += 1;
            out.push(f.packet);
        }
        out
    }

    /// Releases the buffer share of packets whose serialization finished.
    fn expire_buffer(&mut self, now: SimTime) {
        while let Some(&(finish, size)) = self.serializing.front() {
            if finish > now {
                break;
            }
            self.serializing.pop_front();
            self.queued_bytes = self.queued_bytes.saturating_sub(size);
        }
    }

    /// Deterministic pseudo-random loss decision (xorshift on an internal
    /// seed), kept local so the link does not need an RNG handle.
    fn random_drop(&mut self) -> bool {
        let u = (self.next_raw() >> 11) as f64 / (1u64 << 53) as f64;
        u < self.config.loss
    }

    /// Deterministic per-packet forwarding jitter in nanoseconds.
    fn next_jitter(&mut self) -> u64 {
        let cap = self.config.forwarding_jitter.as_nanos();
        if cap == 0 {
            return 0;
        }
        self.next_raw() % cap
    }

    fn next_raw(&mut self) -> u64 {
        self.drop_seed ^= self.drop_seed << 13;
        self.drop_seed ^= self.drop_seed >> 7;
        self.drop_seed ^= self.drop_seed << 17;
        self.drop_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Addr, FlowId, PacketKind, MTU};

    fn pkt(id: u64) -> Packet {
        Packet::new(
            id,
            FlowId(1),
            Addr::container(0),
            Addr::container(1),
            MTU,
            PacketKind::Udp,
            SimTime::ZERO,
        )
    }

    #[test]
    fn delivery_includes_serialization_and_propagation() {
        // 1500 bytes at 100 Mb/s = 120 us serialization, plus 10 ms latency.
        let mut l = LinkPipe::new(
            LinkConfig::new(Bandwidth::from_mbps(100), SimDuration::from_millis(10))
                .without_jitter(),
        );
        assert!(l.enqueue(SimTime::ZERO, pkt(1)).is_none());
        let expected = SimTime::from_micros(120) + SimDuration::from_millis(10);
        assert_eq!(l.next_wakeup(SimTime::ZERO), Some(expected));
        assert!(l
            .deliver_ready(expected - SimDuration::from_nanos(1))
            .is_empty());
        assert_eq!(l.deliver_ready(expected).len(), 1);
    }

    #[test]
    fn back_to_back_packets_serialize_sequentially() {
        let mut l = LinkPipe::new(
            LinkConfig::new(Bandwidth::from_mbps(12), SimDuration::ZERO).without_jitter(),
        );
        // 1500 B at 12 Mb/s = 1 ms per packet.
        for i in 0..3 {
            l.enqueue(SimTime::ZERO, pkt(i));
        }
        assert_eq!(l.deliver_ready(SimTime::from_millis(1)).len(), 1);
        assert_eq!(l.deliver_ready(SimTime::from_millis(2)).len(), 1);
        assert_eq!(l.deliver_ready(SimTime::from_millis(3)).len(), 1);
    }

    #[test]
    fn buffer_overflow_drops() {
        let mut cfg = LinkConfig::new(Bandwidth::from_kbps(64), SimDuration::from_millis(1));
        cfg.buffer = DataSize::from_bytes(3 * MTU.as_bytes());
        let mut l = LinkPipe::new(cfg);
        let mut drops = 0;
        for i in 0..10 {
            if l.enqueue(SimTime::ZERO, pkt(i)) == Some(DropReason::QueueOverflow) {
                drops += 1;
            }
        }
        assert!(drops > 0);
        assert_eq!(l.dropped_overflow(), drops);
    }

    #[test]
    fn random_loss_drops_roughly_at_rate() {
        let mut cfg = LinkConfig::new(Bandwidth::from_gbps(10), SimDuration::ZERO);
        cfg.loss = 0.2;
        let mut l = LinkPipe::new(cfg);
        let n = 10_000;
        let mut dropped = 0;
        for i in 0..n {
            // Drain deliveries as we go so only random loss (never buffer
            // overflow) can drop packets.
            let now = SimTime::from_micros(i * 5);
            let _ = l.deliver_ready(now);
            match l.enqueue(now, pkt(i)) {
                Some(DropReason::NetemLoss) => dropped += 1,
                Some(other) => panic!("unexpected drop reason {other:?}"),
                None => {}
            }
        }
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "observed loss {rate}");
    }

    #[test]
    fn throughput_matches_capacity() {
        // Saturate a 10 Mb/s link for one second and count delivered bytes.
        let mut l = LinkPipe::new(LinkConfig::new(
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(5),
        ));
        let mut now = SimTime::ZERO;
        let end = SimTime::from_secs(1);
        let mut delivered = DataSize::ZERO;
        let mut id = 0;
        while now < end {
            // Keep the queue topped up.
            while l.queued_bytes() < DataSize::from_bytes(10 * MTU.as_bytes()) {
                l.enqueue(now, pkt(id));
                id += 1;
            }
            for p in l.deliver_ready(now) {
                delivered += p.size;
            }
            now = l.next_wakeup(now).unwrap_or(end).min(end);
        }
        for p in l.deliver_ready(end) {
            delivered += p.size;
        }
        let mbps = delivered.rate_over(SimDuration::from_secs(1)).as_mbps();
        assert!((9.0..=10.5).contains(&mbps), "delivered {mbps} Mb/s");
    }

    #[test]
    fn config_update_changes_future_packets() {
        let mut l = LinkPipe::new(LinkConfig::new(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(50),
        ));
        l.enqueue(SimTime::ZERO, pkt(1));
        let first = l.next_wakeup(SimTime::ZERO).unwrap();
        // Halving the latency for subsequent packets.
        l.set_config(LinkConfig::new(
            Bandwidth::from_mbps(100),
            SimDuration::from_millis(25),
        ));
        let _ = l.deliver_ready(first);
        l.enqueue(first, pkt(2));
        let second = l.next_wakeup(first).unwrap();
        assert!(second - first < SimDuration::from_millis(26));
    }

    #[test]
    fn counters_track_delivery() {
        let mut l = LinkPipe::new(LinkConfig::new(Bandwidth::from_gbps(1), SimDuration::ZERO));
        for i in 0..5 {
            l.enqueue(SimTime::ZERO, pkt(i));
        }
        let _ = l.deliver_ready(SimTime::from_secs(1));
        assert_eq!(l.delivered_packets(), 5);
        assert_eq!(l.delivered_bytes().as_bytes(), 5 * MTU.as_bytes());
    }
}
